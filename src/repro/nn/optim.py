"""Optimizers: SGD (with momentum/weight decay) and Adam [24].

The paper uses SGD for synthetic datasets and Adam for experimental
datasets (Sec. IV-D), both with an initial learning rate of 1e-3.

Updates are *fused*: at construction the optimizer packs every
parameter's ``data`` and ``grad`` into one flat buffer each (the
:class:`~repro.nn.module.Parameter` objects are re-pointed at views of
those buffers, so layers keep accumulating gradients exactly as
before), and ``step`` applies the update rule as a handful of whole-
buffer in-place array operations instead of a Python loop over
parameters.  Every element sees the same arithmetic in the same order
as the per-parameter loop formulation, so trained weights are
bit-identical to it — the frozen loop implementations live in
``repro.perf.reference`` and the equivalence is regression-tested.

Construction order matters only in the trivial sense: packing copies
the parameters' current values, so sequential use of several
optimizers over the same model (train, then fine-tune) is fine; two
optimizers mutating the same parameters *concurrently* was never
meaningful and remains unsupported.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate.

    Packs parameter data/gradients into flat buffers (see the module
    docstring) and exposes the fused helpers shared by the concrete
    rules: :meth:`zero_grad` clears all gradients in one write and
    :meth:`clip_global_norm` rescales them against a global-L2 bound in
    one fused pass.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        total = sum(param.size for param in self.parameters)
        self._flat_data = np.empty(total)
        self._flat_grad = np.empty(total)
        self._slices: list[slice] = []
        offset = 0
        for param in self.parameters:
            span = slice(offset, offset + param.size)
            shape = param.data.shape
            self._flat_data[span] = param.data.ravel()
            self._flat_grad[span] = param.grad.ravel()
            # Re-point the parameter at the packed buffers.  All layer
            # code mutates data/grad in place (`+=`, `[...] =`), so the
            # aliasing is preserved for the optimizer's lifetime.
            param.data = self._flat_data[span].reshape(shape)
            param.grad = self._flat_grad[span].reshape(shape)
            self._slices.append(span)
            offset += param.size
        self._scratch = np.empty(total)

    def zero_grad(self) -> None:
        self._flat_grad[...] = 0.0

    def clip_global_norm(self, limit: float) -> float:
        """Scale all gradients so their global L2 norm stays <= ``limit``.

        One fused squaring pass over the packed gradient buffer; the
        per-parameter partial sums are then accumulated in parameter
        order, reproducing the reference loop's float arithmetic
        bit-for-bit (each partial is ``np.sum`` over the same
        contiguous values), before the single fused rescale.
        Returns the pre-clip norm.
        """
        squared = np.multiply(self._flat_grad, self._flat_grad, out=self._scratch)
        total = 0.0
        for span in self._slices:
            # ndarray.sum is np.sum minus the dispatch wrapper — same
            # pairwise reduction, so the partials stay bit-identical.
            total += float(squared[span].sum())
        norm = float(np.sqrt(total))
        if norm > limit:
            self._flat_grad *= limit / norm
        return norm

    def _effective_grad(self, weight_decay: float, out: np.ndarray) -> np.ndarray:
        """``grad + weight_decay * data`` (fused); ``grad`` itself if wd=0."""
        if not weight_decay:
            return self._flat_grad
        np.multiply(weight_decay, self._flat_data, out=out)
        return np.add(self._flat_grad, out, out=out)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be >= 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = np.zeros_like(self._flat_data)
        self._update = np.empty_like(self._flat_data)

    def step(self) -> None:
        grad = self._effective_grad(self.weight_decay, self._update)
        if self.momentum:
            self._velocity *= self.momentum
            self._velocity += grad
            update = self._velocity
        else:
            update = grad
        np.multiply(self.lr, update, out=self._update)
        self._flat_data -= self._update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = np.zeros_like(self._flat_data)
        self._v = np.zeros_like(self._flat_data)
        self._grad_buf = np.empty_like(self._flat_data)
        self._num = np.empty_like(self._flat_data)
        self._den = np.empty_like(self._flat_data)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        grad = self._effective_grad(self.weight_decay, self._grad_buf)
        # First and second moments; each elementwise expression matches
        # the reference loop's operation order exactly.
        self._m *= self.beta1
        np.multiply(1.0 - self.beta1, grad, out=self._num)
        self._m += self._num
        self._v *= self.beta2
        np.multiply(grad, grad, out=self._den)
        np.multiply(1.0 - self.beta2, self._den, out=self._den)
        self._v += self._den
        # Bias-corrected update: data -= lr * m_hat / (sqrt(v_hat) + eps).
        np.divide(self._m, bias1, out=self._num)
        np.divide(self._v, bias2, out=self._den)
        np.sqrt(self._den, out=self._den)
        self._den += self.eps
        np.multiply(self.lr, self._num, out=self._num)
        np.divide(self._num, self._den, out=self._num)
        self._flat_data -= self._num
