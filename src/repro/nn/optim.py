"""Optimizers: SGD (with momentum/weight decay) and Adam [24].

The paper uses SGD for synthetic datasets and Adam for experimental
datasets (Sec. IV-D), both with an initial learning rate of 1e-3.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be >= 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
