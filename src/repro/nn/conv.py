"""1-D convolutional layers for the CsiNet-style comparator.

The paper's related work (Sec. II) credits CsiNet [18] and DeepCMC [19]
with CNN-based CSI compression for cellular MIMO.  To test whether that
architecture family helps in the Wi-Fi setting, ``repro.baselines.
csinet`` builds a convolutional encoder over the subcarrier axis —
these layers are its substrate.

Data layout is ``(batch, channels, length)``; convolutions are "same"
padded with stride 1, implemented via an im2col unfold so forward and
backward are both matrix multiplies.  Gradients are verified against
finite differences in the test suite, like every other layer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.init import initializer
from repro.nn.module import Module, Parameter
from repro.utils.rng import as_generator

__all__ = ["Conv1d", "Flatten", "Reshape"]


class Conv1d(Module):
    """Same-padded 1-D convolution ``(batch, C_in, L) -> (batch, C_out, L)``.

    Parameters
    ----------
    in_channels, out_channels:
        Feature counts.
    kernel_size:
        Odd kernel width (same padding needs symmetry).
    rng:
        Seed/Generator for the Glorot-style weight init.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        bias: bool = True,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ConfigurationError("channel counts must be >= 1")
        if kernel_size < 1 or kernel_size % 2 == 0:
            raise ConfigurationError(
                f"kernel_size must be odd and >= 1, got {kernel_size}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        fan_in = in_channels * kernel_size
        init_fn = initializer("glorot")
        # Reuse the dense initializer on the unfolded geometry.
        flat = init_fn(fan_in, out_channels, as_generator(rng))
        self.weight = Parameter(
            np.ascontiguousarray(flat.T).reshape(
                out_channels, in_channels, kernel_size
            ),
            name="weight",
        )
        self.bias = (
            Parameter(np.zeros(out_channels), name="bias") if bias else None
        )
        self._cached_columns: np.ndarray | None = None
        self._cached_shape: tuple[int, int, int] | None = None

    # -- im2col helpers ----------------------------------------------------------

    def _unfold(self, inputs: np.ndarray) -> np.ndarray:
        """``(batch, C_in, L)`` -> ``(batch, L, C_in * k)`` patch matrix."""
        batch, channels, length = inputs.shape
        pad = self.kernel_size // 2
        padded = np.pad(inputs, ((0, 0), (0, 0), (pad, pad)))
        # Gather k shifted views and stack along a new kernel axis.
        patches = np.stack(
            [padded[:, :, i : i + length] for i in range(self.kernel_size)],
            axis=3,
        )  # (batch, C_in, L, k)
        return patches.transpose(0, 2, 1, 3).reshape(
            batch, length, channels * self.kernel_size
        )

    def _fold_input_grad(
        self, grad_columns: np.ndarray, shape: tuple[int, int, int]
    ) -> np.ndarray:
        """Scatter ``(batch, L, C_in * k)`` gradients back onto the input."""
        batch, channels, length = shape
        pad = self.kernel_size // 2
        grads = grad_columns.reshape(
            batch, length, channels, self.kernel_size
        ).transpose(0, 2, 1, 3)  # (batch, C_in, L, k)
        padded = np.zeros((batch, channels, length + 2 * pad))
        for i in range(self.kernel_size):
            padded[:, :, i : i + length] += grads[:, :, :, i]
        return padded[:, :, pad : pad + length]

    # -- Module interface --------------------------------------------------------

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv1d expected (batch, {self.in_channels}, L), "
                f"got {inputs.shape}"
            )
        columns = self._unfold(inputs)  # (batch, L, C_in*k)
        self._cached_columns = columns
        self._cached_shape = inputs.shape
        kernel = self.weight.data.reshape(self.out_channels, -1)  # (C_out, C_in*k)
        out = columns @ kernel.T  # (batch, L, C_out)
        if self.bias is not None:
            out = out + self.bias.data
        return out.transpose(0, 2, 1)  # (batch, C_out, L)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_columns is None or self._cached_shape is None:
            raise ShapeError("backward called before forward on Conv1d")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, _, length = self._cached_shape
        if grad_output.shape != (batch, self.out_channels, length):
            raise ShapeError(
                f"Conv1d gradient shape {grad_output.shape} != "
                f"{(batch, self.out_channels, length)}"
            )
        grad_cols_out = grad_output.transpose(0, 2, 1)  # (batch, L, C_out)
        kernel = self.weight.data.reshape(self.out_channels, -1)

        # Parameter gradients: sum over batch and positions.
        grad_kernel = np.einsum(
            "blo,blf->of", grad_cols_out, self._cached_columns
        )
        self.weight.grad += grad_kernel.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_cols_out.sum(axis=(0, 1))

        grad_columns = grad_cols_out @ kernel  # (batch, L, C_in*k)
        return self._fold_input_grad(grad_columns, self._cached_shape)

    def macs(self, length: int, batch: int = 1) -> int:
        """Multiply-accumulates for one forward pass."""
        return (
            batch
            * length
            * self.out_channels
            * self.in_channels
            * self.kernel_size
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size})"
        )


class Flatten(Module):
    """``(batch, C, L) -> (batch, C * L)`` with an exact inverse backward."""

    def __init__(self) -> None:
        super().__init__()
        self._cached_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim < 2:
            raise ShapeError("Flatten expects a batched input")
        self._cached_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_shape is None:
            raise ShapeError("backward called before forward on Flatten")
        return np.asarray(grad_output, dtype=np.float64).reshape(
            self._cached_shape
        )


class Reshape(Module):
    """``(batch, prod(shape)) -> (batch, *shape)`` (inverse of Flatten)."""

    def __init__(self, shape: tuple[int, ...]) -> None:
        super().__init__()
        if any(s < 1 for s in shape):
            raise ConfigurationError(f"shape entries must be >= 1, got {shape}")
        self.shape = tuple(int(s) for s in shape)
        self._cached_batch: int | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        expected = int(np.prod(self.shape))
        if inputs.ndim != 2 or inputs.shape[1] != expected:
            raise ShapeError(
                f"Reshape expected (batch, {expected}), got {inputs.shape}"
            )
        self._cached_batch = inputs.shape[0]
        return inputs.reshape((inputs.shape[0],) + self.shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_batch is None:
            raise ShapeError("backward called before forward on Reshape")
        return np.asarray(grad_output, dtype=np.float64).reshape(
            self._cached_batch, -1
        )
