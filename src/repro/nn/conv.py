"""1-D convolutional layers for the CsiNet-style comparator.

The paper's related work (Sec. II) credits CsiNet [18] and DeepCMC [19]
with CNN-based CSI compression for cellular MIMO.  To test whether that
architecture family helps in the Wi-Fi setting, ``repro.baselines.
csinet`` builds a convolutional encoder over the subcarrier axis —
these layers are its substrate.

Data layout is ``(batch, channels, length)``; convolutions are "same"
padded with stride 1, implemented as a strided im2col: patches are
gathered through ``sliding_window_view`` (no per-kernel-position
Python loop, no intermediate stack) into preallocated scratch buffers
that are reused across batches of the same shape, and each pass is a
single GEMM.  The forward pass is bit-identical to the frozen loop
implementation in ``repro.perf.reference``; the backward pass computes
the same three gradients through GEMMs — the weight gradient as one
``(batch*length)``-contracted matmul and the input gradient as an
im2col of the output gradient against the kernel-flipped weights —
which reorders the floating-point reductions, so gradients match the
reference to reduction-order rounding (regression-tested at 1e-12
relative tolerance) rather than bit-for-bit.  Gradients are verified
against finite differences in the test suite, like every other layer.

The arrays returned by ``forward``/``backward`` are freshly allocated
(only the internal patch/padding scratch is reused), so callers may
hold onto them across steps.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigurationError, ShapeError
from repro.nn.init import initializer
from repro.nn.module import Module, Parameter
from repro.utils.rng import as_generator

__all__ = ["Conv1d", "Flatten", "Reshape"]


class Conv1d(Module):
    """Same-padded 1-D convolution ``(batch, C_in, L) -> (batch, C_out, L)``.

    Parameters
    ----------
    in_channels, out_channels:
        Feature counts.
    kernel_size:
        Odd kernel width (same padding needs symmetry).
    rng:
        Seed/Generator for the Glorot-style weight init.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        bias: bool = True,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ConfigurationError("channel counts must be >= 1")
        if kernel_size < 1 or kernel_size % 2 == 0:
            raise ConfigurationError(
                f"kernel_size must be odd and >= 1, got {kernel_size}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        fan_in = in_channels * kernel_size
        init_fn = initializer("glorot")
        # Reuse the dense initializer on the unfolded geometry.
        flat = init_fn(fan_in, out_channels, as_generator(rng))
        self.weight = Parameter(
            np.ascontiguousarray(flat.T).reshape(
                out_channels, in_channels, kernel_size
            ),
            name="weight",
        )
        self.bias = (
            Parameter(np.zeros(out_channels), name="bias") if bias else None
        )
        self._cached_columns: np.ndarray | None = None
        self._cached_shape: tuple[int, int, int] | None = None
        # Scratch buffers keyed by (batch, channels, length) and role
        # ("fwd" unfolds the input, "bwd" the output gradient).  A
        # training run sees at most a handful of shapes (full batches,
        # one ragged tail, the validation batch), so the dict stays
        # tiny while every repeated shape reuses its buffers.
        self._scratch: dict = {}

    # -- im2col helpers ----------------------------------------------------------

    def _im2col(self, array: np.ndarray, role: str) -> np.ndarray:
        """``(batch, C, L)`` -> ``(batch, L, C * k)`` patch matrix.

        Zero-pads into a reused scratch buffer (skipping the pad-and-
        copy entirely when ``padding == 0``, i.e. ``kernel_size == 1``)
        and gathers all kernel taps through one strided window view —
        a single pass over the data, identical values (and therefore a
        bit-identical downstream GEMM) to the per-position loop.
        """
        batch, channels, length = array.shape
        k = self.kernel_size
        pad = k // 2
        key = (role, batch, channels, length)
        if pad == 0:
            columns = self._scratch.get(key)
            if columns is None:
                columns = self._scratch[key] = np.empty((batch, length, channels))
            columns[...] = array.transpose(0, 2, 1)
            return columns
        buffers = self._scratch.get(key)
        if buffers is None:
            padded = np.zeros((batch, channels, length + 2 * pad))
            columns = np.empty((batch, length, channels * k))
            buffers = self._scratch[key] = (padded, columns)
        padded, columns = buffers
        # Only the interior is rewritten; the pad margins stay zero.
        padded[:, :, pad : pad + length] = array
        windows = sliding_window_view(padded, k, axis=2)  # (batch, C, L, k)
        columns.reshape(batch, length, channels, k)[...] = windows.transpose(
            0, 2, 1, 3
        )
        return columns

    # -- Module interface --------------------------------------------------------

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv1d expected (batch, {self.in_channels}, L), "
                f"got {inputs.shape}"
            )
        batch, _, length = inputs.shape
        columns = self._im2col(inputs, "fwd")  # (batch, L, C_in*k)
        self._cached_columns = columns
        self._cached_shape = inputs.shape
        kernel = self.weight.data.reshape(self.out_channels, -1)  # (C_out, C_in*k)
        out = np.empty((batch, length, self.out_channels))
        np.matmul(columns, kernel.T, out=out)  # (batch, L, C_out)
        if self.bias is not None:
            out += self.bias.data
        return out.transpose(0, 2, 1)  # (batch, C_out, L)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_columns is None or self._cached_shape is None:
            raise ShapeError("backward called before forward on Conv1d")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, channels, length = self._cached_shape
        if grad_output.shape != (batch, self.out_channels, length):
            raise ShapeError(
                f"Conv1d gradient shape {grad_output.shape} != "
                f"{(batch, self.out_channels, length)}"
            )
        k = self.kernel_size

        # Gradient patches do double duty: their 2-D view feeds the
        # weight-gradient GEMM and their unfolded twin feeds the
        # input-gradient GEMM below.
        grad_flat = np.ascontiguousarray(grad_output.transpose(0, 2, 1)).reshape(
            batch * length, self.out_channels
        )  # (batch*L, C_out)

        # Parameter gradients: one GEMM contracting batch and positions.
        grad_kernel = grad_flat.T @ self._cached_columns.reshape(
            batch * length, channels * k
        )
        self.weight.grad += grad_kernel.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)

        # Input gradient: the transposed convolution is itself a same-
        # padded correlation of the output gradient with the kernel-
        # flipped weights, so it is one im2col plus one GEMM — no
        # per-position scatter.
        grad_columns = self._im2col(grad_output, "bwd")  # (batch, L, C_out*k)
        flipped = (
            self.weight.data[:, :, ::-1]
            .transpose(0, 2, 1)
            .reshape(self.out_channels * k, channels)
        )
        grad_input = np.empty((batch, length, channels))
        np.matmul(grad_columns, flipped, out=grad_input)
        return grad_input.transpose(0, 2, 1)

    def macs(self, length: int, batch: int = 1) -> int:
        """Multiply-accumulates for one forward pass."""
        return (
            batch
            * length
            * self.out_channels
            * self.in_channels
            * self.kernel_size
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size})"
        )


class Flatten(Module):
    """``(batch, C, L) -> (batch, C * L)`` with an exact inverse backward."""

    def __init__(self) -> None:
        super().__init__()
        self._cached_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim < 2:
            raise ShapeError("Flatten expects a batched input")
        self._cached_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_shape is None:
            raise ShapeError("backward called before forward on Flatten")
        return np.asarray(grad_output, dtype=np.float64).reshape(
            self._cached_shape
        )


class Reshape(Module):
    """``(batch, prod(shape)) -> (batch, *shape)`` (inverse of Flatten)."""

    def __init__(self, shape: tuple[int, ...]) -> None:
        super().__init__()
        if any(s < 1 for s in shape):
            raise ConfigurationError(f"shape entries must be >= 1, got {shape}")
        self.shape = tuple(int(s) for s in shape)
        self._cached_batch: int | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        expected = int(np.prod(self.shape))
        if inputs.ndim != 2 or inputs.shape[1] != expected:
            raise ShapeError(
                f"Reshape expected (batch, {expected}), got {inputs.shape}"
            )
        self._cached_batch = inputs.shape[0]
        return inputs.reshape((inputs.shape[0],) + self.shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_batch is None:
            raise ShapeError("backward called before forward on Reshape")
        return np.asarray(grad_output, dtype=np.float64).reshape(
            self._cached_batch, -1
        )
