"""Parameter and Module base classes for the NumPy NN stack.

The design is deliberately layer-local: each :class:`Module` implements
``forward`` (caching whatever it needs) and ``backward`` (consuming the
upstream gradient, accumulating parameter gradients, and returning the
gradient with respect to its input).  There is no taped autograd graph —
the model topologies in this project are sequential, and a layer-local
scheme keeps every gradient formula explicit and testable.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ShapeError

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor with an accumulated gradient buffer."""

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def __getstate__(self) -> dict:
        """Pickle without the gradient buffer.

        Gradients are per-step scratch, not model state: shipping them
        would double serialized-model payloads and make two models with
        identical weights (one freshly trained, one checkpoint-loaded)
        hash to different content addresses.
        """
        state = self.__dict__.copy()
        state["grad"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.grad is None:
            self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training = True

    def __getstate__(self) -> dict:
        """Pickle without transient forward caches or scratch buffers.

        Layers stash their last forward activations (``_cached*``),
        dropout masks, and im2col scratch between passes; none of it is
        model state, and dropping it keeps serialized models (executor
        payloads, checkpoints) lean and content-stable regardless of
        what the instance last computed.
        """
        state = self.__dict__.copy()
        for key in state:
            if key.startswith("_cached") or key == "_mask":
                state[key] = None
            elif key == "_scratch":
                state[key] = {}
        return state

    # -- forward / backward -------------------------------------------------

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # -- parameter access ----------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth-first and in order."""
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Parameter):
                        yield item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule, depth-first."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    # -- train / eval mode ---------------------------------------------------

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _as_batch(inputs: np.ndarray) -> np.ndarray:
        """Coerce input to a 2-D float batch ``(batch, features)``."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            return inputs[None, :]
        if inputs.ndim != 2:
            raise ShapeError(
                f"expected 1-D or 2-D input, got shape {inputs.shape}"
            )
        return inputs
