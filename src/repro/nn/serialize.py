"""Model parameter serialization to/from ``.npz`` files.

State dicts map ``"p<i>.<name>"`` keys to arrays in parameter-iteration
order, which is deterministic for our sequential models.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module

__all__ = [
    "state_dict",
    "load_state_dict",
    "save_state",
    "load_state",
    "state_digest",
]


def state_dict(model: Module) -> dict[str, np.ndarray]:
    """Snapshot all parameters of ``model`` as copies."""
    return {
        f"p{i}.{param.name}": param.data.copy()
        for i, param in enumerate(model.parameters())
    }


def load_state_dict(model: Module, state: dict[str, np.ndarray]) -> None:
    """Load a snapshot produced by :func:`state_dict` into ``model``."""
    params = list(model.parameters())
    if len(state) != len(params):
        raise ShapeError(
            f"state has {len(state)} tensors but model has {len(params)} parameters"
        )
    for i, param in enumerate(params):
        key = f"p{i}.{param.name}"
        if key not in state:
            raise ShapeError(f"state is missing parameter {key!r}")
        value = np.asarray(state[key], dtype=np.float64)
        if value.shape != param.data.shape:
            raise ShapeError(
                f"parameter {key!r} has shape {value.shape}, "
                f"expected {param.data.shape}"
            )
        # In-place copy: a live optimizer aliases param.data into its
        # packed update buffer, and rebinding would silently detach it.
        param.data[...] = value


def state_digest(state: dict[str, np.ndarray]) -> str:
    """sha256 over a state dict (order-independent).

    Covers each array's name, dtype, shape, and raw bytes — used for
    content-addressed weight filenames (:meth:`ModelZoo.save`) and as
    the integrity check the runtime checkpoint store verifies before
    serving persisted weights.
    """
    import hashlib

    digest = hashlib.sha256()
    for name in sorted(state):
        value = np.ascontiguousarray(state[name])
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(str(value.dtype).encode())
        digest.update(b"\0")
        digest.update(repr(value.shape).encode())
        digest.update(b"\0")
        digest.update(value.tobytes())
        digest.update(b"\0")
    return digest.hexdigest()


def save_state(model: Module, path: str) -> None:
    """Save the model parameters to an ``.npz`` file at ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state_dict(model))


def load_state(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_state` into ``model``."""
    with np.load(path) as data:
        load_state_dict(model, {key: data[key] for key in data.files})
