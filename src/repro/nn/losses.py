"""Loss functions, including the paper's normalized L1 loss (Eq. (8)).

Each loss implements ``forward(prediction, target) -> float`` and
``backward() -> dL/dprediction`` (same shape as the prediction).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["Loss", "MSELoss", "MAELoss", "NormalizedL1Loss"]


class Loss:
    """Base class: caches prediction/target, exposes value and gradient."""

    def __init__(self) -> None:
        self._prediction: np.ndarray | None = None
        self._target: np.ndarray | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ShapeError(
                f"loss shape mismatch: prediction {prediction.shape} "
                f"vs target {target.shape}"
            )
        self._prediction = prediction
        self._target = target
        return self._value(prediction, target)

    def backward(self) -> np.ndarray:
        if self._prediction is None or self._target is None:
            raise ShapeError("loss backward called before forward")
        return self._grad(self._prediction, self._target)

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)

    def _value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def _grad(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error over all elements."""

    def _value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return float(np.mean((prediction - target) ** 2))

    def _grad(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        return 2.0 * (prediction - target) / prediction.size


class MAELoss(Loss):
    """Mean absolute error over all elements."""

    def _value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return float(np.mean(np.abs(prediction - target)))

    def _grad(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        return np.sign(prediction - target) / prediction.size


class NormalizedL1Loss(Loss):
    """The paper's Eq. (8): ``mean_batch || (M(H) - V)^2 / V ||_1``.

    With real/imag-decoupled matrices the elementwise expression
    ``(pred - v)^2 / v`` can change sign with ``v``; the L1 norm takes
    absolute values, so the effective per-element penalty is
    ``(pred - v)^2 / |v|`` — a squared error normalized by the target
    magnitude, emphasizing the small-magnitude beamforming entries.
    ``epsilon`` floors the denominator for numerical stability (the
    paper does not state its stabilizer).  The default 0.1 was selected
    empirically: floors below ~1e-2 over-weight near-zero beamforming
    entries enough to stall convergence (beamforming-vector column
    correlation drops from ~0.99 to ~0.94 at equal epochs).

    The loss is averaged over the batch axis (axis 0) and summed over
    the feature axis, matching Eq. (8) where the norm runs over matrix
    elements and the mean over batch and stations.
    """

    def __init__(self, epsilon: float = 0.1) -> None:
        super().__init__()
        if epsilon <= 0:
            raise ShapeError("epsilon must be positive")
        self.epsilon = float(epsilon)
        self._cached_denominator: np.ndarray | None = None

    def _denominator(self, target: np.ndarray) -> np.ndarray:
        return np.maximum(np.abs(target), self.epsilon)

    def _value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        batch = prediction.shape[0] if prediction.ndim > 1 else 1
        denominator = self._denominator(target)
        # The training loop always pairs forward with backward on the
        # same batch; caching the floored |target| saves backward's
        # recomputation (same array, so the gradient bits are unchanged).
        self._cached_denominator = denominator
        err = (prediction - target) ** 2 / denominator
        return float(np.sum(err) / batch)

    def _grad(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        batch = prediction.shape[0] if prediction.ndim > 1 else 1
        denominator = self._cached_denominator
        if denominator is None or denominator.shape != target.shape:
            denominator = self._denominator(target)
        return 2.0 * (prediction - target) / denominator / batch
