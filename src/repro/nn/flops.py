"""Exact MAC/FLOP counting for models built from this package.

Costs are per single input sample.  The accounting convention, used
consistently by the SplitBeam cost models (DESIGN.md Sec. 3.4):

- one multiply-accumulate (MAC) = 2 FLOPs;
- element-wise activations cost one FLOP per element (ignored in MAC
  counts, included in FLOP counts);
- Dropout/Identity are free at inference time.
"""

from __future__ import annotations

from repro.nn.layers import (
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module

__all__ = ["count_macs", "count_flops", "count_parameters"]

_ACTIVATIONS = (ReLU, LeakyReLU, Tanh, Sigmoid)


def count_macs(model: Module) -> int:
    """Total multiply-accumulates per input sample."""
    total = 0
    for module in model.modules():
        if isinstance(module, Linear):
            total += module.in_features * module.out_features
    return total


def count_flops(model: Module) -> int:
    """Total real floating-point operations per input sample.

    Linear layers contribute 2 FLOPs per MAC plus one add per output
    when biased; activations contribute one FLOP per output element.
    """
    total = 0
    last_width = None
    for module in model.modules():
        if isinstance(module, Linear):
            total += 2 * module.in_features * module.out_features
            if module.bias is not None:
                total += module.out_features
            last_width = module.out_features
        elif isinstance(module, _ACTIVATIONS) and last_width is not None:
            total += last_width
        elif isinstance(module, (Dropout, Identity, Sequential)):
            continue
    return total


def count_parameters(model: Module) -> int:
    """Total trainable scalar parameters."""
    return model.num_parameters()
