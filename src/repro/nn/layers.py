"""Layers: Linear, activations, Dropout, and the Sequential container.

Each layer caches its forward inputs and implements an explicit backward
pass.  Backward must be called after forward with a gradient of the same
shape as the forward output; parameter gradients *accumulate* (call
``zero_grad`` between steps, as the optimizers do).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.init import initializer
from repro.nn.module import Module, Parameter
from repro.utils.rng import as_generator

__all__ = [
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Dropout",
    "Sequential",
]


class Linear(Module):
    """Fully-connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to learn an additive bias (default True).
    init:
        ``"glorot"`` or ``"he"`` (default ``"glorot"``).
    rng:
        Seed or Generator for the weight init.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: str = "glorot",
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Linear dims must be positive, got {in_features}x{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        init_fn = initializer(init)
        self.weight = Parameter(
            init_fn(in_features, out_features, as_generator(rng)), name="weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self._cached_input: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = self._as_batch(inputs)
        if inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear expected {self.in_features} features, got {inputs.shape[1]}"
            )
        self._cached_input = inputs
        out = np.empty((inputs.shape[0], self.out_features))
        np.matmul(inputs, self.weight.data, out=out)
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise ShapeError("backward called before forward on Linear")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.ndim == 1:
            grad_output = grad_output[None, :]
        self.weight.grad += self._cached_input.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T

    def macs(self, batch: int = 1) -> int:
        """Multiply-accumulate count for a forward pass of ``batch`` rows."""
        return batch * self.in_features * self.out_features

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear({self.in_features}, {self.out_features})"


class _Activation(Module):
    """Base for cached element-wise activations.

    Forward caches both its input and its output; ``_dfn_from`` lets a
    subclass derive the gradient from the cached output (e.g. tanh'
    from tanh) instead of re-evaluating the transcendental — the same
    expression on the same bits, just without the second pass.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cached_input: np.ndarray | None = None
        self._cached_output: np.ndarray | None = None

    def _fn(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _dfn(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _dfn_from(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Derivative given forward input ``x`` and cached output ``y``."""
        return self._dfn(x)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._cached_input = inputs
        self._cached_output = self._fn(inputs)
        return self._cached_output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None or self._cached_output is None:
            raise ShapeError(f"backward before forward on {type(self).__name__}")
        return np.asarray(grad_output) * self._dfn_from(
            self._cached_input, self._cached_output
        )


class ReLU(_Activation):
    """Rectified linear unit."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def _dfn(self, x: np.ndarray) -> np.ndarray:
        return (x > 0).astype(np.float64)


class LeakyReLU(_Activation):
    """Leaky ReLU with configurable negative slope (default 0.01)."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ConfigurationError("negative_slope must be >= 0")
        self.negative_slope = float(negative_slope)

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, self.negative_slope * x)

    def _dfn(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, 1.0, self.negative_slope)


class Tanh(_Activation):
    """Hyperbolic tangent."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def _dfn(self, x: np.ndarray) -> np.ndarray:
        return 1.0 - np.tanh(x) ** 2

    def _dfn_from(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 1.0 - y**2


class Sigmoid(_Activation):
    """Logistic sigmoid."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def _dfn(self, x: np.ndarray) -> np.ndarray:
        s = self._fn(x)
        return s * (1.0 - s)

    def _dfn_from(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * (1.0 - y)


class Identity(_Activation):
    """Pass-through layer (useful as a named placeholder)."""

    def _fn(self, x: np.ndarray) -> np.ndarray:
        return x

    def _dfn(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(x)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(
        self, p: float = 0.5, rng: "int | np.random.Generator | None" = None
    ) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = as_generator(rng)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if not self.training or self.p == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.p
        self._mask = (self.rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_output)
        return np.asarray(grad_output) * self._mask


class Sequential(Module):
    """Chain of layers applied in order."""

    def __init__(self, layers: Sequence[Module]) -> None:
        super().__init__()
        self.layers = list(layers)
        if not self.layers:
            raise ConfigurationError("Sequential requires at least one layer")

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = inputs
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def slice(self, start: int, stop: int | None = None) -> "Sequential":
        """A new Sequential *sharing* the parameter objects of a sub-range.

        Used to split a trained model into head and tail: the slices keep
        referencing the same :class:`Parameter` instances, so no copying
        or re-training is involved.
        """
        sub = self.layers[start:stop]
        return Sequential(sub)
