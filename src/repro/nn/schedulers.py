"""Learning-rate schedules.

The paper decays the learning rate by a factor of 10 after epochs 20 and
30 of a 40-epoch run (Sec. IV-D) — that is ``MultiStepLR(milestones=(20,
30), gamma=0.1)`` here.  Schedulers are stepped once per epoch.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepLR", "MultiStepLR"]


class LRScheduler:
    """Base scheduler; mutates ``optimizer.lr`` once per ``step()``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (useful as a default)."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ConfigurationError("step_size must be positive")
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply by ``gamma`` at each epoch in ``milestones``.

    ``MultiStepLR(opt, milestones=(20, 30))`` reproduces the paper's
    schedule: lr/10 after epoch 20 and lr/100 after epoch 30.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        milestones: Sequence[int] = (20, 30),
        gamma: float = 0.1,
    ) -> None:
        super().__init__(optimizer)
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        milestones = sorted(int(m) for m in milestones)
        if any(m <= 0 for m in milestones):
            raise ConfigurationError("milestones must be positive epochs")
        self.milestones = milestones
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.gamma**passed
