"""Numerical gradient verification via central finite differences.

Used by the test suite to prove backward passes correct; also usable as
a debugging aid when adding new layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import Loss, MSELoss
from repro.nn.module import Module
from repro.utils.rng import as_generator

__all__ = ["gradcheck_module", "gradcheck_loss", "numerical_gradient"]


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``array`` in place.

    ``fn`` takes no arguments and must read the current contents of
    ``array``; entries are perturbed one at a time.  Perturbation uses
    multi-indices rather than a flat view so non-contiguous arrays
    (where ``reshape(-1)`` would silently copy) are handled correctly.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    for index in np.ndindex(array.shape):
        original = array[index]
        array[index] = original + eps
        plus = fn()
        array[index] = original - eps
        minus = fn()
        array[index] = original
        grad[index] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck_module(
    module: Module,
    input_shape: tuple[int, ...],
    loss: Loss | None = None,
    rng: "int | np.random.Generator | None" = 0,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic gradients of ``module`` against finite differences.

    Checks both the input gradient and every parameter gradient under a
    scalar loss (default MSE against a random target).  Returns True on
    success, raises ``AssertionError`` with a description on failure.
    """
    rng = as_generator(rng)
    loss = loss or MSELoss()
    module.eval()  # disable stochastic layers for determinism
    inputs = rng.normal(size=input_shape)
    probe = module.forward(inputs)
    target = rng.normal(size=probe.shape)

    def scalar() -> float:
        return loss.forward(module.forward(inputs), target)

    # Analytic gradients.
    module.zero_grad()
    loss.forward(module.forward(inputs), target)
    grad_input = module.backward(loss.backward())
    if grad_input.shape != np.asarray(inputs).reshape(
        grad_input.shape
    ).shape:  # pragma: no cover - shape sanity
        raise AssertionError("input gradient shape mismatch")

    num_grad_input = numerical_gradient(scalar, inputs, eps=eps)
    _compare("input", grad_input.reshape(inputs.shape), num_grad_input, atol, rtol)

    for index, param in enumerate(module.parameters()):
        numerical = numerical_gradient(scalar, param.data, eps=eps)
        _compare(f"param[{index}]:{param.name}", param.grad, numerical, atol, rtol)
    return True


def gradcheck_loss(
    loss: Loss,
    shape: tuple[int, ...],
    rng: "int | np.random.Generator | None" = 0,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Verify a loss's prediction gradient against finite differences."""
    rng = as_generator(rng)
    prediction = rng.normal(size=shape)
    target = rng.normal(size=shape)
    # Keep the target away from loss kinks/denominator floors.
    target = np.where(np.abs(target) < 0.2, 0.2 * np.sign(target) + 0.2, target)

    loss.forward(prediction, target)
    analytic = loss.backward()

    def scalar() -> float:
        return loss.forward(prediction, target)

    numerical = numerical_gradient(scalar, prediction, eps=eps)
    _compare("prediction", analytic, numerical, atol, rtol)
    return True


def _compare(
    label: str,
    analytic: np.ndarray,
    numerical: np.ndarray,
    atol: float,
    rtol: float,
) -> None:
    if not np.allclose(analytic, numerical, atol=atol, rtol=rtol):
        worst = float(np.max(np.abs(analytic - numerical)))
        raise AssertionError(
            f"gradient mismatch for {label}: max abs diff {worst:.3e} "
            f"(atol={atol}, rtol={rtol})"
        )
