"""Normalization layers: LayerNorm and BatchNorm1d.

The deeper Table II architectures (5-7 weight layers) train noticeably
better with normalization between blocks — the paper itself observes
that naively enlarging the model *hurts* ("increasing the model
parameters does not guarantee to improve the accuracy ... due to the
model severely overfitting").  These layers power the deep-architecture
ablation bench; the canonical 3-layer SplitBeam does not need them.

Both implement exact analytic backward passes (verified against finite
differences in the test suite):

- :class:`LayerNorm` normalizes each sample over its feature axis —
  statistics are per-row, so train and eval behave identically;
- :class:`BatchNorm1d` normalizes each feature over the batch during
  training and tracks running moments for eval mode.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.module import Module, Parameter

__all__ = ["LayerNorm", "BatchNorm1d"]


class LayerNorm(Module):
    """Per-sample feature normalization with learnable affine transform.

    ``y = gamma * (x - mean(x)) / sqrt(var(x) + eps) + beta`` where the
    statistics are over each row's features.
    """

    def __init__(self, n_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if n_features < 1:
            raise ConfigurationError("n_features must be >= 1")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.n_features = int(n_features)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(n_features), name="gamma")
        self.beta = Parameter(np.zeros(n_features), name="beta")
        self._cached_norm: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = self._as_batch(inputs)
        if inputs.shape[1] != self.n_features:
            raise ShapeError(
                f"LayerNorm expected {self.n_features} features, "
                f"got {inputs.shape[1]}"
            )
        mean = inputs.mean(axis=1, keepdims=True)
        var = inputs.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (inputs - mean) * inv_std
        self._cached_norm = (normalized, inv_std)
        return self.gamma.data * normalized + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_norm is None:
            raise ShapeError("backward called before forward on LayerNorm")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.ndim == 1:
            grad_output = grad_output[None, :]
        normalized, inv_std = self._cached_norm

        self.gamma.grad += np.sum(grad_output * normalized, axis=0)
        self.beta.grad += np.sum(grad_output, axis=0)

        # d/dx of (x - mean)/std with per-row statistics.
        grad_norm = grad_output * self.gamma.data
        row_mean = grad_norm.mean(axis=1, keepdims=True)
        row_dot = (grad_norm * normalized).mean(axis=1, keepdims=True)
        return inv_std * (grad_norm - row_mean - normalized * row_dot)


class BatchNorm1d(Module):
    """Batch normalization over 2-D inputs ``(batch, features)``.

    Training mode normalizes by batch statistics and updates running
    moments with ``momentum``; eval mode uses the running moments, so a
    deployed head/tail behaves deterministically.
    """

    def __init__(
        self, n_features: int, eps: float = 1e-5, momentum: float = 0.1
    ) -> None:
        super().__init__()
        if n_features < 1:
            raise ConfigurationError("n_features must be >= 1")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ConfigurationError("momentum must be in (0, 1]")
        self.n_features = int(n_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(n_features), name="gamma")
        self.beta = Parameter(np.zeros(n_features), name="beta")
        self.running_mean = np.zeros(n_features)
        self.running_var = np.ones(n_features)
        self._cached_norm: tuple[np.ndarray, np.ndarray, int] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = self._as_batch(inputs)
        if inputs.shape[1] != self.n_features:
            raise ShapeError(
                f"BatchNorm1d expected {self.n_features} features, "
                f"got {inputs.shape[1]}"
            )
        if self.training:
            if inputs.shape[0] < 2:
                raise ShapeError(
                    "BatchNorm1d needs batches of >= 2 samples in training mode"
                )
            mean = inputs.mean(axis=0)
            var = inputs.var(axis=0)
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (inputs - mean) * inv_std
        self._cached_norm = (normalized, inv_std, inputs.shape[0])
        return self.gamma.data * normalized + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_norm is None:
            raise ShapeError("backward called before forward on BatchNorm1d")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.ndim == 1:
            grad_output = grad_output[None, :]
        normalized, inv_std, _ = self._cached_norm

        self.gamma.grad += np.sum(grad_output * normalized, axis=0)
        self.beta.grad += np.sum(grad_output, axis=0)

        grad_norm = grad_output * self.gamma.data
        if not self.training:
            # Eval mode treats running statistics as constants.
            return grad_norm * inv_std
        col_mean = grad_norm.mean(axis=0)
        col_dot = (grad_norm * normalized).mean(axis=0)
        return inv_std * (grad_norm - col_mean - normalized * col_dot)
