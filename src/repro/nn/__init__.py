"""A compact NumPy neural-network stack (layers, backprop, optimizers).

The paper trains its DNNs with PyTorch; this offline reproduction ships
its own minimal but complete training substrate instead:

- :mod:`repro.nn.module` — ``Parameter`` / ``Module`` base classes;
- :mod:`repro.nn.layers` — ``Linear``, activations, ``Dropout``,
  ``Sequential``;
- :mod:`repro.nn.losses` — the paper's normalized L1 loss (Eq. (8)),
  plus MSE/MAE;
- :mod:`repro.nn.optim` — ``SGD`` and ``Adam`` [24];
- :mod:`repro.nn.schedulers` — the paper's epoch-20/30 step decay;
- :mod:`repro.nn.trainer` — batch training with validation-metric
  checkpointing, exactly the recipe of Sec. IV-D;
- :mod:`repro.nn.flops` — exact MAC/FLOP counting used by the cost
  models;
- :mod:`repro.nn.gradcheck` — numerical gradient verification used by
  the test suite.

Gradient correctness for every layer and loss is property-tested against
central finite differences (see ``tests/nn/test_gradcheck.py``).
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Linear,
    ReLU,
    LeakyReLU,
    Tanh,
    Sigmoid,
    Identity,
    Dropout,
    Sequential,
)
from repro.nn.normalization import LayerNorm, BatchNorm1d
from repro.nn.conv import Conv1d, Flatten, Reshape
from repro.nn.losses import Loss, MSELoss, MAELoss, NormalizedL1Loss
from repro.nn.optim import Optimizer, SGD, Adam
from repro.nn.schedulers import LRScheduler, ConstantLR, StepLR, MultiStepLR
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.nn.serialize import save_state, load_state, state_dict, load_state_dict
from repro.nn.flops import count_macs, count_flops, count_parameters
from repro.nn.gradcheck import gradcheck_module, gradcheck_loss

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Dropout",
    "Sequential",
    "LayerNorm",
    "BatchNorm1d",
    "Conv1d",
    "Flatten",
    "Reshape",
    "Loss",
    "MSELoss",
    "MAELoss",
    "NormalizedL1Loss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "MultiStepLR",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "save_state",
    "load_state",
    "state_dict",
    "load_state_dict",
    "count_macs",
    "count_flops",
    "count_parameters",
    "gradcheck_module",
    "gradcheck_loss",
]
