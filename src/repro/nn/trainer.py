"""Mini-batch training loop with validation-based checkpointing.

Implements the recipe of Sec. IV-D: shuffled mini-batches (default batch
size 16), a fixed number of epochs (default 40), learning rate 1e-3
decayed by 10x after epochs 20 and 30, and per-epoch evaluation on the
validation split with the best parameters retained.  The validation
metric is pluggable — the paper checkpoints on achieved BER; a
validation-loss metric is the cheap default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import TrainingError
from repro.nn.losses import Loss, NormalizedL1Loss
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.schedulers import LRScheduler, MultiStepLR
from repro.nn.serialize import load_state_dict, state_dict
from repro.perf import profiled
from repro.utils.rng import as_generator

__all__ = ["TrainingConfig", "TrainingHistory", "Trainer"]

ValidationMetric = Callable[[Module, np.ndarray, np.ndarray], float]


@dataclass
class TrainingConfig:
    """Hyper-parameters for a training run (paper defaults)."""

    epochs: int = 40
    batch_size: int = 16
    learning_rate: float = 1e-3
    optimizer: str = "adam"  # "adam" for experimental data, "sgd" for synthetic
    momentum: float = 0.9  # used by SGD only
    weight_decay: float = 0.0
    lr_milestones: tuple[int, ...] = (20, 30)
    lr_gamma: float = 0.1
    shuffle: bool = True
    seed: int = 0
    verbose: bool = False
    #: Global-norm gradient clipping; None disables.  Plain SGD on the
    #: wide 160 MHz models diverges without it (the Eq. (8) loss sums
    #: over thousands of output features).
    max_grad_norm: float | None = 5.0
    #: Stop after this many epochs without validation improvement; None
    #: runs the full schedule (the paper's fixed-epoch recipe).
    early_stop_patience: int | None = None

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise TrainingError("epochs must be positive")
        if self.batch_size <= 0:
            raise TrainingError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise TrainingError(f"unknown optimizer {self.optimizer!r}")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise TrainingError("max_grad_norm must be positive or None")
        if self.early_stop_patience is not None and self.early_stop_patience < 1:
            raise TrainingError("early_stop_patience must be >= 1 or None")


@dataclass
class TrainingHistory:
    """Per-epoch records of a training run."""

    train_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_metric: float = float("inf")
    stopped_early: bool = False

    def __len__(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Trains a model on (inputs, targets) with validation checkpointing.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module` mapping 2-D batches to 2-D
        batches.
    loss:
        Training loss (default: the paper's :class:`NormalizedL1Loss`).
    config:
        Training hyper-parameters.
    validation_metric:
        ``f(model, val_inputs, val_targets) -> float`` (lower is
        better).  Defaults to validation loss.  The paper's BER-based
        checkpointing is provided by
        :func:`repro.core.training.ber_validation_metric`.
    """

    def __init__(
        self,
        model: Module,
        loss: Loss | None = None,
        config: TrainingConfig | None = None,
        validation_metric: ValidationMetric | None = None,
    ) -> None:
        self.model = model
        self.loss = loss if loss is not None else NormalizedL1Loss()
        self.config = config or TrainingConfig()
        self.validation_metric = validation_metric or self._validation_loss
        # Per-fit shuffled-epoch buffers (see _run_epoch).
        self._epoch_buffers: "tuple[np.ndarray, np.ndarray] | None" = None

    # -- public API -----------------------------------------------------------

    @profiled("trainer.fit")
    def fit(
        self,
        train_inputs: np.ndarray,
        train_targets: np.ndarray,
        val_inputs: np.ndarray | None = None,
        val_targets: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Train and (when a validation split is given) restore the best
        parameters observed on the validation metric."""
        train_inputs = np.asarray(train_inputs, dtype=np.float64)
        train_targets = np.asarray(train_targets, dtype=np.float64)
        if train_inputs.shape[0] != train_targets.shape[0]:
            raise TrainingError(
                f"input/target sample counts differ: "
                f"{train_inputs.shape[0]} vs {train_targets.shape[0]}"
            )
        if train_inputs.shape[0] == 0:
            raise TrainingError("empty training set")
        if (val_inputs is None) != (val_targets is None):
            # A half-provided split used to silently disable validation
            # (and with it best-checkpoint restoration) — a recipe for
            # quietly shipping last-epoch weights.  Fail loudly instead.
            raise TrainingError(
                "val_inputs and val_targets must be provided together "
                "(or both omitted to train without validation)"
            )
        has_validation = val_inputs is not None and val_targets is not None
        if has_validation:
            val_inputs = np.asarray(val_inputs, dtype=np.float64)
            val_targets = np.asarray(val_targets, dtype=np.float64)
            if val_inputs.shape[0] != val_targets.shape[0]:
                raise TrainingError(
                    f"validation input/target sample counts differ: "
                    f"{val_inputs.shape[0]} vs {val_targets.shape[0]}"
                )

        optimizer = self._build_optimizer()
        scheduler = self._build_scheduler(optimizer)
        rng = as_generator(self.config.seed)
        history = TrainingHistory()
        best_state: dict[str, np.ndarray] | None = None
        self._epoch_buffers = None  # fresh per fit; shapes may change

        for epoch in range(self.config.epochs):
            epoch_loss = self._run_epoch(
                train_inputs, train_targets, optimizer, rng
            )
            history.train_loss.append(epoch_loss)
            history.learning_rate.append(optimizer.lr)
            scheduler.step()

            if has_validation:
                self.model.eval()
                metric = float(
                    self.validation_metric(self.model, val_inputs, val_targets)
                )
                self.model.train()
                history.val_metric.append(metric)
                if metric < history.best_val_metric:
                    history.best_val_metric = metric
                    history.best_epoch = epoch
                    best_state = state_dict(self.model)
            if self.config.verbose:  # pragma: no cover - console output
                val_text = (
                    f" val={history.val_metric[-1]:.5f}" if has_validation else ""
                )
                print(f"epoch {epoch + 1}: loss={epoch_loss:.5f}{val_text}")

            patience = self.config.early_stop_patience
            if (
                has_validation
                and patience is not None
                and epoch - history.best_epoch >= patience
            ):
                history.stopped_early = True
                break

        self._epoch_buffers = None  # release the shuffle scratch
        if best_state is not None:
            load_state_dict(self.model, best_state)
        self.model.eval()
        return history

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Run the model in eval mode (no dropout)."""
        was_training = self.model.training
        self.model.eval()
        out = self.model.forward(np.asarray(inputs, dtype=np.float64))
        if was_training:
            self.model.train()
        return out

    # -- internals --------------------------------------------------------------

    @profiled("trainer.epoch")
    def _run_epoch(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        optimizer: Optimizer,
        rng: np.random.Generator,
    ) -> float:
        """One pass over shuffled mini-batches.

        The shuffle gathers into preallocated epoch buffers (built
        lazily on the first shuffled epoch, reused for the rest of the
        fit), so each mini-batch is a zero-copy contiguous view instead
        of a fancy-indexed copy — identical values, identical trained
        weights, no per-batch allocation.
        """
        count = inputs.shape[0]
        if self.config.shuffle:
            order = rng.permutation(count)
            if self._epoch_buffers is None:
                self._epoch_buffers = (
                    np.empty_like(inputs),
                    np.empty_like(targets),
                )
            epoch_in, epoch_target = self._epoch_buffers
            np.take(inputs, order, axis=0, out=epoch_in)
            np.take(targets, order, axis=0, out=epoch_target)
        else:
            epoch_in, epoch_target = inputs, targets
        total = 0.0
        for start in range(0, count, self.config.batch_size):
            stop = min(start + self.config.batch_size, count)
            batch_in = epoch_in[start:stop]
            batch_target = epoch_target[start:stop]
            optimizer.zero_grad()
            prediction = self.model.forward(batch_in)
            # Losses reduce to a per-sample mean, so the epoch loss must
            # weight each batch by its sample count — otherwise a ragged
            # final batch (e.g. 1 sample at batch size 16) counts 16x.
            total += self.loss.forward(prediction, batch_target) * (stop - start)
            self.model.backward(self.loss.backward())
            self._clip_gradients(optimizer)
            optimizer.step()
        return total / count

    def _clip_gradients(self, optimizer: "Optimizer | None" = None) -> None:
        """Scale all gradients so their global L2 norm stays bounded.

        With an optimizer at hand the clip runs fused over its packed
        gradient buffer (:meth:`~repro.nn.optim.Optimizer.
        clip_global_norm`, bit-identical to this loop); the loop remains
        as the optimizer-free fallback.
        """
        limit = self.config.max_grad_norm
        if limit is None:
            return
        if optimizer is not None:
            optimizer.clip_global_norm(limit)
            return
        total = 0.0
        params = list(self.model.parameters())
        for param in params:
            total += float(np.sum(param.grad**2))
        norm = np.sqrt(total)
        if norm > limit:
            scale = limit / norm
            for param in params:
                param.grad *= scale

    def _build_optimizer(self) -> Optimizer:
        params = list(self.model.parameters())
        if self.config.optimizer == "adam":
            return Adam(
                params,
                lr=self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            )
        return SGD(
            params,
            lr=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def _build_scheduler(self, optimizer: Optimizer) -> LRScheduler:
        return MultiStepLR(
            optimizer,
            milestones=self.config.lr_milestones,
            gamma=self.config.lr_gamma,
        )

    def _validation_loss(
        self, model: Module, inputs: np.ndarray, targets: np.ndarray
    ) -> float:
        prediction = model.forward(np.asarray(inputs, dtype=np.float64))
        return self.loss.forward(prediction, np.asarray(targets, dtype=np.float64))
