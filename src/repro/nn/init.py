"""Weight initializers for Linear layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator

__all__ = ["glorot_uniform", "he_uniform", "initializer"]


def glorot_uniform(
    fan_in: int, fan_out: int, rng: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """Glorot/Xavier uniform init — suited to tanh/linear layers."""
    rng = as_generator(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(
    fan_in: int, fan_out: int, rng: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """He/Kaiming uniform init — suited to ReLU-family layers."""
    rng = as_generator(rng)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


_INITIALIZERS = {"glorot": glorot_uniform, "he": he_uniform}


def initializer(name: str):
    """Look up an initializer function by name (``glorot`` or ``he``)."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown initializer {name!r}; options: {sorted(_INITIALIZERS)}"
        ) from None
