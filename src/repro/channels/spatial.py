"""Antenna-array spatial correlation under a Laplacian power-angle spectrum.

TGn/TGac channels model each cluster's departure/arrival energy as a
truncated Laplacian power-angle spectrum (PAS) around the cluster's mean
angle.  For a uniform linear array (ULA) with half-wavelength spacing,
the correlation between elements ``p`` and ``q`` is

``rho(p - q) = integral exp(j * 2*pi * d * (p - q) * sin(theta)) * PAS(theta) dtheta``

evaluated here by numerical quadrature on a fine angle grid.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ula_correlation", "correlation_sqrt"]

#: Element spacing in wavelengths (half-wavelength ULA).
ELEMENT_SPACING_WL: float = 0.5

#: Angular grid resolution (points across the truncation window).
_GRID_POINTS: int = 721


def _laplacian_pas(
    grid_deg: np.ndarray, mean_deg: float, spread_deg: float
) -> np.ndarray:
    """Truncated Laplacian PAS on ``grid_deg``, normalized to unit mass."""
    pas = np.exp(-np.sqrt(2.0) * np.abs(grid_deg - mean_deg) / spread_deg)
    total = np.trapezoid(pas, grid_deg)
    return pas / total


def ula_correlation(
    n_antennas: int,
    mean_angle_deg: float,
    angular_spread_deg: float,
    spacing_wl: float = ELEMENT_SPACING_WL,
) -> np.ndarray:
    """Spatial correlation matrix of a ULA for one cluster.

    Parameters
    ----------
    n_antennas:
        Array size.
    mean_angle_deg:
        Cluster mean angle of arrival/departure (broadside = 0).
    angular_spread_deg:
        Laplacian angular spread (sigma), must be positive.
    spacing_wl:
        Element spacing in wavelengths (default half wavelength).

    Returns a Hermitian positive semi-definite ``(n, n)`` matrix with a
    unit diagonal.
    """
    if n_antennas < 1:
        raise ConfigurationError("n_antennas must be >= 1")
    if angular_spread_deg <= 0:
        raise ConfigurationError("angular_spread_deg must be positive")
    if spacing_wl <= 0:
        raise ConfigurationError("spacing_wl must be positive")
    if n_antennas == 1:
        return np.ones((1, 1), dtype=np.complex128)

    # Truncate the PAS at +/- 180 degrees around the mean.
    grid = np.linspace(mean_angle_deg - 180.0, mean_angle_deg + 180.0, _GRID_POINTS)
    pas = _laplacian_pas(grid, mean_angle_deg, angular_spread_deg)
    theta = np.deg2rad(grid)

    lags = np.arange(n_antennas)
    phases = np.exp(
        1j * 2.0 * np.pi * spacing_wl * np.outer(lags, np.sin(theta))
    )
    rho = np.trapezoid(phases * pas[None, :], grid, axis=1)

    correlation = np.empty((n_antennas, n_antennas), dtype=np.complex128)
    for p in range(n_antennas):
        for q in range(n_antennas):
            lag = p - q
            correlation[p, q] = rho[lag] if lag >= 0 else np.conj(rho[-lag])
    # Normalize the diagonal exactly to 1 (quadrature residue is tiny).
    diag = np.real(np.diag(correlation))
    scale = np.sqrt(np.outer(diag, diag))
    return correlation / scale


def correlation_sqrt(correlation: np.ndarray) -> np.ndarray:
    """Hermitian square root of a PSD correlation matrix.

    Small negative eigenvalues from numerical quadrature are clipped to
    zero before the square root.
    """
    correlation = np.asarray(correlation, dtype=np.complex128)
    eigenvalues, eigenvectors = np.linalg.eigh(correlation)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.conj().T
