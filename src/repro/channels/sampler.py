"""Packetized multi-user CSI sampling.

Emulates the paper's collection campaign: the AP transmits 1000
packets/second; each STA estimates CSI from every received packet.  The
sampler drives one :class:`~repro.channels.tgac.TgacChannel` per user
(same environment, different placement jitter), applies the
environment's blockage shadowing and CSI estimation noise, drops
packets independently per user, and tags every sample with a sequence
number so the dataset pipeline can re-align users exactly like the
paper does ("using the packets sequence number, the data collected from
different devices are aligned").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.channels.doppler import ShadowingProcess
from repro.perf.profile import profiled
from repro.channels.environment import Environment
from repro.channels.tgac import TgacChannel
from repro.phy.noise import awgn
from repro.phy.ofdm import BandPlan
from repro.utils.rng import as_generator, spawn

__all__ = ["CsiBatch", "CsiSampler"]


@dataclass
class CsiBatch:
    """CSI collected by one user over a session.

    ``csi`` has shape ``(n_received, S, Nr, Nt)``; ``sequence`` holds
    the packet sequence number of each received sample (monotonically
    increasing, with gaps where packets were dropped).
    """

    csi: np.ndarray
    sequence: np.ndarray

    def __post_init__(self) -> None:
        if self.csi.shape[0] != self.sequence.shape[0]:
            raise ConfigurationError("csi and sequence lengths differ")

    @property
    def n_samples(self) -> int:
        return int(self.csi.shape[0])


class CsiSampler:
    """Generates per-user CSI streams for one environment and topology.

    Parameters
    ----------
    env:
        An :class:`~repro.channels.environment.Environment` preset.
    n_users:
        Number of STAs (each gets an independent channel instance).
    n_rx, n_tx:
        Antennas per STA and at the AP.
    band:
        OFDM band plan.
    packet_rate_hz:
        CSI sampling rate (the paper uses 1000 packets/s).
    """

    def __init__(
        self,
        env: Environment,
        n_users: int,
        n_rx: int,
        n_tx: int,
        band: BandPlan,
        packet_rate_hz: float = 1000.0,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_users < 1:
            raise ConfigurationError("n_users must be >= 1")
        if packet_rate_hz <= 0:
            raise ConfigurationError("packet_rate_hz must be positive")
        self.env = env
        self.n_users = int(n_users)
        self.n_rx = int(n_rx)
        self.n_tx = int(n_tx)
        self.band = band
        self.dt_s = 1.0 / float(packet_rate_hz)
        self.rng = as_generator(rng)

    @profiled("sampler.collect_session")
    def collect_session(
        self, n_packets: int, chunk_size: int = 256
    ) -> list[CsiBatch]:
        """One measurement session: fresh channels, ``n_packets`` packets.

        Returns one :class:`CsiBatch` per user.  Each session models a
        distinct collection run (the paper repeats measurements with at
        least 4 hours in between): channels and placement jitter are
        redrawn.

        Generation is chunked and fully array-based: per user,
        ``chunk_size`` packets of channel evolution, shadowing, packet
        drops, and CSI estimation noise are produced by a handful of
        vectorized draws instead of per-packet Python steps.  The
        packet-drop stream consumes ``self.rng`` exactly like the
        original per-packet loop, so drop patterns (and therefore
        sequence alignment) are reproducible per seed.
        """
        if n_packets < 1:
            raise ConfigurationError("n_packets must be >= 1")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        user_rngs = spawn(self.rng, self.n_users)
        # Each user occupies one of the room's fixed candidate locations
        # for the whole session (without replacement while possible).
        offsets = self.env.location_offsets_deg()
        replace = self.n_users > offsets.size
        chosen = self.rng.choice(offsets, size=self.n_users, replace=replace)
        channels = [
            TgacChannel(
                self.env.profile,
                n_rx=self.n_rx,
                n_tx=self.n_tx,
                band=self.band,
                doppler_hz=self.env.doppler_hz,
                sample_interval_s=self.dt_s,
                angle_offset_deg=float(chosen[i]),
                rician_k_db=self.env.rician_k_db,
                rng=user_rngs[i],
            )
            for i in range(self.n_users)
        ]
        shadowing = [
            ShadowingProcess(
                sigma_db=self.env.shadowing_sigma_db,
                coherence_s=self.env.shadowing_coherence_s,
                dt_s=self.dt_s,
                rng=user_rngs[i],
            )
            for i in range(self.n_users)
        ]

        # One uniform draw per (packet, user), C-ordered like the
        # original per-packet loop drew them.
        received = (
            self.rng.random((n_packets, self.n_users))
            >= self.env.packet_drop_rate
        )

        collected: list[list[np.ndarray]] = [[] for _ in range(self.n_users)]
        start = 0
        while start < n_packets:
            length = min(chunk_size, n_packets - start)
            for i in range(self.n_users):
                block = channels[i].sample(length)
                block *= shadowing[i].sample(length)[:, None, None, None]
                block = block[received[start : start + length, i]]
                collected[i].append(self._estimate_block(block, user_rngs[i]))
            start += length

        batches = []
        for i in range(self.n_users):
            csi = np.concatenate(collected[i], axis=0)
            if csi.shape[0] == 0:
                raise ConfigurationError(
                    "a user received no packets; lower the drop rate or "
                    "collect more packets"
                )
            batches.append(
                CsiBatch(
                    csi=csi,
                    sequence=np.nonzero(received[:, i])[0].astype(np.int64),
                )
            )
        return batches

    def collect_aligned(
        self, n_packets: int, n_sessions: int = 1
    ) -> np.ndarray:
        """Convenience: sessions + per-sequence alignment in one call.

        Returns ``(n_aligned, n_users, S, Nr, Nt)`` containing only the
        packets every user received, concatenated across sessions.
        """
        from repro.datasets.preprocess import align_users  # local import: layering

        aligned_sessions = []
        for _ in range(max(1, int(n_sessions))):
            batches = self.collect_session(n_packets)
            aligned_sessions.append(align_users(batches))
        return np.concatenate(aligned_sessions, axis=0)

    # -- internals --------------------------------------------------------------

    def _estimate(
        self, response: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply CSI estimation noise at the environment's SNR."""
        if self.env.csi_noise_snr_db is None:
            return response
        signal_power = float(np.mean(np.abs(response) ** 2))
        power = signal_power / (10.0 ** (self.env.csi_noise_snr_db / 10.0))
        return response + awgn(response.shape, power=power, rng=rng)

    def _estimate_block(
        self, responses: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Batched :meth:`_estimate` over ``(n, S, Nr, Nt)`` responses.

        The noise power is calibrated per sample against that sample's
        own mean power, matching the per-packet path.
        """
        if self.env.csi_noise_snr_db is None or responses.shape[0] == 0:
            return responses
        signal_power = np.mean(np.abs(responses) ** 2, axis=(1, 2, 3))
        power = signal_power / (10.0 ** (self.env.csi_noise_snr_db / 10.0))
        scale = np.sqrt(power / 2.0)[:, None, None, None]
        noise = rng.standard_normal(responses.shape) + 1j * rng.standard_normal(
            responses.shape
        )
        return responses + scale * noise
