"""Propagation-environment presets (the paper's E1/E2 and MATLAB data).

The paper collects CSI in two physical environments: E1 has "fewer
reflectors and human traffic" while E2 is "furnished with more furniture
(multipath) and is imposed to higher human traffic" (Sec. V-B).  The
presets below reproduce that contrast with the TGn machinery:

- ``E1`` — Model B (2 clusters, 15 ns rms delay spread), low Doppler,
  no blockage shadowing, clean CSI estimation;
- ``E2`` — Model C (14 taps, 30 ns rms: the "more furniture, more
  multipath" room), higher Doppler from human motion, log-normal
  blockage shadowing, noisier CSI estimation and a higher packet-drop
  rate.  Model C rather than D/E because the paper's two rooms are both
  ordinary offices: doubling the delay spread reproduces the measured
  cross-environment asymmetry (E2-trained models transfer better), while
  jumping to Model D's 50 ns makes transfer collapse entirely, which
  contradicts Fig. 13;
- ``SYNTHETIC`` — Model B with no measurement impairments, standing in
  for the MATLAB ``wlanTGacChannel`` datasets (D13-D15), which also use
  delay profile Model-B.

Each preset is a plain dataclass; custom environments are constructed
the same way.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.channels.tgac import DelayProfile, delay_profile

__all__ = ["Environment", "E1", "E2", "SYNTHETIC", "environment"]


@dataclass(frozen=True)
class Environment:
    """Everything the CSI sampler needs to emulate one environment.

    An environment is a *room*: its reflector geometry is fixed.  The
    paper places STAs at a fixed set of marked locations (the green dots
    of Fig. 8a), so the cluster angles a STA sees depend only on (room,
    location) — not on which dataset is being collected.  We model this
    with ``n_locations`` deterministic cluster-angle offsets derived
    from the environment name (:meth:`location_offsets_deg`); samplers
    pick a location per user per session.  This is what makes two
    datasets collected in the same environment share a learnable channel
    manifold (and models transfer across them), which the cross-
    environment experiments of Fig. 12/13 rely on.
    """

    name: str
    profile_name: str
    doppler_hz: float
    shadowing_sigma_db: float
    shadowing_coherence_s: float
    csi_noise_snr_db: float | None  # None = perfect estimation
    angle_jitter_deg: float  # std-dev of the per-location angle offsets
    packet_drop_rate: float
    rician_k_db: float | None = None
    n_locations: int = 12

    def __post_init__(self) -> None:
        if self.doppler_hz < 0:
            raise ConfigurationError("doppler_hz must be non-negative")
        if not 0.0 <= self.packet_drop_rate < 1.0:
            raise ConfigurationError("packet_drop_rate must be in [0, 1)")
        if self.shadowing_sigma_db < 0:
            raise ConfigurationError("shadowing_sigma_db must be non-negative")
        if self.n_locations < 1:
            raise ConfigurationError("n_locations must be >= 1")

    @property
    def profile(self) -> DelayProfile:
        return delay_profile(self.profile_name)

    def location_offsets_deg(self) -> np.ndarray:
        """Fixed per-location cluster-angle offsets for this room.

        Deterministic in the environment's identity (name + profile), so
        every dataset collected "in" this environment shares the same
        candidate geometries.
        """
        seed = zlib.crc32(f"{self.name}/{self.profile_name}".encode())
        rng = np.random.default_rng(seed)
        return rng.normal(0.0, self.angle_jitter_deg, size=self.n_locations)


E1 = Environment(
    name="E1",
    profile_name="B",
    doppler_hz=0.4,
    shadowing_sigma_db=0.0,
    shadowing_coherence_s=1.0,
    csi_noise_snr_db=28.0,
    angle_jitter_deg=10.0,
    packet_drop_rate=0.01,
)

E2 = Environment(
    name="E2",
    profile_name="C",
    doppler_hz=2.5,
    shadowing_sigma_db=3.0,
    shadowing_coherence_s=0.4,
    csi_noise_snr_db=24.0,
    angle_jitter_deg=15.0,
    packet_drop_rate=0.03,
)

SYNTHETIC = Environment(
    name="MATLAB",
    profile_name="B",
    doppler_hz=0.0,
    shadowing_sigma_db=0.0,
    shadowing_coherence_s=1.0,
    csi_noise_snr_db=None,
    angle_jitter_deg=10.0,
    packet_drop_rate=0.0,
)

_ENVIRONMENTS = {"E1": E1, "E2": E2, "MATLAB": SYNTHETIC, "SYNTHETIC": SYNTHETIC}


def environment(name: str) -> Environment:
    """Look up a preset by name (``E1``, ``E2``, ``MATLAB``)."""
    try:
        return _ENVIRONMENTS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown environment {name!r}; options: E1, E2, MATLAB"
        ) from None
