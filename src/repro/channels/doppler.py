"""Temporal channel dynamics: Jakes correlation and blockage shadowing.

Packets arrive every millisecond in the paper's collection campaign
(1000 packets/s), so consecutive CSI samples are temporally correlated.
We model each tap's complex gain as a first-order autoregressive (AR(1))
process whose one-step coefficient matches the Jakes autocorrelation
``J0(2*pi*fd*dt)`` of the environment's Doppler spread, and add a
log-normal shadowing process for the human-blockage events that
distinguish environment E2.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter
from scipy.special import j0

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator

__all__ = ["jakes_ar1_coefficient", "ShadowingProcess"]


def jakes_ar1_coefficient(doppler_hz: float, dt_s: float) -> float:
    """AR(1) coefficient matching the Jakes autocorrelation at lag ``dt``.

    ``rho = J0(2*pi*fd*dt)``, clipped to [0, 1).  ``fd = 0`` gives a
    static channel (rho = 1 is replaced by 1 - 1e-12 to keep the AR
    innovation well defined).
    """
    if doppler_hz < 0:
        raise ConfigurationError("doppler_hz must be non-negative")
    if dt_s <= 0:
        raise ConfigurationError("dt_s must be positive")
    rho = float(j0(2.0 * np.pi * doppler_hz * dt_s))
    return min(max(rho, 0.0), 1.0 - 1e-12)


class ShadowingProcess:
    """Slow log-normal shadowing (human blockage) per user.

    A temporally correlated Gaussian process in dB, exponentiated to a
    linear amplitude factor.  ``sigma_db = 0`` disables shadowing (the
    E1 preset); E2 uses a few dB with second-scale coherence.
    """

    def __init__(
        self,
        sigma_db: float,
        coherence_s: float,
        dt_s: float,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        if sigma_db < 0:
            raise ConfigurationError("sigma_db must be non-negative")
        if coherence_s <= 0 or dt_s <= 0:
            raise ConfigurationError("coherence_s and dt_s must be positive")
        self.sigma_db = float(sigma_db)
        self.rho = float(np.exp(-dt_s / coherence_s))
        self.rng = as_generator(rng)
        self._state_db = 0.0
        if self.sigma_db > 0:
            self._state_db = float(self.rng.normal(0.0, self.sigma_db))

    def step(self) -> float:
        """Advance one sample period; return the linear amplitude factor."""
        if self.sigma_db == 0:
            return 1.0
        innovation = self.rng.normal(0.0, self.sigma_db * np.sqrt(1 - self.rho**2))
        self._state_db = self.rho * self._state_db + innovation
        return float(10.0 ** (self._state_db / 20.0))

    def sample(self, n_samples: int) -> np.ndarray:
        """Advance ``n_samples`` periods at once; return ``(n,)`` factors.

        The AR(1) recursion runs as one C-level filter pass over a
        single batched innovation draw, so long shadowing tracks cost a
        few array operations instead of ``n`` Python steps.
        """
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        if self.sigma_db == 0:
            return np.ones(n_samples)
        innovations = self.rng.normal(
            0.0, self.sigma_db * np.sqrt(1 - self.rho**2), size=n_samples
        )
        series, _ = lfilter(
            [1.0], [1.0, -self.rho], innovations, zi=[self.rho * self._state_db]
        )
        self._state_db = float(series[-1])
        return 10.0 ** (series / 20.0)
