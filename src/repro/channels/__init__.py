"""Stochastic Wi-Fi channel models (testbed substitute).

The paper trains on 230 GB of Nexmon CSI captures from two physical
environments plus MATLAB ``wlanTGacChannel`` synthetic data.  Neither
the captures nor MATLAB are available offline, so this package
implements the IEEE TGn/TGac cluster-tap channel models those tools are
built on:

- :mod:`repro.channels.tgac` — delay profiles (Model A-F, Model B exact
  per IEEE 802.11-03/940r4) and the frequency-domain channel generator;
- :mod:`repro.channels.spatial` — uniform-linear-array correlation under
  a Laplacian power-angle spectrum;
- :mod:`repro.channels.doppler` — Jakes temporal correlation and a
  human-blockage shadowing process;
- :mod:`repro.channels.environment` — the E1/E2 environment presets and
  the MATLAB-equivalent synthetic preset (DESIGN.md Sec. 5);
- :mod:`repro.channels.sampler` — packetized CSI sampling with
  estimation noise, packet drops, and sequence numbers.
"""

from repro.channels.tgac import (
    ClusterSpec,
    DelayProfile,
    TgacChannel,
    MODEL_A,
    MODEL_B,
    MODEL_C,
    MODEL_D,
    MODEL_E,
    MODEL_F,
    delay_profile,
)
from repro.channels.spatial import ula_correlation, correlation_sqrt
from repro.channels.doppler import jakes_ar1_coefficient, ShadowingProcess
from repro.channels.environment import Environment, E1, E2, SYNTHETIC, environment
from repro.channels.sampler import CsiSampler, CsiBatch

__all__ = [
    "ClusterSpec",
    "DelayProfile",
    "TgacChannel",
    "MODEL_A",
    "MODEL_B",
    "MODEL_C",
    "MODEL_D",
    "MODEL_E",
    "MODEL_F",
    "delay_profile",
    "ula_correlation",
    "correlation_sqrt",
    "jakes_ar1_coefficient",
    "ShadowingProcess",
    "Environment",
    "E1",
    "E2",
    "SYNTHETIC",
    "environment",
    "CsiSampler",
    "CsiBatch",
]
