"""TGn/TGac cluster-tap delay profiles and the channel generator.

The IEEE TGn channel models (802.11-03/940r4), reused by TGac with
wider bandwidths, describe an indoor channel as a tapped delay line
whose taps belong to overlapping clusters; each cluster has its own
angles of arrival/departure and Laplacian angular spreads, which induce
antenna correlation (see :mod:`repro.channels.spatial`).

Model B (the profile the paper's MATLAB synthetic datasets use: "9
channel taps and 2 channel clusters") is implemented with the exact
published tap powers and cluster angles.  Models C-F follow the spec's
structure with tap powers transcribed from the same document; small
transcription deviations in the low-power tails do not affect the
frequency-correlation statistics the SplitBeam DNN learns from.

The generator produces frequency-domain CSI on a band plan's tone grid:

``H_t(f) = sum_c sum_l sqrt(P_{c,l}) * R_rx,c^(1/2) G_{c,l}(t) R_tx,c^(1/2) * exp(-j*2*pi*f*tau_l)``

with per-tap i.i.d. Rayleigh matrices ``G`` evolving as AR(1) processes
matched to the Jakes autocorrelation (see :mod:`repro.channels.doppler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from scipy.signal import lfilter

from repro.errors import ConfigurationError
from repro.channels.doppler import jakes_ar1_coefficient
from repro.channels.spatial import correlation_sqrt, ula_correlation
from repro.phy.ofdm import BandPlan
from repro.utils.rng import as_generator

__all__ = [
    "ClusterSpec",
    "DelayProfile",
    "TgacChannel",
    "MODEL_A",
    "MODEL_B",
    "MODEL_C",
    "MODEL_D",
    "MODEL_E",
    "MODEL_F",
    "delay_profile",
]


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster: which taps it covers and its angular geometry."""

    first_tap: int  # 0-based index into the profile's tap delays
    powers_db: tuple[float, ...]  # per covered tap
    aoa_deg: float
    as_rx_deg: float
    aod_deg: float
    as_tx_deg: float

    def covered_taps(self) -> range:
        return range(self.first_tap, self.first_tap + len(self.powers_db))


@dataclass(frozen=True)
class DelayProfile:
    """A named TGn delay profile."""

    name: str
    tap_delays_ns: tuple[float, ...]
    clusters: tuple[ClusterSpec, ...]
    rms_delay_spread_ns: float

    def __post_init__(self) -> None:
        for cluster in self.clusters:
            if cluster.first_tap + len(cluster.powers_db) > len(self.tap_delays_ns):
                raise ConfigurationError(
                    f"cluster in profile {self.name!r} overruns the tap list"
                )

    @property
    def n_taps(self) -> int:
        return len(self.tap_delays_ns)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


MODEL_A = DelayProfile(
    name="A",
    tap_delays_ns=(0.0,),
    clusters=(
        ClusterSpec(0, (0.0,), aoa_deg=45.0, as_rx_deg=40.0, aod_deg=45.0, as_tx_deg=40.0),
    ),
    rms_delay_spread_ns=0.0,
)

MODEL_B = DelayProfile(
    name="B",
    tap_delays_ns=(0, 10, 20, 30, 40, 50, 60, 70, 80),
    clusters=(
        ClusterSpec(
            0,
            (0.0, -5.4, -10.8, -16.2, -21.7),
            aoa_deg=4.3,
            as_rx_deg=14.4,
            aod_deg=225.1,
            as_tx_deg=14.4,
        ),
        ClusterSpec(
            2,
            (-3.2, -6.3, -9.4, -12.5, -15.6, -18.7, -21.8),
            aoa_deg=118.4,
            as_rx_deg=25.2,
            aod_deg=106.5,
            as_tx_deg=25.4,
        ),
    ),
    rms_delay_spread_ns=15.0,
)

MODEL_C = DelayProfile(
    name="C",
    tap_delays_ns=(0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 110, 140, 170, 200),
    clusters=(
        ClusterSpec(
            0,
            (0.0, -2.1, -4.3, -6.5, -8.6, -10.8, -13.0, -15.2, -17.3, -19.5),
            aoa_deg=290.3,
            as_rx_deg=24.6,
            aod_deg=13.5,
            as_tx_deg=24.7,
        ),
        ClusterSpec(
            6,
            (-5.0, -7.2, -9.3, -11.5, -13.7, -15.8, -18.0, -20.2),
            aoa_deg=332.3,
            as_rx_deg=22.4,
            aod_deg=56.4,
            as_tx_deg=22.5,
        ),
    ),
    rms_delay_spread_ns=30.0,
)

MODEL_D = DelayProfile(
    name="D",
    tap_delays_ns=(
        0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 110, 140, 170, 200, 240, 290,
        340, 390,
    ),
    clusters=(
        ClusterSpec(
            0,
            (
                0.0, -0.9, -1.7, -2.6, -3.5, -4.3, -5.2, -6.1, -6.9, -7.8,
                -9.0, -11.1, -13.7, -16.3, -19.3, -23.2,
            ),
            aoa_deg=158.9,
            as_rx_deg=27.7,
            aod_deg=332.1,
            as_tx_deg=27.4,
        ),
        ClusterSpec(
            10,
            (-6.6, -9.5, -12.1, -14.7, -17.4, -21.9, -25.5),
            aoa_deg=320.2,
            as_rx_deg=31.4,
            aod_deg=49.3,
            as_tx_deg=32.1,
        ),
        ClusterSpec(
            14,
            (-18.8, -23.2, -25.2, -26.7),
            aoa_deg=276.1,
            as_rx_deg=37.4,
            aod_deg=275.9,
            as_tx_deg=36.8,
        ),
    ),
    rms_delay_spread_ns=50.0,
)

MODEL_E = DelayProfile(
    name="E",
    tap_delays_ns=(
        0, 10, 20, 30, 50, 80, 110, 140, 180, 230, 280, 330, 380, 430, 490,
        560, 640, 730,
    ),
    clusters=(
        ClusterSpec(
            0,
            (
                -2.6, -3.0, -3.5, -3.9, -4.5, -5.6, -6.9, -8.2, -9.8, -11.7,
                -13.9, -16.1, -18.3, -20.5, -22.9,
            ),
            aoa_deg=163.7,
            as_rx_deg=35.8,
            aod_deg=105.6,
            as_tx_deg=36.1,
        ),
        ClusterSpec(
            4,
            (-1.8, -3.2, -4.5, -5.8, -7.1, -9.9, -10.3, -14.3, -14.7, -18.7),
            aoa_deg=251.8,
            as_rx_deg=41.6,
            aod_deg=293.1,
            as_tx_deg=42.5,
        ),
        ClusterSpec(
            8,
            (-7.9, -9.6, -14.2, -13.8, -18.6, -18.1, -22.8),
            aoa_deg=80.0,
            as_rx_deg=37.4,
            aod_deg=61.9,
            as_tx_deg=38.0,
        ),
        ClusterSpec(
            14,
            (-20.6, -20.5, -20.7, -24.6),
            aoa_deg=182.0,
            as_rx_deg=40.3,
            aod_deg=275.7,
            as_tx_deg=38.7,
        ),
    ),
    rms_delay_spread_ns=100.0,
)

MODEL_F = DelayProfile(
    name="F",
    tap_delays_ns=(
        0, 10, 20, 30, 50, 80, 110, 140, 180, 230, 280, 330, 400, 490, 600,
        730, 880, 1050,
    ),
    clusters=(
        ClusterSpec(
            0,
            (
                -3.3, -3.6, -3.9, -4.2, -4.6, -5.3, -6.2, -7.1, -8.2, -9.5,
                -11.0, -12.5, -14.3, -16.7, -19.9,
            ),
            aoa_deg=315.1,
            as_rx_deg=48.0,
            aod_deg=56.2,
            as_tx_deg=41.6,
        ),
        ClusterSpec(
            4,
            (-1.8, -2.8, -3.5, -4.4, -5.3, -7.4, -7.0, -10.3, -10.4, -13.8, -15.7),
            aoa_deg=180.4,
            as_rx_deg=55.0,
            aod_deg=183.7,
            as_tx_deg=55.2,
        ),
        ClusterSpec(
            8,
            (-5.7, -6.7, -10.4, -9.6, -14.1, -12.7, -18.5),
            aoa_deg=74.7,
            as_rx_deg=42.0,
            aod_deg=153.0,
            as_tx_deg=47.4,
        ),
        ClusterSpec(
            12,
            (-8.8, -13.3, -18.7),
            aoa_deg=251.5,
            as_rx_deg=28.6,
            aod_deg=112.5,
            as_tx_deg=27.2,
        ),
        ClusterSpec(
            14,
            (-12.9, -14.2),
            aoa_deg=68.5,
            as_rx_deg=30.7,
            aod_deg=291.0,
            as_tx_deg=33.0,
        ),
        ClusterSpec(
            16,
            (-16.3, -21.2),
            aoa_deg=246.2,
            as_rx_deg=38.2,
            aod_deg=62.3,
            as_tx_deg=38.0,
        ),
    ),
    rms_delay_spread_ns=150.0,
)

_PROFILES = {
    "A": MODEL_A,
    "B": MODEL_B,
    "C": MODEL_C,
    "D": MODEL_D,
    "E": MODEL_E,
    "F": MODEL_F,
}


def delay_profile(name: str) -> DelayProfile:
    """Look up a TGn delay profile by letter (A-F)."""
    try:
        return _PROFILES[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown delay profile {name!r}; options: {sorted(_PROFILES)}"
        ) from None


@dataclass
class _ClusterState:
    """Precomputed per-cluster matrices and evolving tap gains."""

    amplitudes: np.ndarray  # (n_covered,) linear tap amplitudes
    tap_indices: np.ndarray  # (n_covered,) indices into the delay list
    rx_sqrt: np.ndarray  # (Nr, Nr)
    tx_sqrt: np.ndarray  # (Nt, Nt)
    gains: np.ndarray = field(default=None)  # (n_covered, Nr, Nt)


class TgacChannel:
    """Time-evolving frequency-domain MIMO channel for one link.

    Parameters
    ----------
    profile:
        A :class:`DelayProfile` (e.g. :data:`MODEL_B`).
    n_rx, n_tx:
        Antenna counts at the STA and AP ends.
    band:
        :class:`~repro.phy.ofdm.BandPlan` whose tone grid the response
        is evaluated on.
    doppler_hz:
        Doppler spread controlling sample-to-sample correlation.
    sample_interval_s:
        Time between CSI samples (1 ms in the paper's campaign).
    angle_offset_deg:
        Deterministic offset applied to every cluster angle, modelling
        the STA's placement in the room (see
        ``Environment.location_offsets_deg``).
    rician_k_db:
        If not None, adds a line-of-sight component with this K-factor
        on the first tap (TGn LOS variants).
    normalize:
        Scale tap powers so the average per-element channel power is 1.
    """

    def __init__(
        self,
        profile: DelayProfile,
        n_rx: int,
        n_tx: int,
        band: BandPlan,
        doppler_hz: float = 0.0,
        sample_interval_s: float = 1e-3,
        angle_offset_deg: float = 0.0,
        rician_k_db: float | None = None,
        normalize: bool = True,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_rx < 1 or n_tx < 1:
            raise ConfigurationError("antenna counts must be >= 1")
        self.profile = profile
        self.n_rx = int(n_rx)
        self.n_tx = int(n_tx)
        self.band = band
        self.doppler_hz = float(doppler_hz)
        self.sample_interval_s = float(sample_interval_s)
        self.rician_k_db = rician_k_db
        self.rng = as_generator(rng)

        self._rho = jakes_ar1_coefficient(self.doppler_hz, self.sample_interval_s)
        self._clusters = self._build_clusters(angle_offset_deg, normalize)
        delays_s = np.asarray(profile.tap_delays_ns, dtype=np.float64) * 1e-9
        tones = band.tone_frequencies_hz()
        # (S, n_taps) steering of each tap across the tone grid.
        self._tap_phases = np.exp(-2j * np.pi * np.outer(tones, delays_s))
        self._los = self._build_los()
        self.reset()

    # -- public API -----------------------------------------------------------

    def reset(self) -> None:
        """Redraw all tap gains (a fresh channel realization)."""
        for cluster in self._clusters:
            shape = (cluster.amplitudes.size, self.n_rx, self.n_tx)
            cluster.gains = self._draw_gaussian(shape)

    def step(self) -> np.ndarray:
        """Advance one sample interval; return ``H`` of shape (S, Nr, Nt)."""
        rho = self._rho
        innovation_scale = np.sqrt(1.0 - rho**2)
        for cluster in self._clusters:
            noise = self._draw_gaussian(cluster.gains.shape)
            cluster.gains = rho * cluster.gains + innovation_scale * noise
        return self._frequency_response()

    def sample(self, n_samples: int) -> np.ndarray:
        """Collect ``n_samples`` consecutive CSI samples (n, S, Nr, Nt).

        Equivalent to ``n_samples`` calls to :meth:`step` but fully
        vectorized: the AR(1) tap evolution runs as one C-level filter
        pass over a single batched innovation draw, and the per-cluster
        correlation shaping and tone steering are applied to all steps
        in one einsum each.
        """
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        rho = self._rho
        innovation_scale = np.sqrt(1.0 - rho**2)
        n_taps = self.profile.n_taps
        tap_matrices = np.zeros(
            (n_samples, n_taps, self.n_rx, self.n_tx), dtype=np.complex128
        )
        for cluster in self._clusters:
            innovations = self._draw_gaussian(
                (n_samples,) + cluster.gains.shape
            )
            series, _ = lfilter(
                [1.0],
                [1.0, -rho],
                innovation_scale * innovations,
                axis=0,
                zi=(rho * cluster.gains)[None],
            )
            cluster.gains = series[-1].copy()
            shaped = np.einsum(
                "rp,nlpq,qt->nlrt", cluster.rx_sqrt, series, cluster.tx_sqrt
            )
            tap_matrices[:, cluster.tap_indices] += (
                cluster.amplitudes[None, :, None, None] * shaped
            )
        self._apply_los(tap_matrices)
        return np.einsum("sl,nlrt->nsrt", self._tap_phases, tap_matrices)

    def current(self) -> np.ndarray:
        """Frequency response for the current tap gains (no time advance)."""
        return self._frequency_response()

    # -- internals --------------------------------------------------------------

    def _build_clusters(
        self, angle_offset_deg: float, normalize: bool
    ) -> list[_ClusterState]:
        offset = float(angle_offset_deg)
        total_power = 0.0
        powers_linear: list[np.ndarray] = []
        for cluster in self.profile.clusters:
            power = 10.0 ** (np.asarray(cluster.powers_db) / 10.0)
            powers_linear.append(power)
            total_power += float(power.sum())
        scale = 1.0 / total_power if normalize else 1.0

        states: list[_ClusterState] = []
        for cluster, power in zip(self.profile.clusters, powers_linear):
            rx_corr = ula_correlation(
                self.n_rx, cluster.aoa_deg + offset, cluster.as_rx_deg
            )
            tx_corr = ula_correlation(
                self.n_tx, cluster.aod_deg + offset, cluster.as_tx_deg
            )
            states.append(
                _ClusterState(
                    amplitudes=np.sqrt(power * scale),
                    tap_indices=np.asarray(list(cluster.covered_taps())),
                    rx_sqrt=correlation_sqrt(rx_corr),
                    tx_sqrt=correlation_sqrt(tx_corr),
                )
            )
        return states

    def _build_los(self) -> np.ndarray | None:
        if self.rician_k_db is None:
            return None
        # Deterministic rank-one LOS steering on the first tap.
        aod = np.deg2rad(self.rng.uniform(-60, 60))
        aoa = np.deg2rad(self.rng.uniform(-60, 60))
        tx_steer = np.exp(1j * np.pi * np.arange(self.n_tx) * np.sin(aod))
        rx_steer = np.exp(1j * np.pi * np.arange(self.n_rx) * np.sin(aoa))
        return np.outer(rx_steer, tx_steer)

    def _draw_gaussian(self, shape: tuple[int, ...]) -> np.ndarray:
        return (
            self.rng.standard_normal(shape) + 1j * self.rng.standard_normal(shape)
        ) / np.sqrt(2.0)

    def _frequency_response(self) -> np.ndarray:
        n_taps = self.profile.n_taps
        tap_matrices = np.zeros(
            (n_taps, self.n_rx, self.n_tx), dtype=np.complex128
        )
        for cluster in self._clusters:
            shaped = np.einsum(
                "rp,lpq,qt->lrt", cluster.rx_sqrt, cluster.gains, cluster.tx_sqrt
            )
            tap_matrices[cluster.tap_indices] += (
                cluster.amplitudes[:, None, None] * shaped
            )
        self._apply_los(tap_matrices)
        return np.tensordot(self._tap_phases, tap_matrices, axes=(1, 0))

    def _apply_los(self, tap_matrices: np.ndarray) -> None:
        """Mix the Rician LOS component into ``(..., n_taps, Nr, Nt)``."""
        if self._los is None:
            return
        k_linear = 10.0 ** (self.rician_k_db / 10.0)
        nlos_scale = np.sqrt(1.0 / (k_linear + 1.0))
        los_scale = np.sqrt(k_linear / (k_linear + 1.0))
        tap_matrices *= nlos_scale
        # First-tap LOS power matches that tap's average NLOS power.
        first_amp = np.linalg.norm(
            [c.amplitudes[0] for c in self._clusters if c.tap_indices[0] == 0]
        )
        tap_matrices[..., 0, :, :] += los_scale * first_amp * self._los
