"""Sec. I worked example: feedback airtime overhead and medium occupancy.

The paper opens with "in an 8x8 network at 160 MHz of bandwidth, the BF
in 802.11 will be of size 486 x 56 x 16 = 435,456 bits ≃ 54.43 kB.  If
BFs are sent back every 10 ms ... the airtime overhead is 435,456 /
0.01 ≃ 43.55 Mbit/s."  This bench reproduces the arithmetic exactly and
then extends it with the sounding-campaign model: what fraction of the
medium does periodic sounding consume for 802.11 vs SplitBeam, and how
many STAs fit inside the 10 ms MU-MIMO deadline.
"""

from repro.analysis.report import ExperimentReport
from repro.sounding.campaign import (
    MU_MIMO_SOUNDING_INTERVAL_S,
    SoundingCampaign,
    feedback_overhead_rate_bps,
    intro_example_bits,
    max_supportable_users,
)
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits

from benchmarks.conftest import record_report

#: SplitBeam compression used in the occupancy comparison.
COMPRESSION = 1 / 8


def _splitbeam_bits(config: Dot11FeedbackConfig) -> int:
    """K * S * Nt * Nr * 16 bits (the Eq. (9)-convention feedback size)."""
    return int(
        COMPRESSION * config.n_subcarriers * config.n_tx * config.n_rx * 16
    )


def compute_report() -> ExperimentReport:
    report = ExperimentReport(
        "Sec. I worked example + sounding-campaign occupancy"
    )
    bits = intro_example_bits()
    report.add("8x8 160 MHz BF size", "kB", bits / 8 / 1000, paper_value=54.43)
    report.add(
        "8x8 160 MHz @ 10 ms",
        "Mbit/s overhead",
        feedback_overhead_rate_bps(bits, 0.01) / 1e6,
        paper_value=43.55,
    )

    for n_users, bandwidth in [(2, 20), (3, 80), (4, 80)]:
        config = Dot11FeedbackConfig(
            n_tx=n_users, n_rx=1, n_streams=1, bandwidth_mhz=bandwidth
        )
        for scheme, bits_per_user in [
            ("802.11", bmr_bits(config)),
            ("SplitBeam 1/8", _splitbeam_bits(config)),
        ]:
            campaign = SoundingCampaign(
                n_users=n_users,
                bandwidth_mhz=bandwidth,
                feedback_bits=bits_per_user,
                interval_s=MU_MIMO_SOUNDING_INTERVAL_S,
            )
            occupancy = campaign.report().occupancy
            report.add(
                f"{n_users}x{n_users} {bandwidth} MHz {scheme}",
                "occupancy %",
                100.0 * occupancy,
            )
        report.add(
            f"{n_users}x{n_users} {bandwidth} MHz max STAs @ 10 ms",
            "802.11",
            max_supportable_users(bandwidth, bmr_bits(config)),
        )
        report.add(
            f"{n_users}x{n_users} {bandwidth} MHz max STAs @ 10 ms",
            "SplitBeam 1/8",
            max_supportable_users(bandwidth, _splitbeam_bits(config)),
        )
    return report


def test_intro_overhead(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("intro_overhead", report.render(precision=4))

    values = {(r.setting, r.metric): r.measured for r in report.records}
    # The worked example reproduces the paper's numbers exactly.
    assert values[("8x8 160 MHz BF size", "kB")] == 435_456 / 8 / 1000
    assert abs(values[("8x8 160 MHz @ 10 ms", "Mbit/s overhead")] - 43.5456) < 1e-6

    for n_users, bandwidth in [(2, 20), (3, 80), (4, 80)]:
        prefix = f"{n_users}x{n_users} {bandwidth} MHz"
        dot11 = values[(f"{prefix} 802.11", "occupancy %")]
        splitbeam = values[(f"{prefix} SplitBeam 1/8", "occupancy %")]
        # SplitBeam's compressed BMR shrinks the sounding tax ...
        assert splitbeam < dot11
        # ... and supports at least as many users under the deadline.
        assert (
            values[(f"{prefix} max STAs @ 10 ms", "SplitBeam 1/8")]
            >= values[(f"{prefix} max STAs @ 10 ms", "802.11")]
        )
