"""Fig. 10: BER and STA FLOPs at 160 MHz (synthetic D13-D15, BCC 1/2).

The paper's widest-band experiment: Model-B synthetic channels at
160 MHz for 2x2, 3x3 and 4x4, rate-1/2 convolutional coding, K = 1/8.
Expected shape: all three schemes reach comparable (coded) BER while
SplitBeam's STA-load advantage *grows with the antenna count* (the
paper: "the improvement given by SplitBeam is more prominent when the
number of antennas increases").

Documented deviation on the absolute ordering: SplitBeam's head is
O(K * (Nt*Nr*S)^2) while SVD+GR is linear in S, and our testbed
geometry has Nr = 1 per STA.  At S = 484 that quadratic term makes the
2x2/3x3 heads *more* expensive than the (very cheap, Nr = 1) 802.11
pipeline; the crossover lands at 4x4, where SplitBeam wins as the paper
reports.  We therefore assert the monotone ratio trend and the 4x4 win
rather than a uniform SplitBeam < 802.11 ordering, and record all
measured values for EXPERIMENTS.md.

160 MHz models are the most expensive to train; this bench uses a
reduced sample budget (documented in EXPERIMENTS.md).

The grid executes through ``repro.runtime``: the ``synthetic-160mhz``
scenario preset expands to 9 (config x scheme) tasks — trainings
included — that fan out over ``$REPRO_RUNTIME_WORKERS`` workers and
memoize in the content-addressed result cache, with a deterministic
JSON artifact next to the rendered table.
"""

import os

from repro.analysis.report import ExperimentReport
from repro.runtime import ExperimentEngine, get_scenario
from repro.runtime.registry import FIG10_FIDELITY

from benchmarks.conftest import RESULTS_DIR, record_report, runtime_cache

DATASETS = {"2x2": "D13", "3x3": "D14", "4x4": "D15"}
JSON_NAME = "fig10_160mhz_synthetic.json"


def compute_report() -> ExperimentReport:
    fidelity = FIG10_FIDELITY
    if os.environ.get("REPRO_BENCH_FIDELITY") == "paper":
        from repro.config import PAPER

        fidelity = PAPER
    scenario = get_scenario("synthetic-160mhz", fidelity=fidelity)
    run = ExperimentEngine(cache=runtime_cache()).run(scenario)
    run.write_json(os.path.join(RESULTS_DIR, JSON_NAME))
    report = ExperimentReport(
        "Fig. 10: BER and STA FLOPs @ 160 MHz, BCC 1/2, K = 1/8"
    )
    for entry in run.points:
        report.add(entry["label"], "BER", entry["result"]["ber"])
        report.add(entry["label"], "FLOPs x1e5",
                   entry["result"]["sta_flops"] / 1e5)
    return report


def test_fig10_160mhz_synthetic(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig10_160mhz_synthetic", report.render(precision=4))

    flops = {
        r.setting: r.measured for r in report.records if "FLOPs" in r.metric
    }
    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    for config in DATASETS:
        # LB-SciFi pays SVD+GR *plus* its encoder.
        assert flops[f"{config} 802.11"] < flops[f"{config} LB-SciFi"]
        # Coded BERs stay in the Fig. 10 band (<~1e-2 at paper fidelity;
        # the reduced-budget DNNs stay within a wider but bounded band).
        assert bers[f"{config} 802.11"] < 0.05
    assert bers["2x2 SplitBeam"] < 0.15
    # SplitBeam's advantage grows with antenna count (see docstring):
    # the SB/802.11 load ratio falls monotonically and crosses below 1
    # at 4x4.
    ratios = [
        flops[f"{config} SplitBeam"] / flops[f"{config} 802.11"]
        for config in ("2x2", "3x3", "4x4")
    ]
    assert ratios[0] > ratios[1] > ratios[2]
    assert ratios[2] < 1.0
    # And SplitBeam undercuts LB-SciFi once past the 2x2 corner case.
    for config in ("3x3", "4x4"):
        assert flops[f"{config} SplitBeam"] < flops[f"{config} LB-SciFi"]
