"""Fig. 10: BER and STA FLOPs at 160 MHz (synthetic D13-D15, BCC 1/2).

The paper's widest-band experiment: Model-B synthetic channels at
160 MHz for 2x2, 3x3 and 4x4, rate-1/2 convolutional coding, K = 1/8.
Expected shape: all three schemes reach comparable (coded) BER while
SplitBeam's STA-load advantage *grows with the antenna count* (the
paper: "the improvement given by SplitBeam is more prominent when the
number of antennas increases").

Documented deviation on the absolute ordering: SplitBeam's head is
O(K * (Nt*Nr*S)^2) while SVD+GR is linear in S, and our testbed
geometry has Nr = 1 per STA.  At S = 484 that quadratic term makes the
2x2/3x3 heads *more* expensive than the (very cheap, Nr = 1) 802.11
pipeline; the crossover lands at 4x4, where SplitBeam wins as the paper
reports.  We therefore assert the monotone ratio trend and the 4x4 win
rather than a uniform SplitBeam < 802.11 ordering, and record all
measured values for EXPERIMENTS.md.

160 MHz models are the most expensive to train; this bench uses a
reduced sample budget (documented in EXPERIMENTS.md).
"""

import os

import pytest

from repro.analysis.report import ExperimentReport
from repro.baselines import Dot11Feedback, train_lbscifi
from repro.config import Fidelity
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.core.training import train_splitbeam
from repro.datasets import build_dataset, dataset_spec
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

DATASETS = {"2x2": "D13", "3x3": "D14", "4x4": "D15"}
COMPRESSION = 1 / 8
LINK = LinkConfig(snr_db=20.0, use_coding=True, n_ofdm_symbols=1)

#: Reduced budget for the widest-band models (trainable in ~2 min each).
FIG10_FIDELITY = Fidelity(
    name="fig10",
    n_samples=320,
    n_sessions=4,
    epochs=14,
    ber_samples=24,
    ofdm_symbols=1,
    reset_interval=40,
)


def compute_report() -> ExperimentReport:
    fidelity = FIG10_FIDELITY
    if os.environ.get("REPRO_BENCH_FIDELITY") == "paper":
        from repro.config import PAPER

        fidelity = PAPER
    report = ExperimentReport(
        "Fig. 10: BER and STA FLOPs @ 160 MHz, BCC 1/2, K = 1/8"
    )
    for config, dataset_id in DATASETS.items():
        dataset = build_dataset(
            dataset_spec(dataset_id), fidelity=fidelity, seed=7
        )
        indices = dataset.splits.test[: fidelity.ber_samples]
        trained = train_splitbeam(
            dataset, compression=COMPRESSION, fidelity=fidelity, seed=0
        )
        lbscifi = train_lbscifi(
            dataset, compression=COMPRESSION, fidelity=fidelity, seed=0
        )
        for scheme in (SplitBeamFeedback(trained), lbscifi, Dot11Feedback()):
            evaluation = evaluate_scheme(scheme, dataset, indices, LINK)
            short = evaluation.scheme_name.split(" (")[0]
            report.add(f"{config} {short}", "BER", evaluation.ber)
            report.add(f"{config} {short}", "FLOPs x1e5",
                       evaluation.sta_flops / 1e5)
    return report


def test_fig10_160mhz_synthetic(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig10_160mhz_synthetic", report.render(precision=4))

    flops = {
        r.setting: r.measured for r in report.records if "FLOPs" in r.metric
    }
    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    for config in DATASETS:
        # LB-SciFi pays SVD+GR *plus* its encoder.
        assert flops[f"{config} 802.11"] < flops[f"{config} LB-SciFi"]
        # Coded BERs stay in the Fig. 10 band (<~1e-2 at paper fidelity;
        # the reduced-budget DNNs stay within a wider but bounded band).
        assert bers[f"{config} 802.11"] < 0.05
    assert bers["2x2 SplitBeam"] < 0.15
    # SplitBeam's advantage grows with antenna count (see docstring):
    # the SB/802.11 load ratio falls monotonically and crosses below 1
    # at 4x4.
    ratios = [
        flops[f"{config} SplitBeam"] / flops[f"{config} 802.11"]
        for config in ("2x2", "3x3", "4x4")
    ]
    assert ratios[0] > ratios[1] > ratios[2]
    assert ratios[2] < 1.0
    # And SplitBeam undercuts LB-SciFi once past the 2x2 corner case.
    for config in ("3x3", "4x4"):
        assert flops[f"{config} SplitBeam"] < flops[f"{config} LB-SciFi"]
