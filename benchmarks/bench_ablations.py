"""Ablations on SplitBeam design choices called out in DESIGN.md.

1. **Phase-gauge fixing** (DESIGN.md Sec. 3.3): training against raw
   SVD targets (random per-column phases) versus the standard's
   gauge-fixed representative.  Expectation: without the gauge the
   regression target is not a function of the input and BER collapses.
2. **Bottleneck quantization width**: over-the-air bits per bottleneck
   element versus BER and feedback size.  Expectation: 8+ bits are
   indistinguishable from float; feedback shrinks linearly.
3. **Loss functions**: the paper's Eq. (8) normalized L1 versus plain
   MSE/MAE under the same budget.
"""

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.core.split import BottleneckQuantizer
from repro.core.training import ber_of_model, train_splitbeam
from repro.nn.losses import MAELoss, MSELoss, NormalizedL1Loss
from repro.nn.trainer import Trainer
from repro.phy.link import LinkConfig
from repro.phy.svd import beamforming_matrices

from benchmarks.conftest import record_report

LINK = LinkConfig(snr_db=20.0)


def test_ablation_gauge_fixing(benchmark, caches, bench_fidelity):
    """Training without phase-gauge fixing must hurt badly."""

    def compute():
        dataset = caches.dataset("D1", bench_fidelity)
        indices = dataset.splits.test[: bench_fidelity.ber_samples]
        report = ExperimentReport("Ablation: phase-gauge fixing of targets")

        gauged = caches.trained("D1", bench_fidelity, 1 / 8)
        report.add(
            "gauge-fixed targets (default)",
            "BER",
            evaluate_scheme(SplitBeamFeedback(gauged), dataset, indices, LINK).ber,
        )

        # Rebuild targets WITHOUT the gauge: random per-column phases.
        raw = dataset.__class__(
            spec=dataset.spec,
            csi=dataset.csi,
            bf=_randomize_phases(dataset),
            splits=dataset.splits,
        )
        ungauged = train_splitbeam(
            raw, compression=1 / 8, fidelity=bench_fidelity, seed=0
        )
        report.add(
            "raw SVD targets (random column phase)",
            "BER",
            ber_of_model(
                ungauged.model, raw, indices, link_config=LINK,
                quantizer=ungauged.quantizer,
            ).ber,
        )
        return report

    report = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_report("ablation_gauge_fixing", report.render(precision=4))
    gauged_ber, ungauged_ber = (r.measured for r in report.records)
    assert gauged_ber < ungauged_ber
    assert ungauged_ber > 2 * gauged_ber  # the ablation bites


def _randomize_phases(dataset):
    rng = np.random.default_rng(123)
    bf = beamforming_matrices(dataset.csi, n_streams=1, gauge_fix=False)[..., 0]
    phases = np.exp(
        1j * rng.uniform(0, 2 * np.pi, size=bf.shape[:-1] + (1,))
    )
    return bf * phases


def test_ablation_quantization_bits(benchmark, caches, bench_fidelity):
    """Bottleneck wire-format width vs BER and feedback size."""

    def compute():
        dataset = caches.dataset("D1", bench_fidelity)
        indices = dataset.splits.test[: bench_fidelity.ber_samples]
        trained = caches.trained("D1", bench_fidelity, 1 / 8)
        report = ExperimentReport("Ablation: bottleneck quantization bits")
        baseline = ber_of_model(
            trained.model, dataset, indices, link_config=LINK, quantizer=None
        ).ber
        report.add("float (no quantization)", "BER", baseline)
        for bits in (16, 8, 6, 4, 2):
            quantizer = BottleneckQuantizer(bits)
            ber = ber_of_model(
                trained.model, dataset, indices,
                link_config=LINK, quantizer=quantizer,
            ).ber
            report.add(f"{bits}-bit codes", "BER", ber)
            report.add(
                f"{bits}-bit codes", "feedback bits",
                trained.model.bottleneck_dim * bits,
            )
        return report

    report = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_report("ablation_quantization_bits", report.render(precision=4))
    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    assert abs(bers["16-bit codes"] - bers["float (no quantization)"]) < 0.005
    assert bers["2-bit codes"] > bers["8-bit codes"]


def test_ablation_loss_functions(benchmark, caches, bench_fidelity):
    """Eq. (8) normalized L1 vs MSE vs MAE at equal budget."""

    def compute():
        dataset = caches.dataset("D1", bench_fidelity)
        indices = dataset.splits.test[: bench_fidelity.ber_samples]
        report = ExperimentReport("Ablation: training loss")
        for name, loss in (
            ("normalized L1 (Eq. 8)", NormalizedL1Loss()),
            ("MSE", MSELoss()),
            ("MAE", MAELoss()),
        ):
            # Train from scratch under each loss, same budget and seed.
            from repro.core.model import SplitBeamNet, three_layer_widths
            from repro.core.training import splitbeam_training_config

            model = SplitBeamNet(
                three_layer_widths(dataset.input_dim, 1 / 8), rng=0
            )
            trainer = Trainer(
                model,
                loss=loss,
                config=splitbeam_training_config(bench_fidelity, seed=0),
            )
            x_train, y_train = dataset.train_arrays()
            x_val, y_val = dataset.val_arrays()
            trainer.fit(x_train, y_train, x_val, y_val)
            ber = ber_of_model(
                model, dataset, indices, link_config=LINK
            ).ber
            report.add(name, "BER", ber)
        return report

    report = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_report("ablation_loss_functions", report.render(precision=4))
    bers = {r.setting: r.measured for r in report.records}
    # All reasonable losses land in a usable band on this task.
    assert all(b < 0.15 for b in bers.values())
