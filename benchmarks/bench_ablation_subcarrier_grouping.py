"""Ablation: subcarrier grouping (the standard's knob) vs SplitBeam.

Sec. II argues that the standard's own overhead reductions — subcarrier
grouping in particular — "come at the detriment of beamforming
accuracy".  This bench quantifies that trade with the bit-exact frame
codec: Ng in {1, 2, 4} divides the report size by ~Ng, and we measure
the BER cost, then put a trained SplitBeam model on the same axes.
Expected shape: grouping buys size linearly but costs BER on
frequency-selective channels, while SplitBeam reaches a smaller
feedback size at a lower BER than Ng=4.
"""

from repro.analysis.report import ExperimentReport
from repro.baselines import Dot11Feedback, GroupedCbfFeedback
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

DATASET_ID = "D3"  # 2x2 @ 20 MHz in E2 (the multipath-rich room)
LINK = LinkConfig(snr_db=20.0)


def compute_report(caches, fidelity) -> ExperimentReport:
    report = ExperimentReport(
        "Ablation: 802.11 subcarrier grouping vs SplitBeam (D3, E2)"
    )
    dataset = caches.dataset(DATASET_ID, fidelity)
    indices = dataset.splits.test[: fidelity.ber_samples]

    schemes = [Dot11Feedback()]
    schemes += [GroupedCbfFeedback(grouping=ng) for ng in (1, 2, 4)]
    for scheme in schemes:
        evaluation = evaluate_scheme(scheme, dataset, indices, LINK)
        report.add(evaluation.scheme_name, "BER", evaluation.ber)
        report.add(
            evaluation.scheme_name, "feedback bits", evaluation.feedback_bits
        )
        report.add(evaluation.scheme_name, "STA FLOPs", evaluation.sta_flops)

    trained = caches.trained(DATASET_ID, fidelity, 1 / 8)
    evaluation = evaluate_scheme(
        SplitBeamFeedback(trained), dataset, indices, LINK
    )
    report.add(evaluation.scheme_name, "BER", evaluation.ber)
    report.add(evaluation.scheme_name, "feedback bits", evaluation.feedback_bits)
    report.add(evaluation.scheme_name, "STA FLOPs", evaluation.sta_flops)
    return report


def test_ablation_subcarrier_grouping(benchmark, caches, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(caches, bench_fidelity), rounds=1, iterations=1
    )
    record_report("ablation_subcarrier_grouping", report.render(precision=4))

    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    bits = {
        r.setting: r.measured
        for r in report.records
        if r.metric == "feedback bits"
    }
    flops = {
        r.setting: r.measured
        for r in report.records
        if r.metric == "STA FLOPs"
    }

    # Grouping divides the report size roughly by Ng ...
    assert bits["802.11 Ng=2"] < 0.6 * bits["802.11 Ng=1"]
    assert bits["802.11 Ng=4"] < 0.35 * bits["802.11 Ng=1"]
    # ... and the grouped STA also skips SVD+GR on the skipped tones.
    assert flops["802.11 Ng=4"] < flops["802.11 Ng=1"]
    # Accuracy cost: Ng=4 must not beat the ungrouped pipeline.
    assert bers["802.11 Ng=4"] >= bers["802.11 Ng=1"] - 0.005
    # The wire codec at Ng=1 agrees with the array-level Dot11 pipeline.
    dot11_name = next(name for name in bers if name.startswith("802.11 ("))
    assert abs(bers["802.11 Ng=1"] - bers[dot11_name]) < 0.01
    # SplitBeam K=1/8 sends less than the ungrouped report and computes
    # less than even the most aggressively grouped SVD+GR pipeline.
    # (At 20 MHz Ng=4's 272-bit report is actually *smaller* than
    # SplitBeam's 448 bits — grouping is a respectable narrow-band
    # competitor; SplitBeam's decisive win here is the STA load.)
    splitbeam = next(name for name in bers if name.startswith("SplitBeam"))
    assert bits[splitbeam] < bits["802.11 Ng=1"]
    assert flops[splitbeam] < flops["802.11 Ng=4"]
