"""Perf benches for the packed segment store (put/get/recover paths).

The packed layout replaced one-file-per-entry stores precisely for
throughput at fleet scale: these stages time the hot paths the engine
leans on (``put`` per completed point, ``get`` per cache check, the
recovery scan on reopen) and the ``store_layout`` comparison measures
packed vs per-file writes directly, on identical records.

Stages land in the co-owned ``BENCH_hotpaths.json`` under the
``store/`` family (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile

import pytest

from repro.perf.report import PerfReport
from repro.perf.timer import Benchmark
from repro.runtime.store import INDEX_NAME, SegmentStore

try:
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )
except ModuleNotFoundError:  # direct `python benchmarks/bench_store.py`
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )

pytestmark = pytest.mark.perf

JSON_NAME = "BENCH_hotpaths.json"

#: Entries for the put/get/recover stages (the engine's fleet scale).
N_RECORDS = 100_000
#: Entries for the packed-vs-per-file layout comparison; per-file
#: writes pay an inode each, so the baseline stays affordable.
N_LAYOUT = 10_000


def _value(i: int) -> bytes:
    """One result-cache-sized record (spec + result JSON, ~120 bytes)."""
    return json.dumps(
        {
            "key": f"k{i:06d}",
            "spec": {"snr_db": i % 40, "seed": i},
            "result": {"ber": (i % 997) / 997.0, "evm_db": -22.5},
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()


def _fill(root: str, n: int) -> SegmentStore:
    store = SegmentStore(root)
    for i in range(n):
        store.put(f"k{i:06d}", _value(i))
    store.flush()
    return store


def _perfile_fill(root: str, n: int) -> None:
    """The legacy layout's write path: one atomic JSON file per entry."""
    os.makedirs(root, exist_ok=True)
    pid = os.getpid()
    for i in range(n):
        path = os.path.join(root, f"k{i:06d}.json")
        tmp = f"{path}.tmp.{pid}"
        with open(tmp, "wb") as handle:
            handle.write(_value(i))
        os.replace(tmp, path)


def build_report() -> PerfReport:
    bench = Benchmark(warmup=0, repeats=2)
    report = PerfReport(
        "packed segment store (put/get/recover, packed vs per-file)",
        context={
            "workload": f"{N_RECORDS} ~120 B records; layout comparison "
            f"on {N_LAYOUT}"
        },
    )
    workdir = tempfile.mkdtemp(prefix="repro-store-bench-")
    roots = iter(range(10**6))

    def fresh_root(tag: str) -> str:
        return os.path.join(workdir, f"{tag}-{next(roots)}")

    try:
        put = bench.run(
            "store/put_100k",
            lambda: _fill(fresh_root("put"), N_RECORDS).close(),
            n_items=N_RECORDS,
            meta={"value_bytes": len(_value(0))},
        )

        read_root = fresh_root("read")
        read_store = _fill(read_root, N_RECORDS)

        def get_all():
            for i in range(N_RECORDS):
                assert read_store.get(f"k{i:06d}") is not None

        get = bench.run(
            "store/get_100k", get_all, n_items=N_RECORDS, repeats=3
        )
        read_store.close()

        # Recovery: the index is lost, so the open pays a full rebuild
        # scan over every segment.  Each repeat re-loses it.
        def recover():
            index = os.path.join(read_root, INDEX_NAME)
            if os.path.exists(index):
                os.remove(index)
            store = SegmentStore(read_root)
            assert len(store) == N_RECORDS
            store.close()

        recover_stage = bench.run(
            "store/recover", recover, n_items=N_RECORDS
        )

        perfile = bench.run(
            "store/put_perfile_10k",
            lambda: _perfile_fill(fresh_root("perfile"), N_LAYOUT),
            n_items=N_LAYOUT,
        )
        packed = bench.run(
            "store/put_packed_10k",
            lambda: _fill(fresh_root("packed"), N_LAYOUT).close(),
            n_items=N_LAYOUT,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.add(put)
    report.add(get)
    report.add(recover_stage)
    report.add(perfile)
    report.add(packed)
    report.add_comparison("store_layout", perfile, packed)
    return report


@pytest.mark.perf
def test_perf_store():
    report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    write_hotpaths_json(
        report, os.path.join(RESULTS_DIR, JSON_NAME), family="store"
    )
    record_report("BENCH_store", report.render())
    stages = {s["name"]: s for s in report.to_dict()["stages"]}
    comparisons = {c["stage"]: c for c in report.to_dict()["comparisons"]}
    # The packed hot paths must sustain fleet scale; the floors are
    # generous so slow CI hosts never flap (observed: ~12k puts/s,
    # ~230k gets/s).
    assert N_RECORDS / stages["store/put_100k"]["median_s"] > 2_000
    assert N_RECORDS / stages["store/get_100k"]["median_s"] > 20_000
    # Packed writes must beat one-inode-per-entry writes outright
    # (observed 1.4-3.1x depending on how warm the fs caches are).
    assert comparisons["store_layout"]["speedup"] >= 1.1


if __name__ == "__main__":
    perf_report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    write_hotpaths_json(
        perf_report, os.path.join(RESULTS_DIR, JSON_NAME), family="store"
    )
    print(perf_report.render())
