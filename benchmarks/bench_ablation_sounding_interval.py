"""Ablation: deriving the 10 ms MU-MIMO sounding guidance.

The paper quotes [7]: MU-MIMO should sound "at least once every 10 ms
to account for user mobility", and budgets SplitBeam's end-to-end delay
against it (Table III discussion).  The channel-aging model makes the
number derivable: goodput over the sounding interval has an interior
optimum between airtime waste (sounding too often) and beamforming
staleness (sounding too rarely).  This bench locates that optimum for
pedestrian/brisk Doppler with 802.11-sized and SplitBeam-sized
reports.

Expected shape: optima in the low-millisecond band (consistent with the
10 ms ceiling), moving earlier as Doppler grows, and SplitBeam's
smaller report yielding strictly higher peak goodput.
"""

from repro.analysis.report import ExperimentReport
from repro.sounding.aging import AgingGoodputModel, optimal_sounding_interval
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits

from benchmarks.conftest import record_report

N_USERS = 3
BANDWIDTH_MHZ = 80
SPLITBEAM_FRACTION = 1 / 5  # ~K=1/8 under the Eq. (9) conventions


def compute_report() -> ExperimentReport:
    report = ExperimentReport(
        "Ablation: goodput-optimal sounding interval (3x3 @ 80 MHz)"
    )
    config = Dot11FeedbackConfig(
        n_tx=N_USERS, n_rx=1, n_streams=1, bandwidth_mhz=BANDWIDTH_MHZ
    )
    dot11_bits = bmr_bits(config)
    schemes = {
        "802.11": dot11_bits,
        "SplitBeam": int(dot11_bits * SPLITBEAM_FRACTION),
    }
    for doppler_hz in (2.0, 8.0, 25.0):
        for scheme, bits in schemes.items():
            model = AgingGoodputModel(
                n_users=N_USERS,
                bandwidth_mhz=BANDWIDTH_MHZ,
                feedback_bits_per_user=bits,
                doppler_hz=doppler_hz,
            )
            interval, goodput = optimal_sounding_interval(model)
            label = f"fd={doppler_hz:g} Hz {scheme}"
            report.add(label, "optimal interval ms", interval * 1e3)
            report.add(label, "peak goodput Mb/s", goodput / 1e6)
    return report


def test_ablation_sounding_interval(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("ablation_sounding_interval", report.render(precision=4))

    values = {(r.setting, r.metric): r.measured for r in report.records}
    for doppler_hz in (2.0, 8.0, 25.0):
        dot11 = values[(f"fd={doppler_hz:g} Hz 802.11", "optimal interval ms")]
        split = values[(f"fd={doppler_hz:g} Hz SplitBeam", "optimal interval ms")]
        # All optima respect the paper's 10 ms ceiling at brisk mobility.
        if doppler_hz >= 8.0:
            assert dot11 <= 10.0
            assert split <= 10.0
        # SplitBeam's lighter report never sounds *less* often and always
        # clears more goodput.
        assert split <= dot11 + 1e-9
        assert (
            values[(f"fd={doppler_hz:g} Hz SplitBeam", "peak goodput Mb/s")]
            > values[(f"fd={doppler_hz:g} Hz 802.11", "peak goodput Mb/s")]
        )
    # Faster channels demand more frequent sounding.
    assert (
        values[("fd=25 Hz 802.11", "optimal interval ms")]
        <= values[("fd=2 Hz 802.11", "optimal interval ms")]
    )
