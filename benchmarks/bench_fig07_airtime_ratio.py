"""Fig. 7: SplitBeam/802.11 beamforming-feedback size ratio.

Regenerates the Fig. 7 bars — BM size ratio for 4x4 and 8x8 systems,
K in {1/32 .. 1/4}, 20/40/80 MHz — from the airtime models of
Sec. IV-E2, and checks the quoted 91%/93% reductions (K = 1/32 under
the Eq. (9) 16-bit convention; see DESIGN.md Sec. 3.5).
"""

from repro.analysis.report import ExperimentReport
from repro.core.costs import feedback_size_ratio

from benchmarks.conftest import record_report

COMPRESSIONS = (1 / 32, 1 / 16, 1 / 8, 1 / 4)
BANDWIDTHS = (20, 40, 80)
PAPER_ANCHORS = {(4, 80, 1 / 32): 0.09, (8, 80, 1 / 32): 0.07}


def compute_report() -> ExperimentReport:
    report = ExperimentReport("Fig. 7: BM size ratio SplitBeam/802.11 (%)")
    for mimo in (4, 8):
        for bandwidth in BANDWIDTHS:
            for compression in COMPRESSIONS:
                ratio = feedback_size_ratio(compression, mimo, mimo, bandwidth)
                paper = PAPER_ANCHORS.get((mimo, bandwidth, compression))
                report.add(
                    f"{mimo}x{mimo} {bandwidth} MHz K=1/{round(1 / compression)}",
                    "ratio %",
                    100 * ratio,
                    paper_value=100 * paper if paper is not None else None,
                )
    return report


def test_fig07_airtime_ratio(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig07_airtime_ratio", report.render(precision=3))

    by_setting = {r.setting: r.measured for r in report.records}
    # Paper: 91% and 93% reduction at 80 MHz (ratio 9% / 7%).
    assert by_setting["4x4 80 MHz K=1/32"] < 11.0
    assert by_setting["8x8 80 MHz K=1/32"] < 9.0
    # Ratio linear in K; 8x8 always compresses harder than 4x4.
    for bandwidth in BANDWIDTHS:
        assert by_setting[f"4x4 {bandwidth} MHz K=1/16"] == (
            __import__("pytest").approx(
                2 * by_setting[f"4x4 {bandwidth} MHz K=1/32"], rel=1e-6
            )
        )
        for compression in COMPRESSIONS:
            key = f"K=1/{round(1 / compression)}"
            assert (
                by_setting[f"8x8 {bandwidth} MHz {key}"]
                < by_setting[f"4x4 {bandwidth} MHz {key}"]
            )
