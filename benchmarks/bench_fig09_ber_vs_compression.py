"""Fig. 9: BER as a function of compression rate, SplitBeam vs 802.11.

For each (configuration, environment, bandwidth) cell the paper trains
SplitBeam at K in {1/32, 1/16, 1/8, 1/4} and compares the achieved BER
with the 802.11 compressed feedback (whose own rate is ~1/2 for 2x2 and
~2/3 for 3x3, Eq. (9)).  Expected shape: BER decreases as K grows, and
K = 1/8 lands near the 802.11 BER.

Full grid = 2 configs x 2 envs x 3 bandwidths x 4 compressions; at the
default fast fidelity this trains 48 small models (a few minutes).

The grid executes through ``repro.runtime``: the ``fig09`` scenario
preset expands to 60 tasks, completed points are reused from the
content-addressed cache under ``benchmarks/results/runtime_cache``, and
``REPRO_RUNTIME_WORKERS=N`` fans the remaining ones out over N worker
processes (results are bit-identical to serial execution either way).
A deterministic JSON artifact lands next to the rendered table.
"""

import os

from repro.analysis.report import ExperimentReport
from repro.runtime import ExperimentEngine, get_scenario
from repro.runtime.registry import DATASET_GRID as GRID

from benchmarks.conftest import RESULTS_DIR, record_report, runtime_cache

JSON_NAME = "fig09_ber_vs_compression.json"


def compute_report(fidelity) -> ExperimentReport:
    scenario = get_scenario("fig09", fidelity=fidelity)
    engine = ExperimentEngine(cache=runtime_cache())
    run = engine.run(scenario)
    run.write_json(os.path.join(RESULTS_DIR, JSON_NAME))
    report = ExperimentReport(scenario.title)
    for entry in run.points:
        report.add(entry["label"], "BER", entry["result"]["ber"])
    return report


def test_fig09_ber_vs_compression(benchmark, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(bench_fidelity,), rounds=1, iterations=1
    )
    record_report("fig09_ber_vs_compression", report.render(precision=4))

    ber = {r.setting: r.measured for r in report.records}
    for (config, env, bandwidth), _ in GRID.items():
        prefix = f"{config} {env} {bandwidth} MHz"
        # Paper shape 1: more compression (smaller K) -> higher BER.
        assert ber[f"{prefix} SB 1/32"] >= ber[f"{prefix} SB 1/4"] - 0.01
        # Paper shape 2: everything stays in the Fig. 9 BER band.
        assert ber[f"{prefix} 802.11"] < 0.08
        assert ber[f"{prefix} SB 1/4"] < 0.2
    # Paper shape 3: on the whole grid, K = 1/8 lands within a few 1e-2
    # of the 802.11 BER (the paper reports "within about 1e-3" at its
    # 10k-sample fidelity; fast fidelity widens the gap).
    gaps = [
        ber[f"{c} {e} {b} MHz SB 1/8"] - ber[f"{c} {e} {b} MHz 802.11"]
        for (c, e, b) in GRID
    ]
    assert sum(gaps) / len(gaps) < 0.06
