"""Fig. 9: BER as a function of compression rate, SplitBeam vs 802.11.

For each (configuration, environment, bandwidth) cell the paper trains
SplitBeam at K in {1/32, 1/16, 1/8, 1/4} and compares the achieved BER
with the 802.11 compressed feedback (whose own rate is ~1/2 for 2x2 and
~2/3 for 3x3, Eq. (9)).  Expected shape: BER decreases as K grows, and
K = 1/8 lands near the 802.11 BER.

Full grid = 2 configs x 2 envs x 3 bandwidths x 4 compressions; at the
default fast fidelity this trains 48 small models (a few minutes).
"""

import pytest

from repro.analysis.report import ExperimentReport
from repro.baselines import Dot11Feedback
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

COMPRESSIONS = (1 / 32, 1 / 16, 1 / 8, 1 / 4)
#: Table I ids by (config, env, bandwidth).
GRID = {
    ("2x2", "E1", 20): "D1", ("3x3", "E1", 20): "D2",
    ("2x2", "E2", 20): "D3", ("3x3", "E2", 20): "D4",
    ("2x2", "E1", 40): "D5", ("3x3", "E1", 40): "D6",
    ("2x2", "E2", 40): "D7", ("3x3", "E2", 40): "D8",
    ("2x2", "E1", 80): "D9", ("3x3", "E1", 80): "D10",
    ("2x2", "E2", 80): "D11", ("3x3", "E2", 80): "D12",
}
LINK = LinkConfig(snr_db=20.0)


def compute_report(caches, fidelity) -> ExperimentReport:
    report = ExperimentReport(
        "Fig. 9: BER vs compression rate (SplitBeam vs 802.11), 16-QAM @ 20 dB"
    )
    for (config, env, bandwidth), dataset_id in GRID.items():
        dataset = caches.dataset(dataset_id, fidelity)
        indices = dataset.splits.test[: fidelity.ber_samples]
        for compression in COMPRESSIONS:
            trained = caches.trained(dataset_id, fidelity, compression)
            evaluation = evaluate_scheme(
                SplitBeamFeedback(trained), dataset, indices, LINK
            )
            report.add(
                f"{config} {env} {bandwidth} MHz SB 1/{round(1 / compression)}",
                "BER",
                evaluation.ber,
            )
        dot11 = evaluate_scheme(Dot11Feedback(), dataset, indices, LINK)
        report.add(f"{config} {env} {bandwidth} MHz 802.11", "BER", dot11.ber)
    return report


def test_fig09_ber_vs_compression(benchmark, caches, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(caches, bench_fidelity), rounds=1, iterations=1
    )
    record_report("fig09_ber_vs_compression", report.render(precision=4))

    ber = {r.setting: r.measured for r in report.records}
    for (config, env, bandwidth), _ in GRID.items():
        prefix = f"{config} {env} {bandwidth} MHz"
        # Paper shape 1: more compression (smaller K) -> higher BER.
        assert ber[f"{prefix} SB 1/32"] >= ber[f"{prefix} SB 1/4"] - 0.01
        # Paper shape 2: everything stays in the Fig. 9 BER band.
        assert ber[f"{prefix} 802.11"] < 0.08
        assert ber[f"{prefix} SB 1/4"] < 0.2
    # Paper shape 3: on the whole grid, K = 1/8 lands within a few 1e-2
    # of the 802.11 BER (the paper reports "within about 1e-3" at its
    # 10k-sample fidelity; fast fidelity widens the gap).
    gaps = [
        ber[f"{c} {e} {b} MHz SB 1/8"] - ber[f"{c} {e} {b} MHz 802.11"]
        for (c, e, b) in GRID
    ]
    assert sum(gaps) / len(gaps) < 0.06
