"""Ablation: zero-forcing (the paper's precoder) vs regularized ZF.

The paper's BER procedure fixes zero-forcing (Sec. 5.2.2 step (4)).
This ablation shows that choice is the right one for the paper's
metric and operating point, and where its limits are:

- on *uncoded fixed-QAM BER*, ZF wins at every realistic SNR — the
  residual inter-user interference RZF tolerates corrupts symbols far
  more than the retained signal power helps, and the paper's receivers
  treat IUI as noise;
- on *sum rate* (the capacity view), RZF overtakes ZF once noise
  dominates (around 0 dB), the classic MMSE crossover;
- at the paper's 20 dB operating point the two converge, so fixing ZF
  loses nothing.
"""

from repro.analysis.report import ExperimentReport
from repro.baselines import Dot11Feedback
from repro.core.pipeline import evaluate_scheme
from repro.phy.link import LinkConfig, LinkSimulator

from benchmarks.conftest import record_report

DATASET_ID = "D2"  # 3x3 @ 20 MHz in E1
SNRS_DB = (0.0, 12.0, 20.0)


def compute_report(caches, fidelity) -> ExperimentReport:
    report = ExperimentReport("Ablation: ZF vs RZF precoding (D2, 3x3)")
    dataset = caches.dataset(DATASET_ID, fidelity)
    indices = dataset.splits.test[: fidelity.ber_samples]
    scheme = Dot11Feedback()
    channels = dataset.link_channels(indices)
    bf = scheme.reconstruct_bf(dataset, indices)
    for snr_db in SNRS_DB:
        for precoder in ("zf", "rzf"):
            link = LinkConfig(snr_db=snr_db, precoder=precoder)
            evaluation = evaluate_scheme(scheme, dataset, indices, link)
            metrics = LinkSimulator(link).measure_metrics(channels, bf)
            label = f"{snr_db:.0f} dB {precoder}"
            report.add(label, "BER", evaluation.ber)
            report.add(label, "sum rate b/s/Hz", metrics.sum_rate_bps_per_hz)
            report.add(label, "IUI leakage", metrics.leakage)
    return report


def test_ablation_precoder(benchmark, caches, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(caches, bench_fidelity), rounds=1, iterations=1
    )
    record_report("ablation_precoder", report.render(precision=4))

    values = {(r.setting, r.metric): r.measured for r in report.records}

    # Fixed-QAM uncoded BER: ZF wins wherever the link is usable (at
    # 0 dB both are noise-dominated and the comparison is moot).
    for snr_db in (12.0, 20.0):
        zf = values[(f"{snr_db:.0f} dB zf", "BER")]
        rzf = values[(f"{snr_db:.0f} dB rzf", "BER")]
        assert zf <= rzf + 0.01
    assert values[("0 dB zf", "BER")] > 0.2
    assert values[("0 dB rzf", "BER")] > 0.2
    # BER falls with SNR under ZF.
    assert values[("20 dB zf", "BER")] < values[("0 dB zf", "BER")]

    # Sum rate: the MMSE crossover — RZF wins at 0 dB ...
    assert (
        values[("0 dB rzf", "sum rate b/s/Hz")]
        > values[("0 dB zf", "sum rate b/s/Hz")]
    )
    # ... and its relative disadvantage shrinks as SNR grows (the two
    # converge in the high-SNR limit; on these correlated testbed
    # channels the 20 dB gap is still ~25%).
    def gap(snr: str) -> float:
        zf = values[(f"{snr} zf", "sum rate b/s/Hz")]
        rzf = values[(f"{snr} rzf", "sum rate b/s/Hz")]
        return (zf - rzf) / zf

    assert gap("0 dB") < 0.0  # RZF ahead
    assert gap("0 dB") < gap("20 dB") < gap("12 dB")

    # ZF nulls IUI up to feedback-quantization error; RZF's deliberate
    # leakage shrinks with SNR.
    assert values[("20 dB zf", "IUI leakage")] < 1e-2
    assert (
        values[("20 dB rzf", "IUI leakage")]
        < values[("12 dB rzf", "IUI leakage")]
        < values[("0 dB rzf", "IUI leakage")]
    )
