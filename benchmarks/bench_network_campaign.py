"""Network-campaign orchestration benchmark: cold vs warm, 1 vs N workers.

Times a heterogeneous multi-STA :class:`~repro.core.network.
NetworkCampaign` (the paper's AP-serving-many-STAs scenario) through
the runtime engine and merges three stages into
``benchmarks/results/BENCH_hotpaths.json`` alongside the engine/zoo
stages:

- ``campaign/cold_1worker``    ladder training + every STA-round
  measured, serial;
- ``campaign/cold_4workers``   the same with a 4-process pool (ladders
  come from a shared checkpoint store, so this times round fan-out);
- ``campaign/warm_cache``      everything replayed from the
  content-addressed stores — zero trainings, zero link simulations.

The cost under test is orchestration (planning, per-round cache keys,
chain resolution, the pool), so the physics stays smoke-scale.  The
determinism contract is asserted along the way: worker counts must not
change a byte of the campaign manifest, and the warm run must execute
nothing.

Run with ``pytest benchmarks/bench_network_campaign.py --perf`` or
``python benchmarks/bench_network_campaign.py`` (tier-1 never runs it).
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import sys
import tempfile

import pytest

from repro.config import Fidelity
from repro.core.network import NetworkCampaign
from repro.perf import Benchmark, PerfReport
from repro.runtime import (
    CheckpointStore,
    NetworkCampaignSpec,
    ResultCache,
    fidelity_to_dict,
    mobility_episode,
    sta_profile,
)
from repro.runtime.tasks import clear_memos

try:
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )
except ModuleNotFoundError:  # direct `python benchmarks/bench_network_campaign.py`
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )

pytestmark = pytest.mark.perf

JSON_NAME = "BENCH_hotpaths.json"

#: Orchestration-scale budget: the campaign machinery is the workload,
#: not the physics, so datasets and trainings stay tiny.
CAMPAIGN_FIDELITY = Fidelity(
    name="perf-campaign",
    n_samples=96,
    n_sessions=2,
    epochs=4,
    ber_samples=12,
    ofdm_symbols=1,
)

CAMPAIGN_WORKERS = 4
N_STAS = 8
N_ROUNDS = 4


def _campaign_spec() -> NetworkCampaignSpec:
    """8 heterogeneous STAs x 4 rounds on one dataset, with a burst."""
    stas = []
    for i in range(N_STAS):
        if i % 4 == 3:
            stas.append(
                sta_profile(
                    f"sta{i:02d}", "D1", scheme="dot11",
                    samples_per_round=6, seed=i,
                )
            )
        else:
            stas.append(
                sta_profile(
                    f"sta{i:02d}", "D1",
                    compressions=(1 / 16, 1 / 8),
                    max_ber=0.5,
                    doppler_hz=(0.0, 2.0, 6.0)[i % 3],
                    samples_per_round=6,
                    seed=i,
                )
            )
    return NetworkCampaignSpec(
        name="perf-campaign",
        title=f"campaign benchmark: {N_STAS} STAs x {N_ROUNDS} rounds on D1",
        fidelity=fidelity_to_dict(CAMPAIGN_FIDELITY),
        stas=tuple(stas),
        n_rounds=N_ROUNDS,
        episodes=(
            mobility_episode(0),
            mobility_episode(2, doppler_scale=20.0, snr_offset_db=-4.0),
        ),
    )


def build_report() -> PerfReport:
    bench = Benchmark(warmup=0, repeats=2)
    report = PerfReport(
        "network-campaign orchestration (cold/warm, worker scaling)",
        context={
            "workload": f"{N_STAS} STAs x {N_ROUNDS} rounds on D1, "
            "2-rung ladders + 802.11 baselines"
        },
    )
    spec = _campaign_spec()
    workdir = tempfile.mkdtemp(prefix="repro-campaign-bench-")
    counter = itertools.count()
    store = CheckpointStore(os.path.join(workdir, "store"))
    last_run: dict[int, object] = {}

    def cold_run(n_workers: int):
        # A fresh round cache and empty per-process memos each call, so
        # every repeat pays the full round-measurement cost; the ladder
        # checkpoint store is shared, so 1- and 4-worker stages time the
        # same work.
        clear_memos()
        cache = ResultCache(os.path.join(workdir, f"cold-{next(counter)}"))
        run = NetworkCampaign(
            spec, cache=cache, store=store, n_workers=n_workers
        ).run()
        assert run.n_executed_rounds == N_STAS * N_ROUNDS
        last_run[n_workers] = run
        return run

    try:
        # Prime the checkpoint store outside the timed region: the cold
        # stages compare round orchestration, not first-training luck.
        cold_run(1)
        cold_serial = bench.run(
            "campaign/cold_1worker",
            lambda: cold_run(1),
            n_items=N_STAS * N_ROUNDS,
            meta={"n_stas": N_STAS, "n_rounds": N_ROUNDS},
        )
        cold_workers = bench.run(
            f"campaign/cold_{CAMPAIGN_WORKERS}workers",
            lambda: cold_run(CAMPAIGN_WORKERS),
            n_items=N_STAS * N_ROUNDS,
            meta={
                "n_stas": N_STAS,
                "n_rounds": N_ROUNDS,
                "n_workers": CAMPAIGN_WORKERS,
                "cpu_count": os.cpu_count(),
            },
        )
        # Determinism: worker count must not change a manifest byte.
        assert json.dumps(
            last_run[1].to_dict(), sort_keys=True
        ) == json.dumps(last_run[CAMPAIGN_WORKERS].to_dict(), sort_keys=True)

        warm_cache = ResultCache(os.path.join(workdir, "warm"))
        NetworkCampaign(spec, cache=warm_cache, store=store).run()

        def warm_run():
            clear_memos()
            run = NetworkCampaign(
                spec, cache=warm_cache, store=store, n_workers=1
            ).run()
            # A warm re-run replays every STA-round from the
            # content-addressed store: zero tasks, zero link sims.
            assert run.n_executed_rounds == 0
            assert run.zoo_trained == 0
            return run

        warm = bench.run(
            "campaign/warm_cache",
            warm_run,
            n_items=N_STAS * N_ROUNDS,
            repeats=3,
            meta={"n_stas": N_STAS, "n_rounds": N_ROUNDS},
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.add(cold_serial)
    report.add(cold_workers)
    report.add(warm)
    report.add_comparison("campaign_cache", cold_serial, warm)
    # Worker scaling only means something with cores to scale onto;
    # below the gate the txt report renders this row as skipped.
    report.add_comparison(
        "campaign_workers", cold_serial, cold_workers, requires_cpus=4
    )
    return report


@pytest.mark.perf
def test_perf_network_campaign():
    report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    write_hotpaths_json(
        report, os.path.join(RESULTS_DIR, JSON_NAME), family="campaign"
    )
    record_report("BENCH_network_campaign", report.render())
    comparisons = {c["stage"]: c for c in report.to_dict()["comparisons"]}
    # A warm store (reads JSON, replays controllers) must beat
    # re-measuring every round outright.
    assert comparisons["campaign_cache"]["speedup"] >= 2.0
    # Worker scaling is hardware-dependent; assert only where four
    # workers actually have four cores to land on.
    if (os.cpu_count() or 1) >= 4:
        assert comparisons["campaign_workers"]["speedup"] >= 1.5


if __name__ == "__main__":
    perf_report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    write_hotpaths_json(
        perf_report, os.path.join(RESULTS_DIR, JSON_NAME), family="campaign"
    )
    print(perf_report.render())
