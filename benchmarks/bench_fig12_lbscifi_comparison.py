"""Fig. 12: SplitBeam vs LB-SciFi — BER and STA load, single/cross env.

The paper's Fig. 12 uses 3x3 at 80 MHz.  Cross-environment evaluation
needs models that learned the channel->beamforming map rather than one
campaign's manifold, so this bench runs at the TRANSFER fidelity; to
keep the runtime in minutes it measures BER at the paper's highlighted
K = 1/8 and reports the STA-load panel (which needs no training
beyond the encoder dimensions) for the full K ladder.

Expected shapes: (i) SplitBeam's STA load is a small fraction of
LB-SciFi's at every K (the paper quotes a 78% average reduction);
(ii) single- and cross-environment BERs are comparable between the two
DNN schemes.

The BER panel executes through ``repro.runtime`` (scenario preset
``fig12-ber``): completed points are reused from the result cache, and
``REPRO_RUNTIME_WORKERS=N`` parallelizes the four DNN trainings.  A
deterministic JSON artifact lands next to the rendered table.

80 MHz at TRANSFER fidelity trains four DNNs (~10 min); set
REPRO_BENCH_FIG12_BW=40 or =20 for a faster pass.
"""

import os

from repro.analysis.report import ExperimentReport
from repro.core.costs import splitbeam_head_flops
from repro.core.model import SplitBeamNet, three_layer_widths
from repro.phy.ofdm import band_plan
from repro.runtime import ExperimentEngine, get_scenario
from repro.standard.flopmodel import dot11_flops
from repro.standard.givens import angle_counts

from benchmarks.conftest import RESULTS_DIR, record_report, runtime_cache

COMPRESSIONS = (1 / 32, 1 / 16, 1 / 8, 1 / 4)

JSON_NAME = "fig12_lbscifi_comparison.json"


def flops_panel(report: ExperimentReport, n_tx: int, n_sc: int) -> None:
    """STA load vs K for both schemes (no training required)."""
    input_dim = 2 * n_tx * n_sc
    n_phi, n_psi = angle_counts(n_tx, 1)
    angle_width = n_sc * (n_phi + n_psi)
    legacy = dot11_flops(n_tx, 1, n_subcarriers=n_sc)
    for compression in COMPRESSIONS:
        label = f"K=1/{round(1 / compression)}"
        sb = SplitBeamNet(three_layer_widths(input_dim, compression), rng=0)
        encoder_macs = angle_width * max(1, round(compression * angle_width))
        report.add(
            f"STA FLOPs x1e5 {label} SplitBeam",
            "FLOPs x1e5",
            splitbeam_head_flops(sb) / 1e5,
        )
        report.add(
            f"STA FLOPs x1e5 {label} LB-SciFi",
            "FLOPs x1e5",
            (legacy + 2 * encoder_macs) / 1e5,
        )


def compute_report() -> ExperimentReport:
    bandwidth = int(os.environ.get("REPRO_BENCH_FIG12_BW", "80"))
    scenario = get_scenario("fig12-ber", bandwidth=bandwidth)
    engine = ExperimentEngine(cache=runtime_cache())
    run = engine.run(scenario)
    run.write_json(os.path.join(RESULTS_DIR, JSON_NAME))

    report = ExperimentReport(scenario.title)
    for entry in run.points:
        report.add(entry["label"], "BER", entry["result"]["ber"])
    flops_panel(report, n_tx=3, n_sc=band_plan(bandwidth).n_subcarriers)
    return report


def test_fig12_lbscifi_comparison(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig12_lbscifi_comparison", report.render(precision=4))

    values = {r.setting: r.measured for r in report.records}
    # SplitBeam's STA load is far below LB-SciFi's at every K.
    for compression in COMPRESSIONS:
        label = f"K=1/{round(1 / compression)}"
        sb = values[f"STA FLOPs x1e5 {label} SplitBeam"]
        lb = values[f"STA FLOPs x1e5 {label} LB-SciFi"]
        assert sb < lb
    # Cross-environment BER is degraded but bounded for both schemes.
    for scheme_name in ("SplitBeam", "LB-SciFi"):
        single = values[f"BER E1 {scheme_name} (K=1/8)"]
        cross = values[f"BER E1/E2 {scheme_name} (K=1/8)"]
        assert cross < 0.40
        assert single <= cross + 0.05
