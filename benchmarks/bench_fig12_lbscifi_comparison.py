"""Fig. 12: SplitBeam vs LB-SciFi — BER and STA load, single/cross env.

The paper's Fig. 12 uses 3x3 at 80 MHz.  Cross-environment evaluation
needs models that learned the channel->beamforming map rather than one
campaign's manifold, so this bench runs at the TRANSFER fidelity; to
keep the runtime in minutes it measures BER at the paper's highlighted
K = 1/8 and reports the STA-load panel (which needs no training
beyond the encoder dimensions) for the full K ladder.

Expected shapes: (i) SplitBeam's STA load is a small fraction of
LB-SciFi's at every K (the paper quotes a 78% average reduction);
(ii) single- and cross-environment BERs are comparable between the two
DNN schemes.

80 MHz at TRANSFER fidelity trains four DNNs (~10 min); set
REPRO_BENCH_FIG12_BW=40 or =20 for a faster pass.
"""

import os

from repro.analysis.report import ExperimentReport
from repro.baselines import train_lbscifi
from repro.config import Fidelity
from repro.core.costs import splitbeam_head_flops
from repro.core.model import SplitBeamNet, three_layer_widths
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.core.training import train_splitbeam
from repro.datasets import build_dataset, dataset_spec
from repro.phy.link import LinkConfig
from repro.standard.flopmodel import dot11_flops
from repro.standard.givens import angle_counts

from benchmarks.conftest import record_report

COMPRESSIONS = (1 / 32, 1 / 16, 1 / 8, 1 / 4)
BER_COMPRESSION = 1 / 8
LINK = LinkConfig(snr_db=20.0)

#: Table I ids for the 3x3 datasets by (env, bandwidth).
DATASET_IDS = {("E1", 20): "D2", ("E2", 20): "D4",
               ("E1", 40): "D6", ("E2", 40): "D8",
               ("E1", 80): "D10", ("E2", 80): "D12"}

#: TRANSFER-like budget, trimmed for the wide 80 MHz inputs.
FIG12_FIDELITY = Fidelity(
    name="fig12",
    n_samples=2000,
    n_sessions=8,
    epochs=50,
    ber_samples=50,
    ofdm_symbols=1,
    reset_interval=8,
)


def flops_panel(report: ExperimentReport, n_tx: int, n_sc: int) -> None:
    """STA load vs K for both schemes (no training required)."""
    input_dim = 2 * n_tx * n_sc
    n_phi, n_psi = angle_counts(n_tx, 1)
    angle_width = n_sc * (n_phi + n_psi)
    legacy = dot11_flops(n_tx, 1, n_subcarriers=n_sc)
    for compression in COMPRESSIONS:
        label = f"K=1/{round(1 / compression)}"
        sb = SplitBeamNet(three_layer_widths(input_dim, compression), rng=0)
        encoder_macs = angle_width * max(1, round(compression * angle_width))
        report.add(
            f"STA FLOPs x1e5 {label} SplitBeam",
            "FLOPs x1e5",
            splitbeam_head_flops(sb) / 1e5,
        )
        report.add(
            f"STA FLOPs x1e5 {label} LB-SciFi",
            "FLOPs x1e5",
            (legacy + 2 * encoder_macs) / 1e5,
        )


def compute_report() -> ExperimentReport:
    bandwidth = int(os.environ.get("REPRO_BENCH_FIG12_BW", "80"))
    report = ExperimentReport(
        f"Fig. 12: SplitBeam vs LB-SciFi, 3x3 @ {bandwidth} MHz"
    )
    fidelity = FIG12_FIDELITY
    datasets = {
        env: build_dataset(
            dataset_spec(DATASET_IDS[(env, bandwidth)]),
            fidelity=fidelity,
            seed=7 if env == "E1" else 8,
        )
        for env in ("E1", "E2")
    }
    schemes = {}
    for env, dataset in datasets.items():
        schemes[("SplitBeam", env)] = SplitBeamFeedback(
            train_splitbeam(
                dataset, compression=BER_COMPRESSION, fidelity=fidelity, seed=0
            )
        )
        schemes[("LB-SciFi", env)] = train_lbscifi(
            dataset, compression=BER_COMPRESSION, fidelity=fidelity, seed=0
        )

    protocols = [
        ("E1", "E1", "E1"), ("E2", "E2", "E2"),
        ("E1/E2", "E1", "E2"), ("E2/E1", "E2", "E1"),
    ]
    for label, train_env, test_env in protocols:
        test_ds = datasets[test_env]
        indices = test_ds.splits.test[: fidelity.ber_samples]
        for scheme_name in ("SplitBeam", "LB-SciFi"):
            evaluation = evaluate_scheme(
                schemes[(scheme_name, train_env)],
                datasets[train_env],
                indices=indices,
                link_config=LINK,
                eval_dataset=test_ds if test_env != train_env else None,
            )
            report.add(
                f"BER {label} {scheme_name} (K=1/8)", "BER", evaluation.ber
            )

    n_sc = datasets["E1"].n_subcarriers
    flops_panel(report, n_tx=3, n_sc=n_sc)
    return report


def test_fig12_lbscifi_comparison(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig12_lbscifi_comparison", report.render(precision=4))

    values = {r.setting: r.measured for r in report.records}
    # SplitBeam's STA load is far below LB-SciFi's at every K.
    for compression in COMPRESSIONS:
        label = f"K=1/{round(1 / compression)}"
        sb = values[f"STA FLOPs x1e5 {label} SplitBeam"]
        lb = values[f"STA FLOPs x1e5 {label} LB-SciFi"]
        assert sb < lb
    # Cross-environment BER is degraded but bounded for both schemes.
    for scheme_name in ("SplitBeam", "LB-SciFi"):
        single = values[f"BER E1 {scheme_name} (K=1/8)"]
        cross = values[f"BER E1/E2 {scheme_name} (K=1/8)"]
        assert cross < 0.40
        assert single <= cross + 0.05
