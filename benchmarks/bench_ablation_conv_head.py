"""Ablation: dense head (SplitBeam) vs convolutional head (CsiNet-style).

The paper's related work credits CNN-based CSI compression (CsiNet [18],
DeepCMC [19]) for cellular MIMO but builds SplitBeam around a single
dense layer at the STA.  This ablation trains both families on the same
dataset, same compression, same recipe, and compares BER against STA
compute.  Expected shape: the conv encoder's frequency-local filters do
not buy enough BER to justify their extra MACs — the dense head
dominates on BER *per FLOP*, which is the architectural argument behind
SplitBeam's O(K) head.
"""

from repro.analysis.report import ExperimentReport
from repro.baselines.csinet import CsiNetFeedback, train_csinet
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

DATASET_ID = "D1"
COMPRESSIONS = (1 / 8, 1 / 4)
LINK = LinkConfig(snr_db=20.0)


def compute_report(caches, fidelity) -> ExperimentReport:
    report = ExperimentReport(
        "Ablation: dense vs convolutional head (D1, 2x2 @ 20 MHz)"
    )
    dataset = caches.dataset(DATASET_ID, fidelity)
    indices = dataset.splits.test[: fidelity.ber_samples]
    for compression in COMPRESSIONS:
        dense = caches.trained(DATASET_ID, fidelity, compression)
        conv = train_csinet(
            dataset, compression=compression, fidelity=fidelity, seed=0
        )
        for scheme in (SplitBeamFeedback(dense), CsiNetFeedback(conv)):
            evaluation = evaluate_scheme(scheme, dataset, indices, LINK)
            kind = "dense" if "SplitBeam" in evaluation.scheme_name else "conv"
            label = f"K=1/{round(1 / compression)} {kind}"
            report.add(label, "BER", evaluation.ber)
            report.add(label, "STA FLOPs", evaluation.sta_flops)
            report.add(label, "feedback bits", evaluation.feedback_bits)
    return report


def test_ablation_conv_head(benchmark, caches, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(caches, bench_fidelity), rounds=1, iterations=1
    )
    record_report("ablation_conv_head", report.render(precision=4))

    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    flops = {
        r.setting: r.measured
        for r in report.records
        if r.metric == "STA FLOPs"
    }
    bits = {
        r.setting: r.measured
        for r in report.records
        if r.metric == "feedback bits"
    }
    for compression in COMPRESSIONS:
        k = f"K=1/{round(1 / compression)}"
        # Same bottleneck -> same over-the-air feedback.
        assert bits[f"{k} dense"] == bits[f"{k} conv"]
        # The conv front-end always costs extra STA compute.
        assert flops[f"{k} conv"] > flops[f"{k} dense"]
        # Both families learn the task (bounded BER) ...
        assert bers[f"{k} dense"] < 0.1
        assert bers[f"{k} conv"] < 0.15
        # ... but the conv head does not dominate: its BER advantage (if
        # any) is smaller than its >2x FLOP premium, so dense wins the
        # BER-per-FLOP frontier.
        flop_premium = flops[f"{k} conv"] / flops[f"{k} dense"]
        assert flop_premium > 2.0
        assert bers[f"{k} conv"] > bers[f"{k} dense"] * 0.5
