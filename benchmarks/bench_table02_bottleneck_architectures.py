"""Table II: bottleneck placement/size vs BER (2x2 network).

Trains the three Table II architecture families at 20 MHz: the 3-layer
SplitBeam (K = 1/8), the wide 6-layer model with |B| = 4 D, and the
tapered 7-layer model.  Expected paper shapes: deeper/wider models can
reduce BER but cost orders of magnitude more head MACs, and *more
parameters do not guarantee better accuracy* (the paper's overfitting
observation).
"""

from repro.analysis.report import ExperimentReport
from repro.core.costs import splitbeam_head_flops
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.core.training import train_splitbeam
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

#: Table II rows for 20 MHz (D = 224); head widths are the bold prefix.
ARCHITECTURES = {
    "3-layer (Table II highlight)": [224, 28, 28, 224],
    "wide 5-layer": [224, 896, 1792, 896, 224],
    "tapered 6-layer": [224, 896, 896, 448, 448, 224],
}
LINK = LinkConfig(snr_db=20.0)


def compute_report(caches, fidelity) -> ExperimentReport:
    dataset = caches.dataset("D1", fidelity)
    indices = dataset.splits.test[: fidelity.ber_samples]
    report = ExperimentReport("Table II: bottleneck structure vs BER (2x2, 20 MHz)")
    for name, widths in ARCHITECTURES.items():
        trained = train_splitbeam(
            dataset, widths=widths, fidelity=fidelity, seed=0
        )
        evaluation = evaluate_scheme(
            SplitBeamFeedback(trained), dataset, indices, LINK
        )
        label = f"{name} [{trained.model.label()}]"
        report.add(label, "BER", evaluation.ber)
        report.add(label, "|B|", trained.model.bottleneck_dim)
        report.add(label, "head MACs", trained.model.head_macs())
    return report


def test_table02_bottleneck_architectures(benchmark, caches, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(caches, bench_fidelity), rounds=1, iterations=1
    )
    record_report("table02_bottleneck_architectures", report.render(precision=4))

    macs = {r.setting: r.measured for r in report.records if r.metric == "head MACs"}
    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    labels = list(bers)
    three_layer = next(l for l in labels if "3-layer" in l)
    wide = next(l for l in labels if "wide" in l)
    tapered = next(l for l in labels if "tapered" in l)
    # Wide/tapered heads cost vastly more than the 3-layer head ...
    assert macs[wide] > 10 * macs[three_layer]
    assert macs[tapered] > 10 * macs[three_layer]
    # ... and all three land in a usable BER band (the paper's point:
    # parameter count does not buy proportional accuracy).
    for label in labels:
        assert bers[label] < 0.2
