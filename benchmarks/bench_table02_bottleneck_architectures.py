"""Table II: bottleneck placement/size vs BER (2x2 network).

Trains the three Table II architecture families at 20 MHz: the 3-layer
SplitBeam (K = 1/8), the wide 6-layer model with |B| = 4 D, and the
tapered 7-layer model.  Expected paper shapes: deeper/wider models can
reduce BER but cost orders of magnitude more head MACs, and *more
parameters do not guarantee better accuracy* (the paper's overfitting
observation).

The architecture family is the ``table2-architectures`` training-grid
preset, built through ``repro.core.zoo_builder.train_zoo``: trainings
fan out over ``$REPRO_RUNTIME_WORKERS`` worker processes and finished
models persist in the content-addressed checkpoint store under
``benchmarks/results/checkpoint_store``, so a re-run at the same
fidelity loads weights instead of retraining.
"""

from repro.analysis.report import ExperimentReport
from repro.core.zoo_builder import train_zoo

from benchmarks.conftest import checkpoint_store, record_report


def compute_report(fidelity) -> ExperimentReport:
    result = train_zoo(
        "table2-architectures", fidelity=fidelity, store=checkpoint_store()
    )
    report = ExperimentReport("Table II: bottleneck structure vs BER (2x2, 20 MHz)")
    for row in result.entries:
        entry = result.entry(row["label"])
        label = f"{row['label']} [{entry.model.label()}]"
        report.add(label, "BER", row["measured_ber"])
        report.add(label, "|B|", entry.model.bottleneck_dim)
        report.add(label, "head MACs", entry.model.head_macs())
    return report


def test_table02_bottleneck_architectures(benchmark, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(bench_fidelity,), rounds=1, iterations=1
    )
    record_report("table02_bottleneck_architectures", report.render(precision=4))

    macs = {r.setting: r.measured for r in report.records if r.metric == "head MACs"}
    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    labels = list(bers)
    three_layer = next(l for l in labels if "3-layer" in l)
    wide = next(l for l in labels if "wide" in l)
    tapered = next(l for l in labels if "tapered" in l)
    # Wide/tapered heads cost vastly more than the 3-layer head ...
    assert macs[wide] > 10 * macs[three_layer]
    assert macs[tapered] > 10 * macs[three_layer]
    # ... and all three land in a usable BER band (the paper's point:
    # parameter count does not buy proportional accuracy).
    for label in labels:
        assert bers[label] < 0.2
