"""Hot-path wall-time benchmarks: seed loops vs vectorized kernels.

Times every stage of the CSI -> feedback -> BER pipeline against the
frozen pre-vectorization implementations in ``repro.perf.reference``
(the link simulator carries its own frozen twin,
``LinkSimulator.measure_ber_reference``) and writes the results to
``benchmarks/results/BENCH_hotpaths.json`` so the perf trajectory is
tracked across PRs.

Stages:

- ``sampler``            packetized multi-user CSI collection
- ``givens``             Givens decompose + reconstruct
- ``cbf_encode``/``cbf_decode``  802.11 report framing
- ``link_ber``           the Sec. 5.2.2 BER procedure
- ``evaluate_scheme``    the full figure-benchmark entry point at a
                         Fig. 12-sized workload (3x3, 80 MHz, 50 BER
                         samples) — target >= 10x vs the seed path
- ``csinet_fwd``/``csinet_bwd``  conv-head DNN forward/backward
- ``engine/*``           the ``repro.runtime`` orchestration engine on a
                         6-point scenario: cold vs warm (content-
                         addressed) cache, and 1 vs 4 worker processes;
                         a warm re-run must execute zero simulations and
                         worker counts must not change a single byte of
                         the result JSON
- ``zoo/*``              zoo training through the engine on a 4-model
                         grid: cold vs warm (content-addressed
                         checkpoint store), and 1 vs 4 worker
                         processes; a warm rebuild must train zero
                         epochs and worker counts must not change a
                         byte of the manifest or weights

Run with ``pytest benchmarks/bench_perf_hotpaths.py --perf`` or
``python benchmarks/bench_perf_hotpaths.py`` (tier-1 never runs it; see
``docs/perf.md``).
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro.baselines import IdealSvdFeedback
from repro.baselines.csinet import ConvSplitNet
from repro.channels.environment import E1
from repro.channels.sampler import CsiSampler
from repro.config import Fidelity
from repro.core.pipeline import evaluate_scheme
from repro.datasets import build_dataset, dataset_spec
from repro.nn.losses import NormalizedL1Loss
from repro.perf import Benchmark, PerfReport
from repro.perf.reference import (
    reference_collect_session,
    reference_decode_cbf,
    reference_encode_cbf,
    reference_givens_decompose,
    reference_givens_reconstruct,
)
from repro.phy.link import LinkConfig, LinkSimulator
from repro.phy.ofdm import band_plan
from repro.phy.svd import beamforming_matrices
from repro.standard.cbf import MimoControl, decode_cbf, encode_cbf
from repro.standard.givens import givens_decompose, givens_reconstruct

try:
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )
except ModuleNotFoundError:  # direct `python benchmarks/bench_perf_hotpaths.py`
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )

pytestmark = pytest.mark.perf

JSON_NAME = "BENCH_hotpaths.json"

#: Fig. 12 workload: 3x3 MU-MIMO at 80 MHz, 50 BER samples (the bench
#: fidelity's test split), 16-QAM ZF links.
FIG12_DATASET = "D10"
FIG12_FIDELITY = Fidelity(
    name="perf-fig12",
    n_samples=500,  # 8:1:1 split -> 50 test samples, the Fig. 12 size
    n_sessions=1,
    epochs=1,
    ber_samples=50,
    ofdm_symbols=1,
)

#: Smoke-scale budget for the orchestration-engine scenario: the cost
#: under test is the engine (planning, cache, worker pool), not the
#: physics, so every point stays tiny.
ENGINE_FIDELITY = Fidelity(
    name="perf-engine",
    n_samples=96,
    n_sessions=2,
    epochs=4,
    ber_samples=12,
    ofdm_symbols=1,
)

ENGINE_WORKERS = 4


def _engine_scenario():
    """Six independent points: four DNN trainings plus two baselines."""
    from repro.runtime import (
        Scenario,
        dot11,
        fidelity_to_dict,
        ideal,
        point,
        splitbeam,
    )

    points = [
        point(
            f"SB seed {seed}",
            "D1",
            splitbeam(1 / 8, seed=seed),
            link={"snr_db": 20.0},
            ber_samples=ENGINE_FIDELITY.ber_samples,
        )
        for seed in range(4)
    ]
    points.append(
        point("802.11", "D1", dot11(), link={"snr_db": 20.0},
              ber_samples=ENGINE_FIDELITY.ber_samples)
    )
    points.append(
        point("ideal", "D1", ideal(), link={"snr_db": 20.0},
              ber_samples=ENGINE_FIDELITY.ber_samples)
    )
    return Scenario(
        name="perf-engine",
        title="engine benchmark: 4 trainings + 2 baselines on D1",
        fidelity=fidelity_to_dict(ENGINE_FIDELITY),
        points=tuple(points),
    )


class _ReferenceLinkSimulator(LinkSimulator):
    """A simulator pinned to the frozen per-sample BER path."""

    def measure_ber(self, channels, bf_estimates, rng=None):
        return self.measure_ber_reference(channels, bf_estimates, rng=rng)


def _random_channels(rng, n, users, n_sc, n_rx, n_tx):
    shape = (n, users, n_sc, n_rx, n_tx)
    return (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ) / np.sqrt(2.0)


def build_report() -> PerfReport:
    bench = Benchmark(warmup=1, repeats=5)
    report = PerfReport(
        "hot-path benchmarks (seed reference vs vectorized)",
        context={"workload": "fig12: 3x3 @ 80 MHz, 50 samples"},
    )
    rng = np.random.default_rng(7)

    # -- sampler ---------------------------------------------------------------
    n_packets = 300
    sampler_args = dict(env=E1, n_users=2, n_rx=2, n_tx=3, band=band_plan(40))
    baseline = bench.run(
        "sampler/reference",
        lambda: reference_collect_session(
            CsiSampler(**sampler_args, rng=5), n_packets
        ),
        n_items=n_packets * 2,
    )
    optimized = bench.run(
        "sampler/vectorized",
        lambda: CsiSampler(**sampler_args, rng=5).collect_session(n_packets),
        n_items=n_packets * 2,
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("sampler", baseline, optimized)

    # -- givens ----------------------------------------------------------------
    plan = band_plan(80)
    bf = beamforming_matrices(
        _random_channels(rng, 50, 3, plan.n_subcarriers, 3, 3), n_streams=1
    )
    baseline = bench.run(
        "givens/reference",
        lambda: reference_givens_reconstruct(reference_givens_decompose(bf)),
        n_items=bf.shape[0] * bf.shape[1] * bf.shape[2],
    )
    optimized = bench.run(
        "givens/vectorized",
        lambda: givens_reconstruct(givens_decompose(bf)),
        n_items=bf.shape[0] * bf.shape[1] * bf.shape[2],
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("givens", baseline, optimized)

    # -- cbf encode/decode -----------------------------------------------------
    control = MimoControl(
        n_columns=1, n_rows=3, bandwidth_mhz=80, grouping=2, feedback_type="mu"
    )
    one_bf = bf[0, 0][..., :, :1]  # (S, Nt, 1)
    frame = encode_cbf(one_bf, control)
    assert frame == reference_encode_cbf(one_bf, control)
    baseline = bench.run(
        "cbf_encode/reference",
        lambda: reference_encode_cbf(one_bf, control),
        n_items=1,
    )
    optimized = bench.run(
        "cbf_encode/vectorized", lambda: encode_cbf(one_bf, control), n_items=1
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("cbf_encode", baseline, optimized)
    baseline = bench.run(
        "cbf_decode/reference", lambda: reference_decode_cbf(frame), n_items=1
    )
    optimized = bench.run(
        "cbf_decode/vectorized", lambda: decode_cbf(frame), n_items=1
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("cbf_decode", baseline, optimized)

    # -- link BER (synthetic channels, fig-12 dimensions) ----------------------
    channels = _random_channels(rng, 50, 3, plan.n_subcarriers, 3, 3)
    link_bf = beamforming_matrices(channels, n_streams=1)[..., 0]
    simulator = LinkSimulator(LinkConfig())
    baseline = bench.run(
        "link_ber/reference",
        lambda: simulator.measure_ber_reference(channels, link_bf, rng=1),
        n_items=channels.shape[0],
    )
    optimized = bench.run(
        "link_ber/vectorized",
        lambda: simulator.measure_ber(channels, link_bf, rng=1),
        n_items=channels.shape[0],
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("link_ber", baseline, optimized)

    # -- evaluate_scheme (the acceptance target: >= 10x) -----------------------
    dataset = build_dataset(
        dataset_spec(FIG12_DATASET), fidelity=FIG12_FIDELITY, seed=7
    )
    scheme = IdealSvdFeedback()
    baseline = bench.run(
        "evaluate_scheme/reference",
        lambda: evaluate_scheme(
            scheme, dataset, simulator=_ReferenceLinkSimulator(LinkConfig())
        ),
        n_items=dataset.splits.test.size,
        meta={"dataset": FIG12_DATASET, "ber_samples": int(dataset.splits.test.size)},
    )
    optimized = bench.run(
        "evaluate_scheme/vectorized",
        lambda: evaluate_scheme(scheme, dataset),
        n_items=dataset.splits.test.size,
        meta={"dataset": FIG12_DATASET, "ber_samples": int(dataset.splits.test.size)},
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("evaluate_scheme", baseline, optimized)

    # -- csinet forward/backward (no seed twin; trajectory tracking only) ------
    input_dim = dataset.input_dim
    model = ConvSplitNet(
        input_dim=input_dim,
        n_feature_channels=2 * dataset.spec.n_rx * dataset.spec.n_tx,
        compression=1 / 8,
        rng=0,
    )
    x, y = dataset.model_arrays(dataset.splits.test[:16])
    loss = NormalizedL1Loss()
    report.add(
        bench.run(
            "csinet_fwd", lambda: model.forward(x), n_items=x.shape[0]
        )
    )

    def forward_backward():
        prediction = model.forward(x)
        loss.forward(prediction, y)
        model.backward(loss.backward())

    report.add(
        bench.run("csinet_bwd", forward_backward, n_items=x.shape[0])
    )

    # -- runtime engine: cold/warm cache and 1-vs-N workers --------------------
    import itertools
    import json
    import shutil
    import tempfile

    from repro.runtime import ExperimentEngine, ResultCache
    from repro.runtime.tasks import clear_memos

    scenario = _engine_scenario()
    workdir = tempfile.mkdtemp(prefix="repro-engine-bench-")
    counter = itertools.count()
    last_run: dict[int, object] = {}

    def cold_run(n_workers: int):
        # A fresh cache directory and empty per-process memos each call,
        # so every repeat pays the full cold cost.
        clear_memos()
        cache = ResultCache(os.path.join(workdir, f"cold-{next(counter)}"))
        run = ExperimentEngine(cache=cache, n_workers=n_workers).run(scenario)
        assert run.n_executed == scenario.n_points
        last_run[n_workers] = run
        return run

    try:
        cold_serial = bench.run(
            "engine/cold_1worker",
            lambda: cold_run(1),
            n_items=scenario.n_points,
            repeats=2,
            warmup=0,
            meta={"n_points": scenario.n_points},
        )
        cold_workers = bench.run(
            f"engine/cold_{ENGINE_WORKERS}workers",
            lambda: cold_run(ENGINE_WORKERS),
            n_items=scenario.n_points,
            repeats=2,
            warmup=0,
            meta={
                "n_points": scenario.n_points,
                "n_workers": ENGINE_WORKERS,
                "cpu_count": os.cpu_count(),
            },
        )
        # Determinism: worker count must not change a byte of the artifact.
        assert json.dumps(last_run[1].to_dict(), sort_keys=True) == json.dumps(
            last_run[ENGINE_WORKERS].to_dict(), sort_keys=True
        )

        warm_cache = ResultCache(os.path.join(workdir, "warm"))
        ExperimentEngine(cache=warm_cache, n_workers=1).run(scenario)

        def warm_run():
            clear_memos()
            run = ExperimentEngine(cache=warm_cache, n_workers=1).run(scenario)
            # A warm re-run serves every point from the content-addressed
            # store: zero tasks, zero link simulations.
            assert run.n_executed == 0
            return run

        warm = bench.run(
            "engine/warm_cache",
            warm_run,
            n_items=scenario.n_points,
            repeats=3,
            warmup=0,
            meta={"n_points": scenario.n_points},
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.add(cold_serial)
    report.add(cold_workers)
    report.add(warm)
    report.add_comparison("engine_cache", cold_serial, warm)
    report.add_comparison("engine_workers", cold_serial, cold_workers)

    # -- zoo training: cold/warm checkpoint store and 1-vs-N workers -----------
    from repro.core.zoo_builder import train_zoo
    from repro.perf import profile_summary, reset_profiles
    from repro.runtime import CheckpointStore, TrainingGrid, zoo_entry
    from repro.runtime.spec import fidelity_to_dict

    zoo_grid = TrainingGrid(
        name="perf-zoo",
        title="zoo benchmark: a 4-model compression ladder on D1",
        fidelity=fidelity_to_dict(ENGINE_FIDELITY),
        entries=tuple(
            zoo_entry(
                f"D1 K=1/{round(1 / k)}",
                "D1",
                compression=k,
                ber_samples=ENGINE_FIDELITY.ber_samples,
            )
            for k in (1 / 32, 1 / 16, 1 / 8, 1 / 4)
        ),
    )
    workdir = tempfile.mkdtemp(prefix="repro-zoo-bench-")
    last_build: dict[int, object] = {}

    def cold_build(n_workers: int):
        # A fresh store and empty per-process memos each call, so every
        # repeat pays the full cold (training) cost.
        clear_memos()
        store = CheckpointStore(os.path.join(workdir, f"cold-{next(counter)}"))
        build = train_zoo(zoo_grid, store=store, n_workers=n_workers)
        assert build.n_trained == zoo_grid.n_entries
        last_build[n_workers] = build
        return build

    try:
        zoo_cold_serial = bench.run(
            "zoo/cold_1worker",
            lambda: cold_build(1),
            n_items=zoo_grid.n_entries,
            repeats=2,
            warmup=0,
            meta={"n_entries": zoo_grid.n_entries},
        )
        zoo_cold_workers = bench.run(
            f"zoo/cold_{ENGINE_WORKERS}workers",
            lambda: cold_build(ENGINE_WORKERS),
            n_items=zoo_grid.n_entries,
            repeats=2,
            warmup=0,
            meta={
                "n_entries": zoo_grid.n_entries,
                "n_workers": ENGINE_WORKERS,
                "cpu_count": os.cpu_count(),
            },
        )
        # Determinism: worker count must not change a byte of the
        # manifest (which digests every weight tensor via state_sha256).
        assert json.dumps(
            last_build[1].to_dict(), sort_keys=True
        ) == json.dumps(last_build[ENGINE_WORKERS].to_dict(), sort_keys=True)

        warm_store = CheckpointStore(os.path.join(workdir, "warm"))
        train_zoo(zoo_grid, store=warm_store, n_workers=1)

        def warm_build():
            clear_memos()
            reset_profiles()
            build = train_zoo(zoo_grid, store=warm_store, n_workers=1)
            # A warm rebuild loads every model from the checkpoint
            # store: zero trainings, zero epochs, zero link simulations.
            assert build.n_trained == 0
            profiled = {entry.name for entry in profile_summary()}
            assert "trainer.fit" not in profiled
            assert "trainer.epoch" not in profiled
            return build

        zoo_warm = bench.run(
            "zoo/warm_checkpoints",
            warm_build,
            n_items=zoo_grid.n_entries,
            repeats=3,
            warmup=0,
            meta={"n_entries": zoo_grid.n_entries},
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.add(zoo_cold_serial)
    report.add(zoo_cold_workers)
    report.add(zoo_warm)
    report.add_comparison("zoo_checkpoints", zoo_cold_serial, zoo_warm)
    report.add_comparison("zoo_workers", zoo_cold_serial, zoo_cold_workers)
    return report


@pytest.mark.perf
def test_perf_hotpaths():
    report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    # Merge-preserving write: the campaign/* stages belong to
    # bench_network_campaign.py and must survive this suite's runs.
    write_hotpaths_json(
        report, os.path.join(RESULTS_DIR, JSON_NAME), owns_campaign=False
    )
    record_report("BENCH_hotpaths", report.render())
    comparisons = {c["stage"]: c for c in report.to_dict()["comparisons"]}
    # Regression guard: the tentpole target is >= 10x on evaluate_scheme
    # (the committed BENCH_hotpaths.json records the measured number);
    # assert a margin below it so a loaded CI box does not flake.
    assert comparisons["evaluate_scheme"]["speedup"] >= 7.0
    # The vectorized codecs must never regress below the seed loops.
    for stage in ("sampler", "givens", "cbf_encode", "cbf_decode", "link_ber"):
        assert comparisons[stage]["speedup"] >= 1.0, stage
    # A warm content-addressed cache must beat recomputation outright
    # (it reads six JSON files instead of training four DNNs).
    assert comparisons["engine_cache"]["speedup"] >= 5.0
    # Likewise a warm checkpoint store must beat retraining the zoo
    # outright (it loads four .npz files instead of training 4 DNNs).
    assert comparisons["zoo_checkpoints"]["speedup"] >= 5.0
    # Worker scaling is hardware-dependent; assert the >= 2x target only
    # where four workers actually have four cores to land on.
    if (os.cpu_count() or 1) >= 4:
        assert comparisons["engine_workers"]["speedup"] >= 2.0
        assert comparisons["zoo_workers"]["speedup"] >= 2.0


if __name__ == "__main__":
    perf_report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    write_hotpaths_json(
        perf_report, os.path.join(RESULTS_DIR, JSON_NAME), owns_campaign=False
    )
    print(perf_report.render())
