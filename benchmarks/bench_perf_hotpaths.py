"""Hot-path wall-time benchmarks: seed loops vs vectorized kernels.

Times every stage of the CSI -> feedback -> BER pipeline against the
frozen pre-vectorization implementations in ``repro.perf.reference``
(the link simulator carries its own frozen twin,
``LinkSimulator.measure_ber_reference``) and writes the results to
``benchmarks/results/BENCH_hotpaths.json`` so the perf trajectory is
tracked across PRs.

Stages:

- ``sampler``            packetized multi-user CSI collection
- ``givens``             Givens decompose + reconstruct
- ``cbf_encode``/``cbf_decode``  802.11 report framing
- ``link_ber``           the Sec. 5.2.2 BER procedure
- ``evaluate_scheme``    the full figure-benchmark entry point at a
                         Fig. 12-sized workload (3x3, 80 MHz, 50 BER
                         samples) — target >= 10x vs the seed path
- ``conv_fwd``/``conv_bwd``      one Conv1d layer, strided im2col vs
                         the frozen per-kernel-position loops
- ``csinet_fwd``/``csinet_bwd``  conv-head DNN forward/backward vs a
                         reference-pinned twin model
- ``train_step``         a full ladder-rung training run (epoch
                         pipeline + fused clip/Adam) vs the frozen
                         loop trainer — trained weights asserted
                         bit-identical
- ``dispatch``           executor worker-pool dispatch of many small
                         tasks sharing one large payload: inline
                         per-task shipping vs the content-addressed
                         payload store
- ``engine/*``           the ``repro.runtime`` orchestration engine on a
                         6-point scenario: cold vs warm (content-
                         addressed) cache, and 1 vs 4 worker processes;
                         a warm re-run must execute zero simulations and
                         worker counts must not change a single byte of
                         the result JSON
- ``zoo/*``              zoo training through the engine on a 4-model
                         grid: cold vs warm (content-addressed
                         checkpoint store), and 1 vs 4 worker
                         processes; a warm rebuild must train zero
                         epochs and worker counts must not change a
                         byte of the manifest or weights

Run with ``pytest benchmarks/bench_perf_hotpaths.py --perf`` or
``python benchmarks/bench_perf_hotpaths.py`` (tier-1 never runs it; see
``docs/perf.md``).  ``python benchmarks/bench_perf_hotpaths.py
--train-smoke`` runs only the train_step reference/vectorized
equivalence at smoke scale (the CI training smoke).
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro.baselines import IdealSvdFeedback
from repro.baselines.csinet import ConvSplitNet
from repro.channels.environment import E1
from repro.channels.sampler import CsiSampler
from repro.config import Fidelity
from repro.core.model import SplitBeamNet, three_layer_widths
from repro.core.pipeline import evaluate_scheme
from repro.datasets import build_dataset, dataset_spec
from repro.nn.conv import Conv1d
from repro.nn.losses import NormalizedL1Loss
from repro.nn.serialize import state_dict
from repro.nn.trainer import Trainer, TrainingConfig
from repro.perf import Benchmark, PerfReport
from repro.perf.reference import (
    ReferenceConv1d,
    ReferenceNormalizedL1Loss,
    ReferenceTrainer,
    pin_reference_nn,
    reference_collect_session,
    reference_decode_cbf,
    reference_encode_cbf,
    reference_givens_decompose,
    reference_givens_reconstruct,
)
from repro.phy.link import LinkConfig, LinkSimulator
from repro.phy.ofdm import band_plan
from repro.phy.svd import beamforming_matrices
from repro.standard.cbf import MimoControl, decode_cbf, encode_cbf
from repro.standard.givens import givens_decompose, givens_reconstruct

try:
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )
except ModuleNotFoundError:  # direct `python benchmarks/bench_perf_hotpaths.py`
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    from benchmarks.conftest import (
        RESULTS_DIR,
        record_report,
        write_hotpaths_json,
    )

pytestmark = pytest.mark.perf

JSON_NAME = "BENCH_hotpaths.json"

#: Fig. 12 workload: 3x3 MU-MIMO at 80 MHz, 50 BER samples (the bench
#: fidelity's test split), 16-QAM ZF links.
FIG12_DATASET = "D10"
FIG12_FIDELITY = Fidelity(
    name="perf-fig12",
    n_samples=500,  # 8:1:1 split -> 50 test samples, the Fig. 12 size
    n_sessions=1,
    epochs=1,
    ber_samples=50,
    ofdm_symbols=1,
)

#: Smoke-scale budget for the orchestration-engine scenario: the cost
#: under test is the engine (planning, cache, worker pool), not the
#: physics, so every point stays tiny.
ENGINE_FIDELITY = Fidelity(
    name="perf-engine",
    n_samples=96,
    n_sessions=2,
    epochs=4,
    ber_samples=12,
    ofdm_symbols=1,
)

ENGINE_WORKERS = 4


def _engine_scenario():
    """Six independent points: four DNN trainings plus two baselines."""
    from repro.runtime import (
        Scenario,
        dot11,
        fidelity_to_dict,
        ideal,
        point,
        splitbeam,
    )

    points = [
        point(
            f"SB seed {seed}",
            "D1",
            splitbeam(1 / 8, seed=seed),
            link={"snr_db": 20.0},
            ber_samples=ENGINE_FIDELITY.ber_samples,
        )
        for seed in range(4)
    ]
    points.append(
        point("802.11", "D1", dot11(), link={"snr_db": 20.0},
              ber_samples=ENGINE_FIDELITY.ber_samples)
    )
    points.append(
        point("ideal", "D1", ideal(), link={"snr_db": 20.0},
              ber_samples=ENGINE_FIDELITY.ber_samples)
    )
    return Scenario(
        name="perf-engine",
        title="engine benchmark: 4 trainings + 2 baselines on D1",
        fidelity=fidelity_to_dict(ENGINE_FIDELITY),
        points=tuple(points),
    )


class _ReferenceLinkSimulator(LinkSimulator):
    """A simulator pinned to the frozen per-sample BER path."""

    def measure_ber(self, channels, bf_estimates, rng=None):
        return self.measure_ber_reference(channels, bf_estimates, rng=rng)


#: Training-stage workload: the paper's primary dataset (the zoo's
#: compression-ladder substrate) at the engine benchmark fidelity.
TRAIN_DATASET = "D1"
TRAIN_COMPRESSION = 1 / 8


def _train_step_stage(bench, report, fidelity, assert_identical=True):
    """Time the frozen loop trainer vs the fused trainer on one rung.

    Both sides train the same ladder rung (same init seed, same data,
    same schedule); the trained weights are asserted bit-identical —
    the vectorized trainer replays the reference arithmetic exactly.
    Returns the (baseline, optimized) results for the comparison row.
    """
    train_set = build_dataset(
        dataset_spec(TRAIN_DATASET), fidelity=fidelity, seed=7
    )
    x, y = train_set.model_arrays(train_set.splits.train)
    widths = three_layer_widths(train_set.input_dim, TRAIN_COMPRESSION)
    config = TrainingConfig(
        epochs=fidelity.epochs, batch_size=16, optimizer="adam", seed=0
    )
    n_items = x.shape[0] * config.epochs
    meta = {
        "dataset": TRAIN_DATASET,
        "widths": [int(w) for w in widths],
        "epochs": config.epochs,
        "n_train": int(x.shape[0]),
    }

    def fit(trainer_cls):
        model = SplitBeamNet(widths, rng=3)
        trainer_cls(model, config=config).fit(x, y)
        return model

    if assert_identical:
        state_ref = state_dict(fit(ReferenceTrainer))
        state_vec = state_dict(fit(Trainer))
        for key in state_ref:
            assert np.array_equal(state_ref[key], state_vec[key]), key

    baseline = bench.run(
        "train_step/reference",
        lambda: fit(ReferenceTrainer),
        n_items=n_items,
        meta=meta,
    )
    optimized = bench.run(
        "train_step/vectorized",
        lambda: fit(Trainer),
        n_items=n_items,
        meta=meta,
    )
    report.add(baseline)
    report.add(optimized)
    return baseline, optimized


def _dispatch_stage(bench, report, n_tasks=24, n_workers=2):
    """Pool dispatch of a task *chain* sharing one large payload.

    The shape of a campaign feedback chain: round ``r`` depends on
    round ``r-1``, so every round is its own wave, and each wave's
    message used to re-ship the deployed model.  (A single wave would
    not show this — pickling one packed message already dedups shared
    objects within it.)  Reference ships the payload inline in every
    wave; the optimized side interns it in a :class:`PayloadStore`, so
    it crosses the process boundary once per worker instead of once
    per round.  Both sides must return identical digests.
    """
    from repro.runtime import PayloadStore, Task, run_tasks

    # Model-sized payload: ~4 MB, the order of a SplitBeam state dict.
    blob = np.random.default_rng(5).standard_normal((512, 1024))
    meta = {
        "n_tasks": n_tasks,
        "n_workers": n_workers,
        "payload_mb": round(blob.nbytes / 1e6, 2),
        "chained": True,
    }

    def tasks_for(payload):
        return [
            Task(
                task_id=f"probe-{index:03d}",
                fn="repro.runtime.tasks:payload_probe",
                params={"blob": payload, "row": index},
                deps=(f"probe-{index - 1:03d}",) if index else (),
            )
            for index in range(n_tasks)
        ]

    def run_inline():
        return run_tasks(tasks_for(blob), n_workers=n_workers)

    def run_interned():
        with PayloadStore() as store:
            return run_tasks(
                tasks_for(store.intern(blob)),
                n_workers=n_workers,
                payloads=store,
            )

    assert run_inline() == run_interned()
    baseline = bench.run(
        "dispatch/reference", run_inline, n_items=n_tasks, repeats=3,
        warmup=0, meta=meta,
    )
    optimized = bench.run(
        "dispatch/interned", run_interned, n_items=n_tasks, repeats=3,
        warmup=0, meta=meta,
    )
    report.add(baseline)
    report.add(optimized)
    return baseline, optimized


def _random_channels(rng, n, users, n_sc, n_rx, n_tx):
    shape = (n, users, n_sc, n_rx, n_tx)
    return (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ) / np.sqrt(2.0)


def build_report() -> PerfReport:
    bench = Benchmark(warmup=1, repeats=5)
    report = PerfReport(
        "hot-path benchmarks (seed reference vs vectorized)",
        context={"workload": "fig12: 3x3 @ 80 MHz, 50 samples"},
    )
    rng = np.random.default_rng(7)

    # -- sampler ---------------------------------------------------------------
    n_packets = 300
    sampler_args = dict(env=E1, n_users=2, n_rx=2, n_tx=3, band=band_plan(40))
    baseline = bench.run(
        "sampler/reference",
        lambda: reference_collect_session(
            CsiSampler(**sampler_args, rng=5), n_packets
        ),
        n_items=n_packets * 2,
    )
    optimized = bench.run(
        "sampler/vectorized",
        lambda: CsiSampler(**sampler_args, rng=5).collect_session(n_packets),
        n_items=n_packets * 2,
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("sampler", baseline, optimized)

    # -- givens ----------------------------------------------------------------
    plan = band_plan(80)
    bf = beamforming_matrices(
        _random_channels(rng, 50, 3, plan.n_subcarriers, 3, 3), n_streams=1
    )
    baseline = bench.run(
        "givens/reference",
        lambda: reference_givens_reconstruct(reference_givens_decompose(bf)),
        n_items=bf.shape[0] * bf.shape[1] * bf.shape[2],
    )
    optimized = bench.run(
        "givens/vectorized",
        lambda: givens_reconstruct(givens_decompose(bf)),
        n_items=bf.shape[0] * bf.shape[1] * bf.shape[2],
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("givens", baseline, optimized)

    # -- cbf encode/decode -----------------------------------------------------
    control = MimoControl(
        n_columns=1, n_rows=3, bandwidth_mhz=80, grouping=2, feedback_type="mu"
    )
    one_bf = bf[0, 0][..., :, :1]  # (S, Nt, 1)
    frame = encode_cbf(one_bf, control)
    assert frame == reference_encode_cbf(one_bf, control)
    baseline = bench.run(
        "cbf_encode/reference",
        lambda: reference_encode_cbf(one_bf, control),
        n_items=1,
    )
    optimized = bench.run(
        "cbf_encode/vectorized", lambda: encode_cbf(one_bf, control), n_items=1
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("cbf_encode", baseline, optimized)
    baseline = bench.run(
        "cbf_decode/reference", lambda: reference_decode_cbf(frame), n_items=1
    )
    optimized = bench.run(
        "cbf_decode/vectorized", lambda: decode_cbf(frame), n_items=1
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("cbf_decode", baseline, optimized)

    # -- link BER (synthetic channels, fig-12 dimensions) ----------------------
    channels = _random_channels(rng, 50, 3, plan.n_subcarriers, 3, 3)
    link_bf = beamforming_matrices(channels, n_streams=1)[..., 0]
    simulator = LinkSimulator(LinkConfig())
    baseline = bench.run(
        "link_ber/reference",
        lambda: simulator.measure_ber_reference(channels, link_bf, rng=1),
        n_items=channels.shape[0],
    )
    optimized = bench.run(
        "link_ber/vectorized",
        lambda: simulator.measure_ber(channels, link_bf, rng=1),
        n_items=channels.shape[0],
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("link_ber", baseline, optimized)

    # -- evaluate_scheme (the acceptance target: >= 10x) -----------------------
    dataset = build_dataset(
        dataset_spec(FIG12_DATASET), fidelity=FIG12_FIDELITY, seed=7
    )
    scheme = IdealSvdFeedback()
    baseline = bench.run(
        "evaluate_scheme/reference",
        lambda: evaluate_scheme(
            scheme, dataset, simulator=_ReferenceLinkSimulator(LinkConfig())
        ),
        n_items=dataset.splits.test.size,
        meta={"dataset": FIG12_DATASET, "ber_samples": int(dataset.splits.test.size)},
    )
    optimized = bench.run(
        "evaluate_scheme/vectorized",
        lambda: evaluate_scheme(scheme, dataset),
        n_items=dataset.splits.test.size,
        meta={"dataset": FIG12_DATASET, "ber_samples": int(dataset.splits.test.size)},
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("evaluate_scheme", baseline, optimized)

    # -- bare Conv1d: strided im2col vs the frozen per-position loops ----------
    conv_batch = 16
    conv_x = rng.standard_normal((conv_batch, 18, plan.n_subcarriers // 2))
    conv_g = rng.standard_normal((conv_batch, 8, plan.n_subcarriers // 2))
    conv_vec = Conv1d(18, 8, kernel_size=5, rng=0)
    conv_ref = Conv1d(18, 8, kernel_size=5, rng=0)
    conv_ref.__class__ = ReferenceConv1d
    # The im2col forward is bit-identical to the frozen loops.
    assert np.array_equal(conv_vec.forward(conv_x), conv_ref.forward(conv_x))
    baseline = bench.run(
        "conv_fwd/reference",
        lambda: conv_ref.forward(conv_x),
        n_items=conv_batch,
    )
    optimized = bench.run(
        "conv_fwd/vectorized",
        lambda: conv_vec.forward(conv_x),
        n_items=conv_batch,
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("conv_fwd", baseline, optimized)
    baseline = bench.run(
        "conv_bwd/reference",
        lambda: conv_ref.backward(conv_g),
        n_items=conv_batch,
    )
    optimized = bench.run(
        "conv_bwd/vectorized",
        lambda: conv_vec.backward(conv_g),
        n_items=conv_batch,
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("conv_bwd", baseline, optimized)

    # -- csinet forward/backward vs a reference-pinned twin model --------------
    input_dim = dataset.input_dim
    csinet_args = dict(
        input_dim=input_dim,
        n_feature_channels=2 * dataset.spec.n_rx * dataset.spec.n_tx,
        compression=1 / 8,
        rng=0,
    )
    model = ConvSplitNet(**csinet_args)
    model_ref = ConvSplitNet(**csinet_args)  # same rng -> same weights
    pin_reference_nn(model_ref)
    x, y = dataset.model_arrays(dataset.splits.test[:16])
    loss = NormalizedL1Loss()
    loss_ref = ReferenceNormalizedL1Loss()
    assert np.array_equal(model.forward(x), model_ref.forward(x))
    baseline = bench.run(
        "csinet_fwd/reference",
        lambda: model_ref.forward(x),
        n_items=x.shape[0],
    )
    optimized = bench.run(
        "csinet_fwd/vectorized", lambda: model.forward(x), n_items=x.shape[0]
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("csinet_fwd", baseline, optimized)

    def forward_backward(net, net_loss):
        prediction = net.forward(x)
        net_loss.forward(prediction, y)
        net.backward(net_loss.backward())

    baseline = bench.run(
        "csinet_bwd/reference",
        lambda: forward_backward(model_ref, loss_ref),
        n_items=x.shape[0],
    )
    optimized = bench.run(
        "csinet_bwd/vectorized",
        lambda: forward_backward(model, loss),
        n_items=x.shape[0],
    )
    report.add(baseline)
    report.add(optimized)
    report.add_comparison("csinet_bwd", baseline, optimized)

    # -- train_step: the fused trainer vs the frozen loop trainer --------------
    train_stage = _train_step_stage(bench, report, ENGINE_FIDELITY)
    report.add_comparison("train_step", *train_stage)

    # -- dispatch: inline payload shipping vs the interned store ---------------
    dispatch_stage = _dispatch_stage(bench, report)
    report.add_comparison("dispatch", *dispatch_stage)

    # -- runtime engine: cold/warm cache and 1-vs-N workers --------------------
    import itertools
    import json
    import shutil
    import tempfile

    from repro.runtime import ExperimentEngine, ResultCache
    from repro.runtime.tasks import clear_memos

    scenario = _engine_scenario()
    workdir = tempfile.mkdtemp(prefix="repro-engine-bench-")
    counter = itertools.count()
    last_run: dict[int, object] = {}

    def cold_run(n_workers: int):
        # A fresh cache directory and empty per-process memos each call,
        # so every repeat pays the full cold cost.
        clear_memos()
        cache = ResultCache(os.path.join(workdir, f"cold-{next(counter)}"))
        run = ExperimentEngine(cache=cache, n_workers=n_workers).run(scenario)
        assert run.n_executed == scenario.n_points
        last_run[n_workers] = run
        return run

    try:
        cold_serial = bench.run(
            "engine/cold_1worker",
            lambda: cold_run(1),
            n_items=scenario.n_points,
            repeats=2,
            warmup=0,
            meta={"n_points": scenario.n_points},
        )
        cold_workers = bench.run(
            f"engine/cold_{ENGINE_WORKERS}workers",
            lambda: cold_run(ENGINE_WORKERS),
            n_items=scenario.n_points,
            repeats=2,
            warmup=0,
            meta={
                "n_points": scenario.n_points,
                "n_workers": ENGINE_WORKERS,
                "cpu_count": os.cpu_count(),
            },
        )
        # Determinism: worker count must not change a byte of the artifact.
        assert json.dumps(last_run[1].to_dict(), sort_keys=True) == json.dumps(
            last_run[ENGINE_WORKERS].to_dict(), sort_keys=True
        )

        warm_cache = ResultCache(os.path.join(workdir, "warm"))
        ExperimentEngine(cache=warm_cache, n_workers=1).run(scenario)

        def warm_run():
            clear_memos()
            run = ExperimentEngine(cache=warm_cache, n_workers=1).run(scenario)
            # A warm re-run serves every point from the content-addressed
            # store: zero tasks, zero link simulations.
            assert run.n_executed == 0
            return run

        warm = bench.run(
            "engine/warm_cache",
            warm_run,
            n_items=scenario.n_points,
            repeats=3,
            warmup=0,
            meta={"n_points": scenario.n_points},
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.add(cold_serial)
    report.add(cold_workers)
    report.add(warm)
    report.add_comparison("engine_cache", cold_serial, warm)
    # Worker scaling only means something with cores to scale onto;
    # below the gate the txt report renders this row as skipped.
    report.add_comparison(
        "engine_workers", cold_serial, cold_workers, requires_cpus=4
    )

    # -- zoo training: cold/warm checkpoint store and 1-vs-N workers -----------
    from repro.core.zoo_builder import train_zoo
    from repro.perf import profile_summary, reset_profiles
    from repro.runtime import CheckpointStore, TrainingGrid, zoo_entry
    from repro.runtime.spec import fidelity_to_dict

    zoo_grid = TrainingGrid(
        name="perf-zoo",
        title="zoo benchmark: a 4-model compression ladder on D1",
        fidelity=fidelity_to_dict(ENGINE_FIDELITY),
        entries=tuple(
            zoo_entry(
                f"D1 K=1/{round(1 / k)}",
                "D1",
                compression=k,
                ber_samples=ENGINE_FIDELITY.ber_samples,
            )
            for k in (1 / 32, 1 / 16, 1 / 8, 1 / 4)
        ),
    )
    workdir = tempfile.mkdtemp(prefix="repro-zoo-bench-")
    last_build: dict[int, object] = {}

    def cold_build(n_workers: int):
        # A fresh store and empty per-process memos each call, so every
        # repeat pays the full cold (training) cost.
        clear_memos()
        store = CheckpointStore(os.path.join(workdir, f"cold-{next(counter)}"))
        build = train_zoo(zoo_grid, store=store, n_workers=n_workers)
        assert build.n_trained == zoo_grid.n_entries
        last_build[n_workers] = build
        return build

    try:
        zoo_cold_serial = bench.run(
            "zoo/cold_1worker",
            lambda: cold_build(1),
            n_items=zoo_grid.n_entries,
            repeats=2,
            warmup=0,
            meta={"n_entries": zoo_grid.n_entries},
        )
        zoo_cold_workers = bench.run(
            f"zoo/cold_{ENGINE_WORKERS}workers",
            lambda: cold_build(ENGINE_WORKERS),
            n_items=zoo_grid.n_entries,
            repeats=2,
            warmup=0,
            meta={
                "n_entries": zoo_grid.n_entries,
                "n_workers": ENGINE_WORKERS,
                "cpu_count": os.cpu_count(),
            },
        )
        # Determinism: worker count must not change a byte of the
        # manifest (which digests every weight tensor via state_sha256).
        assert json.dumps(
            last_build[1].to_dict(), sort_keys=True
        ) == json.dumps(last_build[ENGINE_WORKERS].to_dict(), sort_keys=True)

        warm_store = CheckpointStore(os.path.join(workdir, "warm"))
        train_zoo(zoo_grid, store=warm_store, n_workers=1)

        def warm_build():
            clear_memos()
            reset_profiles()
            build = train_zoo(zoo_grid, store=warm_store, n_workers=1)
            # A warm rebuild loads every model from the checkpoint
            # store: zero trainings, zero epochs, zero link simulations.
            assert build.n_trained == 0
            profiled = {entry.name for entry in profile_summary()}
            assert "trainer.fit" not in profiled
            assert "trainer.epoch" not in profiled
            return build

        zoo_warm = bench.run(
            "zoo/warm_checkpoints",
            warm_build,
            n_items=zoo_grid.n_entries,
            repeats=3,
            warmup=0,
            meta={"n_entries": zoo_grid.n_entries},
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.add(zoo_cold_serial)
    report.add(zoo_cold_workers)
    report.add(zoo_warm)
    report.add_comparison("zoo_checkpoints", zoo_cold_serial, zoo_warm)
    report.add_comparison(
        "zoo_workers", zoo_cold_serial, zoo_cold_workers, requires_cpus=4
    )

    # -- observability: tracing overhead on the engine scenario ----------------
    traced, untraced = _obs_stage(bench, report)
    report.add_comparison("obs_trace_overhead", traced, untraced)

    # -- static analysis: full-tree lint with the dataflow rule pack -----------
    serial, parallel = _lint_stage(bench, report)
    report.add_comparison(
        "lint_jobs", serial, parallel, requires_cpus=2
    )
    return report


def _lint_stage(bench, report, jobs: int = 2):
    """One full ``repro.lint`` pass over ``src/`` — serial vs ``--jobs``.

    The interprocedural rules (read-set summaries, escape lattice, key
    coverage) dominate this stage, so it tracks the analyzer's own
    perf trajectory; the parallel leg measures the rule-partitioned
    ``ProcessPoolExecutor`` speedup the CI gate relies on.
    """
    from repro.lint import run_lint

    here = os.path.dirname(os.path.abspath(__file__))
    src = os.path.join(os.path.dirname(here), "src")
    n_modules = run_lint([src]).n_modules

    serial = bench.run(
        "lint/analyze_tree",
        lambda: run_lint([src]),
        n_items=n_modules,
        repeats=3,
        warmup=1,
        meta={"n_modules": n_modules},
    )
    parallel = bench.run(
        "lint/analyze_tree_jobs",
        lambda: run_lint([src], jobs=jobs),
        n_items=n_modules,
        repeats=3,
        warmup=0,
        meta={"n_modules": n_modules, "jobs": jobs},
    )
    report.add(serial)
    report.add(parallel)
    return serial, parallel


def _obs_stage(bench, report, repeats: int = 2):
    """Traced vs untraced cold engine runs (same scenario as engine/*).

    The untraced leg runs the *instrumented* code with no tracer
    installed — the disabled path under test is one module-global read
    per call site, so its medians should match ``engine/cold_1worker``
    within timer noise.  The traced leg records the full span timeline
    (coordinator + store spans, metrics) *and* pays the end-of-run
    export of all three trace artifacts; the ``obs_trace_overhead``
    ratio is traced/untraced, targeted < 5% overhead on this
    training-dominated workload.
    """
    import itertools
    import shutil
    import tempfile

    from repro.runtime import ExperimentEngine, ResultCache
    from repro.runtime.tasks import clear_memos

    scenario = _engine_scenario()
    workdir = tempfile.mkdtemp(prefix="repro-obs-bench-")
    counter = itertools.count()

    def cold_run(trace):
        clear_memos()
        cache = ResultCache(os.path.join(workdir, f"cache-{next(counter)}"))
        run = ExperimentEngine(cache=cache, n_workers=1, trace=trace).run(
            scenario
        )
        assert run.n_executed == scenario.n_points
        assert (run.trace_dir is None) == (trace is False)
        return run

    try:
        # Untraced first, and one warmup repeat each: the first cold
        # run of the process pays one-time costs (module imports, page
        # cache) that would otherwise bias whichever leg runs first.
        untraced = bench.run(
            "obs/engine_untraced",
            lambda: cold_run(False),
            n_items=scenario.n_points,
            repeats=repeats,
            warmup=1,
            meta={"n_points": scenario.n_points},
        )
        traced = bench.run(
            "obs/engine_traced",
            lambda: cold_run(os.path.join(workdir, f"trace-{next(counter)}")),
            n_items=scenario.n_points,
            repeats=repeats,
            warmup=1,
            meta={"n_points": scenario.n_points, "exports": "jsonl+chrome+summary"},
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.add(traced)
    report.add(untraced)
    return traced, untraced


@pytest.mark.perf
def test_perf_hotpaths():
    report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    # Merge-preserving write: the campaign/* stages belong to
    # bench_network_campaign.py and must survive this suite's runs.
    write_hotpaths_json(
        report, os.path.join(RESULTS_DIR, JSON_NAME), family=None
    )
    record_report("BENCH_hotpaths", report.render())
    comparisons = {c["stage"]: c for c in report.to_dict()["comparisons"]}
    # Regression guard: the tentpole target is >= 10x on evaluate_scheme
    # (the committed BENCH_hotpaths.json records the measured number);
    # assert a margin below it so a loaded CI box does not flake.
    assert comparisons["evaluate_scheme"]["speedup"] >= 7.0
    # The vectorized codecs must never regress below the seed loops.
    for stage in ("sampler", "givens", "cbf_encode", "cbf_decode", "link_ber"):
        assert comparisons[stage]["speedup"] >= 1.0, stage
    # The vectorized training stack must never regress below the frozen
    # loop implementations (the measured ratios live in the JSON; the
    # floors sit below the observed medians so a loaded box does not
    # flake).  train_step is bit-identity-pinned, bandwidth-bound
    # float64 work shared by both sides — its win is structural
    # overhead only, so its floor is parity within timer noise.
    assert comparisons["conv_fwd"]["speedup"] >= 1.2
    assert comparisons["conv_bwd"]["speedup"] >= 1.2
    assert comparisons["csinet_fwd"]["speedup"] >= 1.1
    assert comparisons["csinet_bwd"]["speedup"] >= 1.05
    assert comparisons["dispatch"]["speedup"] >= 1.5
    assert comparisons["train_step"]["speedup"] >= 0.9
    # A warm content-addressed cache must beat recomputation outright
    # (it reads six JSON files instead of training four DNNs).
    assert comparisons["engine_cache"]["speedup"] >= 5.0
    # Likewise a warm checkpoint store must beat retraining the zoo
    # outright (it loads four .npz files instead of training 4 DNNs).
    assert comparisons["zoo_checkpoints"]["speedup"] >= 5.0
    # Worker scaling is hardware-dependent; assert the >= 2x target only
    # where four workers actually have four cores to land on.
    if (os.cpu_count() or 1) >= 4:
        assert comparisons["engine_workers"]["speedup"] >= 2.0
        assert comparisons["zoo_workers"]["speedup"] >= 2.0
    # Tracing overhead: the ratio is traced/untraced on the cold engine
    # scenario (target < 1.05; the measured number lives in the JSON).
    # The floor sits higher so two-repeat medians on a loaded box do
    # not flake on timer noise.
    assert comparisons["obs_trace_overhead"]["speedup"] <= 1.15


def train_smoke() -> None:
    """CI smoke: train_step reference-vs-vectorized equivalence at smoke scale.

    Runs the :func:`_train_step_stage` workload at the ``smoke``
    fidelity preset — the bit-identity assertion is the point; the
    timings are printed for information only (no JSON is written and
    no speedup is asserted, so a noisy CI box cannot flake).
    """
    from repro.config import fidelity as fidelity_preset

    bench = Benchmark(warmup=0, repeats=2)
    report = PerfReport("train_step smoke (reference vs vectorized)")
    baseline, optimized = _train_step_stage(
        bench, report, fidelity_preset("smoke")
    )
    report.add_comparison("train_step", baseline, optimized)
    print(report.render())
    print("train_step smoke: trained weights bit-identical")


def obs_smoke() -> None:
    """Standalone tracing-overhead measurement (no JSON, no floors)."""
    bench = Benchmark(warmup=0, repeats=2)
    report = PerfReport("tracing overhead (traced vs untraced engine run)")
    traced, untraced = _obs_stage(bench, report)
    report.add_comparison("obs_trace_overhead", traced, untraced)
    print(report.render())


if __name__ == "__main__":
    if "--train-smoke" in sys.argv:
        train_smoke()
        sys.exit(0)
    if "--obs-smoke" in sys.argv:
        obs_smoke()
        sys.exit(0)
    perf_report = build_report()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    write_hotpaths_json(
        perf_report, os.path.join(RESULTS_DIR, JSON_NAME), family=None
    )
    print(perf_report.render())
