"""Fig. 13: cross-environment BER for 2x2 and 3x3 at K = 1/8.

Protocol X/Y: train in X, test on Y's held-out data.  Expected paper
shapes: cross-environment BER stays within the same order as the
single-environment BER, and E2-trained models (richer propagation)
transfer to E1 better than the reverse.

The paper's grid covers 20/40/80 MHz; the default bench runs 20 and
40 MHz (80 MHz at transfer fidelity triples the runtime — set
REPRO_BENCH_FIG13_BW="20,40,80" to include it).

The grid executes through ``repro.runtime`` (scenario preset ``fig13``):
completed points are reused from the content-addressed cache, and
``REPRO_RUNTIME_WORKERS=N`` parallelizes the model trainings.  A
deterministic JSON artifact lands next to the rendered table.
"""

import os

from repro.analysis.report import ExperimentReport
from repro.runtime import ExperimentEngine, get_scenario

from benchmarks.conftest import RESULTS_DIR, record_report, runtime_cache

JSON_NAME = "fig13_cross_environment.json"


def compute_report() -> ExperimentReport:
    bandwidths = tuple(
        int(b)
        for b in os.environ.get("REPRO_BENCH_FIG13_BW", "20,40").split(",")
    )
    scenario = get_scenario("fig13", bandwidths=bandwidths)
    engine = ExperimentEngine(cache=runtime_cache())
    run = engine.run(scenario)
    run.write_json(os.path.join(RESULTS_DIR, JSON_NAME))

    report = ExperimentReport(scenario.title)
    for entry in run.points:
        report.add(entry["label"], "BER", entry["result"]["ber"])
    return report


def test_fig13_cross_environment(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig13_cross_environment", report.render(precision=4))

    ber = {r.setting: r.measured for r in report.records}
    prefixes = sorted(
        {s.rsplit(" ", 1)[0] for s in ber if s.endswith(("E1/E1", "E2/E2"))}
    )
    for prefix in prefixes:
        # Cross-environment BER is bounded (not a collapse to random).
        assert ber[f"{prefix} E1/E2"] < 0.40
        assert ber[f"{prefix} E2/E1"] < 0.40
    # Paper's asymmetry, aggregated: E2-trained models transfer better.
    e2_to_e1 = sum(v for k, v in ber.items() if k.endswith("E2/E1"))
    e1_to_e2 = sum(v for k, v in ber.items() if k.endswith("E1/E2"))
    assert e2_to_e1 <= e1_to_e2 * 1.25
