"""Fig. 13: cross-environment BER for 2x2 and 3x3 at K = 1/8.

Protocol X/Y: train in X, test on Y's held-out data.  Expected paper
shapes: cross-environment BER stays within the same order as the
single-environment BER, and E2-trained models (richer propagation)
transfer to E1 better than the reverse.

The paper's grid covers 20/40/80 MHz; the default bench runs 20 and
40 MHz (80 MHz at transfer fidelity triples the runtime — set
REPRO_BENCH_FIG13_BW="20,40,80" to include it).
"""

import os

from repro.analysis.report import ExperimentReport
from repro.baselines import Dot11Feedback
from repro.config import Fidelity
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.core.training import train_splitbeam
from repro.datasets import build_dataset, dataset_spec
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

COMPRESSION = 1 / 8
LINK = LinkConfig(snr_db=20.0)
DATASET_IDS = {
    ("2x2", "E1", 20): "D1", ("3x3", "E1", 20): "D2",
    ("2x2", "E2", 20): "D3", ("3x3", "E2", 20): "D4",
    ("2x2", "E1", 40): "D5", ("3x3", "E1", 40): "D6",
    ("2x2", "E2", 40): "D7", ("3x3", "E2", 40): "D8",
    ("2x2", "E1", 80): "D9", ("3x3", "E1", 80): "D10",
    ("2x2", "E2", 80): "D11", ("3x3", "E2", 80): "D12",
}

FIG13_FIDELITY = Fidelity(
    name="fig13",
    n_samples=2000,
    n_sessions=8,
    epochs=50,
    ber_samples=50,
    ofdm_symbols=1,
    reset_interval=8,
)


def compute_report() -> ExperimentReport:
    bandwidths = tuple(
        int(b)
        for b in os.environ.get("REPRO_BENCH_FIG13_BW", "20,40").split(",")
    )
    fidelity = FIG13_FIDELITY
    report = ExperimentReport(
        "Fig. 13: cross-environment BER, K = 1/8 "
        "(X/Y = trained in X, tested in Y)"
    )
    for config in ("2x2", "3x3"):
        for bandwidth in bandwidths:
            datasets = {
                env: build_dataset(
                    dataset_spec(DATASET_IDS[(config, env, bandwidth)]),
                    fidelity=fidelity,
                    seed=7 if env == "E1" else 8,
                )
                for env in ("E1", "E2")
            }
            models = {
                env: SplitBeamFeedback(
                    train_splitbeam(
                        datasets[env],
                        compression=COMPRESSION,
                        fidelity=fidelity,
                        seed=0,
                    )
                )
                for env in ("E1", "E2")
            }
            for train_env, test_env in (
                ("E1", "E1"), ("E1", "E2"), ("E2", "E2"), ("E2", "E1"),
            ):
                test_ds = datasets[test_env]
                evaluation = evaluate_scheme(
                    models[train_env],
                    datasets[train_env],
                    indices=test_ds.splits.test[: fidelity.ber_samples],
                    link_config=LINK,
                    eval_dataset=test_ds if test_env != train_env else None,
                )
                report.add(
                    f"{config} {bandwidth} MHz {train_env}/{test_env}",
                    "BER",
                    evaluation.ber,
                )
            dot11 = evaluate_scheme(
                Dot11Feedback(),
                datasets["E1"],
                indices=datasets["E1"].splits.test[: fidelity.ber_samples],
                link_config=LINK,
            )
            report.add(
                f"{config} {bandwidth} MHz 802.11 (E1)", "BER", dot11.ber
            )
    return report


def test_fig13_cross_environment(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig13_cross_environment", report.render(precision=4))

    ber = {r.setting: r.measured for r in report.records}
    prefixes = sorted(
        {s.rsplit(" ", 1)[0] for s in ber if s.endswith(("E1/E1", "E2/E2"))}
    )
    for prefix in prefixes:
        # Cross-environment BER is bounded (not a collapse to random).
        assert ber[f"{prefix} E1/E2"] < 0.40
        assert ber[f"{prefix} E2/E1"] < 0.40
    # Paper's asymmetry, aggregated: E2-trained models transfer better.
    e2_to_e1 = sum(v for k, v in ber.items() if k.endswith("E2/E1"))
    e1_to_e2 = sum(v for k, v in ber.items() if k.endswith("E1/E2"))
    assert e2_to_e1 <= e1_to_e2 * 1.25
