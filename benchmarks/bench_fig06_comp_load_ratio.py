"""Fig. 6: SplitBeam/802.11 computational-load ratio.

Regenerates the two bar groups of Fig. 6 — 4x4 and 8x8 MU-MIMO with
Nss,i = 1 and K in {1/32, 1/16, 1/8, 1/4} over 20/40/80 MHz — from the
analytical cost models (Sec. IV-E1), and checks the paper's headline
claims: 75%/87% reduction at 80 MHz with K = 1/8 and a ~73% average
improvement.
"""

from repro.analysis.report import ExperimentReport
from repro.core.costs import comp_load_ratio

from benchmarks.conftest import record_report

COMPRESSIONS = (1 / 32, 1 / 16, 1 / 8, 1 / 4)
BANDWIDTHS = (20, 40, 80)
#: Anchor points quoted in Sec. IV-E1 (ratio = 1 - reduction).
PAPER_ANCHORS = {(4, 80, 1 / 8): 0.25, (8, 80, 1 / 8): 0.13}


def compute_report() -> ExperimentReport:
    report = ExperimentReport("Fig. 6: comp. load ratio SplitBeam/802.11 (%)")
    for mimo in (4, 8):
        for bandwidth in BANDWIDTHS:
            for compression in COMPRESSIONS:
                ratio = comp_load_ratio(compression, mimo, mimo, bandwidth)
                paper = PAPER_ANCHORS.get((mimo, bandwidth, compression))
                report.add(
                    f"{mimo}x{mimo} {bandwidth} MHz K=1/{round(1 / compression)}",
                    "ratio %",
                    100 * ratio,
                    paper_value=100 * paper if paper is not None else None,
                )
    ratios = [r.measured for r in report.records]
    report.add(
        "average over grid",
        "ratio %",
        sum(ratios) / len(ratios),
        paper_value=27.0,
        note="paper: 'on average improves computation by 73%'",
    )
    return report


def test_fig06_comp_load_ratio(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("fig06_comp_load_ratio", report.render(precision=3))

    by_setting = {r.setting: r.measured for r in report.records}
    # Headline anchors within a couple of points of the paper.
    assert abs(by_setting["4x4 80 MHz K=1/8"] - 25.0) < 2.0
    assert by_setting["8x8 80 MHz K=1/8"] < 15.0
    # Ratio scales linearly with K and improves with array size.
    assert by_setting["4x4 80 MHz K=1/4"] > by_setting["4x4 80 MHz K=1/8"]
    for bandwidth in BANDWIDTHS:
        for compression in COMPRESSIONS:
            key = f"K=1/{round(1 / compression)}"
            assert (
                by_setting[f"8x8 {bandwidth} MHz {key}"]
                < by_setting[f"4x4 {bandwidth} MHz {key}"]
            )
