"""Table I: the dataset catalog and generation pipeline.

Verifies the catalog layout matches Table I and benchmarks dataset
generation itself (channel synthesis + preprocessing + SVD targets) on
a representative entry.
"""

from repro.analysis.report import ExperimentReport
from repro.config import SMOKE
from repro.datasets import CATALOG, build_dataset, dataset_spec

from benchmarks.conftest import record_report


def test_table01_dataset_catalog(benchmark):
    def build_representative():
        # 3x3 at 40 MHz in E2 exercises drops, shadowing and alignment.
        return build_dataset(dataset_spec("D8"), fidelity=SMOKE, seed=3)

    dataset = benchmark(build_representative)

    report = ExperimentReport("Table I: dataset catalog")
    for dataset_id in sorted(CATALOG, key=lambda d: int(d[1:])):
        spec = CATALOG[dataset_id]
        report.add(
            f"{dataset_id} ({spec.env_name})",
            f"{spec.config_label} @ {spec.bandwidth_mhz} MHz",
            spec.n_samples,
            note="paper collects 10k samples per entry",
        )
    record_report("table01_dataset_catalog", report.render())

    # Table I layout checks.
    assert len(CATALOG) == 15
    real = [s for s in CATALOG.values() if s.env_name in ("E1", "E2")]
    synthetic = [s for s in CATALOG.values() if s.env_name == "MATLAB"]
    assert len(real) == 12 and len(synthetic) == 3
    assert {s.bandwidth_mhz for s in synthetic} == {160}
    assert {s.n_users for s in synthetic} == {2, 3, 4}
    # The built dataset is internally consistent.
    assert dataset.csi.shape[1:] == (3, 114, 1, 3)
    assert dataset.bf.shape[1:] == (3, 114, 3)
