"""Table III: FPGA end-to-end latency vs MIMO dimensions and bandwidth.

Regenerates all twelve cells from the calibrated HLS latency model and
asserts they land within 3% of the paper's reported milliseconds —
plus the paper's two scaling observations (4x per bandwidth doubling,
worst case below the 10 ms sounding budget).
"""

from repro.analysis.report import ExperimentReport
from repro.fpga import table3_latency_s

from benchmarks.conftest import record_report

PAPER_TABLE3_MS = {
    (2, 20): 0.0202, (2, 40): 0.0824, (2, 80): 0.3686, (2, 160): 1.477,
    (3, 20): 0.0459, (3, 40): 0.1867, (3, 80): 0.8337, (3, 160): 3.314,
    (4, 20): 0.0808, (4, 40): 0.3298, (4, 80): 1.4782, (4, 160): 5.883,
}


def compute_report() -> ExperimentReport:
    report = ExperimentReport("Table III: SplitBeam latency (ms), K = 1/4")
    for (mimo, bandwidth), paper_ms in sorted(PAPER_TABLE3_MS.items()):
        report.add(
            f"{mimo}x{mimo} @ {bandwidth} MHz",
            "latency ms",
            table3_latency_s(mimo, bandwidth) * 1e3,
            paper_value=paper_ms,
        )
    return report


def test_table03_fpga_latency(benchmark):
    report = benchmark(compute_report)
    record_report("table03_fpga_latency", report.render())

    for record in report.records:
        assert record.ratio is not None
        assert abs(record.ratio - 1.0) < 0.03, record.setting
    assert table3_latency_s(4, 160) < 10e-3
