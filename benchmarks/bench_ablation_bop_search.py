"""Ablation: the Sec. IV-C BOP heuristic vs exhaustive search.

The paper claims its heuristic "simplifies the search while maintaining
acceptable performance" (Sec. IV-C / Table II discussion).  This bench
drives both strategies with a *synthetic* BER response (monotone in the
bottleneck size, with diminishing returns — the Fig. 9 shape) so the
comparison isolates the search logic from training noise:

- the heuristic stops at the first feasible ladder rung;
- exhaustive search evaluates every (compression, depth) pair and picks
  the minimum-objective feasible one.

Expected shape: the heuristic needs a fraction of the trials and its
selected objective stays within a small factor of the exhaustive
optimum; a mu sweep shows the objective reweighting moves the
exhaustive choice while the heuristic (which ignores the objective
beyond feasibility) stays put.
"""

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.config import SMOKE
from repro.core.bop import BopConstraints, solve_bop
from repro.core.costs import StaCostModel, splitbeam_feedback_bits
from repro.datasets import build_dataset, dataset_spec

from benchmarks.conftest import record_report

DATASET_ID = "D1"


def synthetic_evaluator(input_dim: int):
    """BER model: falls with bottleneck size and depth (Fig. 9 shape)."""

    def evaluate(widths, compression):
        bottleneck = widths[1]
        depth_bonus = 0.8 ** (len(widths) - 3)
        ber = 0.18 * np.exp(-14.0 * bottleneck / input_dim) * depth_bonus + 0.004
        return float(ber), None

    return evaluate


def exhaustive_search(dataset, constraints, cost_model, evaluator):
    """Evaluate every (compression, extra_layers) pair; pick the best."""
    input_dim, output_dim = dataset.input_dim, dataset.output_dim
    best = None
    trials = 0
    for extra_layers in range(3):
        for compression in (1 / 32, 1 / 16, 1 / 8, 1 / 4):
            bottleneck = max(1, round(compression * input_dim))
            widths = (
                [input_dim, bottleneck]
                + [bottleneck] * extra_layers
                + [output_dim]
            )
            ber, _ = evaluator(widths, compression)
            trials += 1
            head = 2.0 * widths[0] * widths[1]
            tail = 2.0 * sum(
                widths[i] * widths[i + 1] for i in range(1, len(widths) - 1)
            )
            bits = splitbeam_feedback_bits(bottleneck)
            delay = cost_model.end_to_end_delay_s(head, tail, bits)
            if ber > constraints.max_ber or delay >= constraints.max_delay_s:
                continue
            objective = cost_model.bop_objective(
                head, tail, bits, mu=constraints.mu
            )
            if best is None or objective < best[0]:
                best = (objective, widths, ber)
    return best, trials


def compute_report() -> ExperimentReport:
    report = ExperimentReport("Ablation: BOP heuristic vs exhaustive search")
    dataset = build_dataset(dataset_spec(DATASET_ID), fidelity=SMOKE, seed=7)
    evaluator = synthetic_evaluator(dataset.input_dim)
    cost_model = StaCostModel(feedback_bandwidth_mhz=20)

    for mu in (0.2, 0.5, 0.8):
        constraints = BopConstraints(max_ber=0.02, max_delay_s=10e-3, mu=mu)
        heuristic = solve_bop(
            dataset, constraints, evaluator=evaluator, cost_model=cost_model
        )
        best, exhaustive_trials = exhaustive_search(
            dataset, constraints, cost_model, evaluator
        )
        assert best is not None
        report.add(f"mu={mu} heuristic", "trials", heuristic.n_trials)
        report.add(
            f"mu={mu} heuristic", "objective", heuristic.selected.objective
        )
        report.add(f"mu={mu} heuristic", "BER", heuristic.selected.ber)
        report.add(f"mu={mu} exhaustive", "trials", exhaustive_trials)
        report.add(f"mu={mu} exhaustive", "objective", best[0])
        report.add(f"mu={mu} exhaustive", "BER", best[2])
    return report


def test_ablation_bop_search(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    record_report("ablation_bop_search", report.render(precision=4))

    values = {(r.setting, r.metric): r.measured for r in report.records}
    for mu in (0.2, 0.5, 0.8):
        h_trials = values[(f"mu={mu} heuristic", "trials")]
        e_trials = values[(f"mu={mu} exhaustive", "trials")]
        h_obj = values[(f"mu={mu} heuristic", "objective")]
        e_obj = values[(f"mu={mu} exhaustive", "objective")]
        # The heuristic stops early; exhaustive tries the full grid.
        assert h_trials < e_trials
        # Feasible-first is never better than the optimum, but stays
        # within a small factor of it ("acceptable performance").
        assert e_obj <= h_obj + 1e-12
        assert h_obj <= 3.0 * e_obj
        # Both respect the BER ceiling.
        assert values[(f"mu={mu} heuristic", "BER")] <= 0.02
        assert values[(f"mu={mu} exhaustive", "BER")] <= 0.02
