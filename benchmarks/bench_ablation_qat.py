"""Ablation: quantization-aware training for low-bit bottleneck feedback.

The quantization-bits ablation (``bench_ablations.py``) shows the
deployment quantizer is free at 16/8 bits but collapses the BER at 4
bits (0.046 vs the float 0.018) — the tail never saw quantized inputs.
QAT injects quantizer-matched noise at the bottleneck during training
(straight-through gradients), teaching the tail to decode coarse codes.

Expected shape: at 4-bit deployment, the QAT model recovers most of the
gap to the float baseline, while costing nothing at training time and
leaving the head/feedback sizes identical.  A working 4-bit bottleneck
quarters SplitBeam's airtime again relative to the paper's 16-bit
accounting.
"""

from repro.analysis.report import ExperimentReport
from repro.core.split import BottleneckQuantizer
from repro.core.training import ber_of_model, train_splitbeam
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

DATASET_ID = "D1"
COMPRESSION = 1 / 8
DEPLOY_BITS = 4
LINK = LinkConfig(snr_db=20.0)


def compute_report(caches, fidelity) -> ExperimentReport:
    report = ExperimentReport(
        "Ablation: quantization-aware training (D1, K = 1/8, 4-bit codes)"
    )
    dataset = caches.dataset(DATASET_ID, fidelity)
    indices = dataset.splits.test[: fidelity.ber_samples]

    baseline = caches.trained(DATASET_ID, fidelity, COMPRESSION)
    qat = train_splitbeam(
        dataset,
        compression=COMPRESSION,
        fidelity=fidelity,
        quantizer_bits=DEPLOY_BITS,
        qat_bits=DEPLOY_BITS,
        seed=0,
    )

    for label, trained in [("baseline", baseline), ("QAT", qat)]:
        float_ber = ber_of_model(
            trained.model, dataset, indices, link_config=LINK, quantizer=None
        ).ber
        coarse_ber = ber_of_model(
            trained.model,
            dataset,
            indices,
            link_config=LINK,
            quantizer=BottleneckQuantizer(DEPLOY_BITS),
        ).ber
        report.add(f"{label} float feedback", "BER", float_ber)
        report.add(f"{label} {DEPLOY_BITS}-bit feedback", "BER", coarse_ber)
    return report


def test_ablation_qat(benchmark, caches, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(caches, bench_fidelity), rounds=1, iterations=1
    )
    record_report("ablation_qat", report.render(precision=4))

    bers = {r.setting: r.measured for r in report.records}
    base_float = bers["baseline float feedback"]
    base_coarse = bers["baseline 4-bit feedback"]
    qat_coarse = bers["QAT 4-bit feedback"]

    # The problem exists: 4-bit codes hurt the noise-free-trained model.
    assert base_coarse > base_float
    # QAT closes most of that gap at deployment bit width ...
    assert qat_coarse < base_coarse
    gap_recovered = (base_coarse - qat_coarse) / max(
        base_coarse - base_float, 1e-9
    )
    assert gap_recovered > 0.3
    # ... and the QAT model remains usable, not merely less bad.
    assert qat_coarse < 2.5 * base_float
