"""Shared infrastructure for the benchmark suite.

Every bench regenerates one of the paper's tables or figures and renders
it as an ASCII table.  Rendered reports are:

- written to ``benchmarks/results/<name>.txt``;
- echoed in the pytest terminal summary (so ``pytest benchmarks/
  --benchmark-only`` shows the reproduced series without ``-s``).

Fidelity: benches default to the ``fast`` preset (see
``repro.config``); set ``REPRO_BENCH_FIDELITY=paper`` for a full-scale
run (hours).  Datasets and trained models are cached per session so
benches that share a configuration do not retrain.
"""

from __future__ import annotations

import os

import pytest

from repro.config import fidelity as fidelity_preset
from repro.datasets import build_dataset, dataset_spec
from repro.core.training import train_splitbeam
from repro.runtime import (
    CheckpointStore,
    ResultCache,
    default_cache_root,
    default_checkpoint_root,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def runtime_cache() -> ResultCache:
    """The engine benches' result cache ($REPRO_RUNTIME_CACHE overrides)."""
    return ResultCache(
        default_cache_root(os.path.join(RESULTS_DIR, "runtime_cache"))
    )


def checkpoint_store() -> CheckpointStore:
    """The zoo benches' weight store ($REPRO_RUNTIME_CHECKPOINTS overrides)."""
    return CheckpointStore(
        default_checkpoint_root(os.path.join(RESULTS_DIR, "checkpoint_store"))
    )

_REPORTS: list[str] = []


def pytest_addoption(parser):
    parser.addoption(
        "--perf",
        action="store_true",
        default=False,
        help="run the perf-marked hot-path benchmarks (skipped by default)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: hot-path wall-time benchmark; runs only with --perf so the "
        "tier-1 suite stays fast",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--perf"):
        return
    skip_perf = pytest.mark.skip(reason="perf benchmark; pass --perf to run")
    for item in items:
        if item.get_closest_marker("perf") is not None:
            item.add_marker(skip_perf)


#: Stage/comparison name-prefix families co-owning ``BENCH_hotpaths.json``.
#: Each named family maps to ``(stage_prefixes, comparison_prefixes)``;
#: the hot-path suite itself (``family=None``) owns the envelope plus
#: every stage/comparison no named family claims.
HOTPATH_FAMILIES = {
    "campaign": (("campaign/",), ("campaign_",)),
    "store": (("store/",), ("store_",)),
}


def write_hotpaths_json(report, path: str, family: "str | None") -> None:
    """Write one bench's stages into the co-owned ``BENCH_hotpaths.json``.

    ``benchmarks/bench_perf_hotpaths.py`` (``family=None``),
    ``benchmarks/bench_network_campaign.py`` (``family="campaign"``),
    and ``benchmarks/bench_store.py`` (``family="store"``) share the
    file: each writer replaces only the stage/comparison family it owns
    (see :data:`HOTPATH_FAMILIES`) and preserves everyone else's, so
    the benches can run independently, in any order, without erasing
    each other's results.  The hot-path suite owns the envelope
    (title/context).
    """
    import json

    if family is not None and family not in HOTPATH_FAMILIES:
        raise ValueError(f"unknown hotpath family {family!r}")

    def family_of_stage(stage: dict) -> "str | None":
        for name, (stage_prefixes, _) in HOTPATH_FAMILIES.items():
            if stage["name"].startswith(stage_prefixes):
                return name
        return None

    def family_of_comparison(comparison: dict) -> "str | None":
        for name, (_, comparison_prefixes) in HOTPATH_FAMILIES.items():
            if comparison["stage"].startswith(comparison_prefixes):
                return name
        return None

    fresh = report.to_dict()
    try:
        with open(path) as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        existing = None
    if existing is not None:
        preserved_stages = [
            s for s in existing.get("stages", []) if family_of_stage(s) != family
        ]
        preserved_comparisons = [
            c
            for c in existing.get("comparisons", [])
            if family_of_comparison(c) != family
        ]
        if family is not None:
            # Keep the hot-path suite's envelope and stage ordering.
            merged = dict(existing)
            merged["stages"] = preserved_stages + fresh["stages"]
            merged["comparisons"] = preserved_comparisons + fresh["comparisons"]
            fresh = merged
        else:
            fresh["stages"] = fresh["stages"] + preserved_stages
            fresh["comparisons"] = fresh["comparisons"] + preserved_comparisons
    with open(path, "w") as handle:
        json.dump(fresh, handle, indent=2)
        handle.write("\n")


def record_report(name: str, text: str) -> None:
    """Register a rendered table for the terminal summary and save it."""
    _REPORTS.append(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper tables/figures")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def bench_fidelity():
    """The fidelity preset used by all benches (env-overridable)."""
    return fidelity_preset(os.environ.get("REPRO_BENCH_FIDELITY", "fast"))


@pytest.fixture(scope="session")
def transfer_fidelity():
    """Preset for cross-environment benches (env-overridable)."""
    name = os.environ.get("REPRO_BENCH_TRANSFER_FIDELITY", "transfer")
    return fidelity_preset(name)


class _Caches:
    """Session-wide dataset/model caches keyed by configuration."""

    def __init__(self) -> None:
        self.datasets: dict = {}
        self.models: dict = {}

    def dataset(self, dataset_id: str, fidelity, seed: int = 7):
        key = (dataset_id, fidelity.name, seed)
        if key not in self.datasets:
            self.datasets[key] = build_dataset(
                dataset_spec(dataset_id), fidelity=fidelity, seed=seed
            )
        return self.datasets[key]

    def trained(self, dataset_id: str, fidelity, compression: float, seed: int = 0):
        key = (dataset_id, fidelity.name, compression, seed)
        if key not in self.models:
            self.models[key] = train_splitbeam(
                self.dataset(dataset_id, fidelity),
                compression=compression,
                fidelity=fidelity,
                seed=seed,
            )
        return self.models[key]


@pytest.fixture(scope="session")
def caches():
    return _Caches()
