"""Fig. 11: BER as a function of STA computational load.

The paper plots (FLOPs, BER) points for SplitBeam at several
compression levels against the single 802.11 operating point, for 2x2
and 3x3 at 40 and 80 MHz.  Expected shape: the SplitBeam points sit at
a small fraction of the 802.11 FLOPs while approaching its BER as K
grows (the paper quotes ~70% load reduction at equal BER ~ 0.02, and
larger gains for 3x3 than 2x2).

Documented deviation: SplitBeam's head cost is quadratic in the
subcarrier count (O(K * (Nt*Nr*S)^2)) while the 802.11 SVD+GR cost is
linear in S, and our testbed geometry has Nr = 1 per STA (which makes
the 802.11 side cheap).  At 80 MHz the K = 1/4 head therefore *exceeds*
the 802.11 closed-form FLOPs — the same bandwidth trend the paper's own
Fig. 6 shows (the ratio grows toward 50% at 80 MHz already for Nr = Nt).
The FLOP-reduction assertion is therefore enforced for K <= 1/8, and
K = 1/4 is only required to stay within 2x of the 802.11 point; the
measured values are recorded for EXPERIMENTS.md either way.
"""

from repro.analysis.report import ExperimentReport
from repro.baselines import Dot11Feedback
from repro.core.pipeline import SplitBeamFeedback, evaluate_scheme
from repro.phy.link import LinkConfig

from benchmarks.conftest import record_report

COMPRESSIONS = (1 / 32, 1 / 8, 1 / 4)
GRID = {
    ("2x2", 40): "D5",
    ("2x2", 80): "D9",
    ("3x3", 40): "D6",
    ("3x3", 80): "D10",
}
LINK = LinkConfig(snr_db=20.0)


def compute_report(caches, fidelity) -> ExperimentReport:
    report = ExperimentReport("Fig. 11: BER vs STA computational load (E1)")
    for (config, bandwidth), dataset_id in GRID.items():
        dataset = caches.dataset(dataset_id, fidelity)
        indices = dataset.splits.test[: fidelity.ber_samples]
        dot11 = evaluate_scheme(Dot11Feedback(), dataset, indices, LINK)
        report.add(
            f"{config} {bandwidth} MHz 802.11", "FLOPs", dot11.sta_flops
        )
        report.add(f"{config} {bandwidth} MHz 802.11", "BER", dot11.ber)
        for compression in COMPRESSIONS:
            trained = caches.trained(dataset_id, fidelity, compression)
            evaluation = evaluate_scheme(
                SplitBeamFeedback(trained), dataset, indices, LINK
            )
            label = f"{config} {bandwidth} MHz SB 1/{round(1 / compression)}"
            report.add(label, "FLOPs", evaluation.sta_flops)
            report.add(label, "BER", evaluation.ber)
    return report


def test_fig11_ber_vs_flops(benchmark, caches, bench_fidelity):
    report = benchmark.pedantic(
        compute_report, args=(caches, bench_fidelity), rounds=1, iterations=1
    )
    record_report("fig11_ber_vs_flops", report.render(precision=4))

    flops = {
        r.setting: r.measured for r in report.records if r.metric == "FLOPs"
    }
    bers = {r.setting: r.measured for r in report.records if r.metric == "BER"}
    for (config, bandwidth), _ in GRID.items():
        prefix = f"{config} {bandwidth} MHz"
        dot11_flops = flops[f"{prefix} 802.11"]
        # Compressed SplitBeam points cost fewer STA FLOPs than 802.11;
        # K = 1/4 may exceed it at 80 MHz (see module docstring) but must
        # stay within 2x.
        for compression in COMPRESSIONS:
            label = f"{prefix} SB 1/{round(1 / compression)}"
            if compression <= 1 / 8:
                assert flops[label] < dot11_flops
            else:
                assert flops[label] < 2.0 * dot11_flops
        # FLOPs grow with K while BER shrinks (the Fig. 11 frontier).
        assert flops[f"{prefix} SB 1/4"] > flops[f"{prefix} SB 1/32"]
        assert bers[f"{prefix} SB 1/4"] <= bers[f"{prefix} SB 1/32"] + 0.01
