"""Tests for the TGn/TGac channel substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.channels.doppler import ShadowingProcess, jakes_ar1_coefficient
from repro.channels.environment import E1, E2, SYNTHETIC, environment
from repro.channels.sampler import CsiSampler
from repro.channels.spatial import correlation_sqrt, ula_correlation
from repro.channels.tgac import (
    MODEL_A,
    MODEL_B,
    MODEL_D,
    TgacChannel,
    delay_profile,
)
from repro.phy.ofdm import band_plan


class TestSpatial:
    def test_unit_diagonal_and_hermitian(self):
        corr = ula_correlation(4, 45.0, 20.0)
        assert np.allclose(np.diag(corr).real, 1.0)
        assert np.allclose(corr, corr.conj().T)

    def test_positive_semidefinite(self):
        corr = ula_correlation(6, 120.0, 15.0)
        eigenvalues = np.linalg.eigvalsh(corr)
        assert eigenvalues.min() > -1e-10

    def test_narrow_spread_higher_correlation(self):
        narrow = ula_correlation(2, 30.0, 5.0)
        wide = ula_correlation(2, 30.0, 60.0)
        assert abs(narrow[0, 1]) > abs(wide[0, 1])

    def test_single_antenna(self):
        assert ula_correlation(1, 0.0, 30.0).shape == (1, 1)

    def test_sqrt_squares_back(self):
        corr = ula_correlation(4, 10.0, 25.0)
        root = correlation_sqrt(corr)
        assert np.allclose(root @ root.conj().T, corr, atol=1e-10)

    def test_invalid_spread(self):
        with pytest.raises(ConfigurationError):
            ula_correlation(2, 0.0, 0.0)


class TestDoppler:
    def test_zero_doppler_is_static(self):
        assert jakes_ar1_coefficient(0.0, 1e-3) == pytest.approx(1.0, abs=1e-9)

    def test_monotone_decrease_with_doppler(self):
        rhos = [jakes_ar1_coefficient(f, 1e-3) for f in (0.5, 5.0, 50.0)]
        assert rhos[0] > rhos[1] > rhos[2]

    def test_shadowing_disabled(self):
        process = ShadowingProcess(0.0, 1.0, 1e-3, rng=0)
        assert all(process.step() == 1.0 for _ in range(5))

    def test_shadowing_statistics(self):
        process = ShadowingProcess(3.0, 0.05, 1e-3, rng=0)
        values_db = [20 * np.log10(process.step()) for _ in range(20_000)]
        assert np.std(values_db) == pytest.approx(3.0, rel=0.25)
        assert np.mean(values_db) == pytest.approx(0.0, abs=0.5)

    def test_shadowing_temporal_correlation(self):
        process = ShadowingProcess(3.0, 1.0, 1e-3, rng=0)
        values = np.array([process.step() for _ in range(2000)])
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert lag1 > 0.9


class TestDelayProfiles:
    def test_model_b_matches_paper(self):
        """The paper's synthetic data: 'Model-B ... 9 channel taps and 2
        channel clusters'."""
        assert MODEL_B.n_taps == 9
        assert MODEL_B.n_clusters == 2

    def test_lookup(self):
        assert delay_profile("b") is MODEL_B
        assert delay_profile("D") is MODEL_D
        with pytest.raises(ConfigurationError):
            delay_profile("Z")

    def test_cluster_tap_ranges_valid(self):
        for name in "ABCDEF":
            profile = delay_profile(name)
            for cluster in profile.clusters:
                assert cluster.covered_taps().stop <= profile.n_taps

    def test_delay_spreads_ordered(self):
        spreads = [delay_profile(n).rms_delay_spread_ns for n in "ABCDEF"]
        assert spreads == sorted(spreads)


class TestTgacChannel:
    def _channel(self, **kwargs):
        defaults = dict(
            profile=MODEL_B,
            n_rx=1,
            n_tx=2,
            band=band_plan(20),
            doppler_hz=2.0,
            rng=0,
        )
        defaults.update(kwargs)
        return TgacChannel(**defaults)

    def test_shapes(self):
        channel = self._channel()
        h = channel.step()
        assert h.shape == (56, 1, 2)
        batch = channel.sample(5)
        assert batch.shape == (5, 56, 1, 2)

    def test_unit_average_power(self):
        channel = self._channel(n_rx=2, n_tx=2)
        samples = []
        for _ in range(60):
            channel.reset()
            samples.append(channel.current())
        power = np.mean(np.abs(np.stack(samples)) ** 2)
        assert power == pytest.approx(1.0, rel=0.15)

    def test_temporal_correlation_follows_doppler(self):
        slow = self._channel(doppler_hz=0.5, rng=1)
        fast = self._channel(doppler_hz=100.0, rng=1)

        def lag1(channel):
            series = channel.sample(300)[:, 0, 0, 0]
            a, b = series[:-1], series[1:]
            return np.abs(np.mean(a.conj() * b) / np.mean(np.abs(a) ** 2))

        assert lag1(slow) > lag1(fast)

    def test_frequency_correlation_tracks_delay_spread(self):
        """Model B (15 ns) must be smoother in frequency than Model D."""

        def freq_corr(profile):
            channel = TgacChannel(
                profile, n_rx=1, n_tx=1, band=band_plan(80), rng=2
            )
            samples = []
            for _ in range(40):
                channel.reset()
                samples.append(channel.current()[:, 0, 0])
            h = np.stack(samples)
            lag = 10  # tones
            num = np.mean(h[:, :-lag].conj() * h[:, lag:])
            return np.abs(num) / np.mean(np.abs(h) ** 2)

        assert freq_corr(MODEL_B) > freq_corr(MODEL_D)

    def test_flat_profile_is_frequency_flat(self):
        channel = TgacChannel(MODEL_A, n_rx=1, n_tx=1, band=band_plan(20), rng=0)
        h = channel.current()[:, 0, 0]
        assert np.max(np.abs(h - h[0])) < 1e-10

    def test_deterministic_with_seed(self):
        a = self._channel(rng=42).sample(3)
        b = self._channel(rng=42).sample(3)
        assert np.array_equal(a, b)

    def test_reset_changes_realization(self):
        channel = self._channel()
        first = channel.current().copy()
        channel.reset()
        assert not np.allclose(channel.current(), first)

    def test_rician_los_increases_mean(self):
        nlos = self._channel(rng=3)
        los = self._channel(rician_k_db=10.0, rng=3)
        # Strong K-factor concentrates power in the deterministic part:
        # realizations vary less.
        def variation(channel):
            samples = []
            for _ in range(30):
                channel.reset()
                samples.append(channel.current())
            stack = np.stack(samples)
            return np.std(np.abs(stack)) / np.mean(np.abs(stack))

        assert variation(los) < variation(nlos)


class TestEnvironments:
    def test_presets(self):
        assert E1.profile.name == "B"
        assert E2.profile.name == "C"
        assert SYNTHETIC.csi_noise_snr_db is None
        assert environment("e1") is E1
        with pytest.raises(ConfigurationError):
            environment("E9")

    def test_e2_is_richer(self):
        assert E2.doppler_hz > E1.doppler_hz
        assert E2.shadowing_sigma_db > E1.shadowing_sigma_db
        assert E2.profile.rms_delay_spread_ns > E1.profile.rms_delay_spread_ns

    def test_location_offsets_deterministic(self):
        a = E1.location_offsets_deg()
        b = E1.location_offsets_deg()
        assert np.array_equal(a, b)
        assert a.shape == (E1.n_locations,)

    def test_location_offsets_differ_between_rooms(self):
        assert not np.array_equal(
            E1.location_offsets_deg(), E2.location_offsets_deg()
        )


class TestSampler:
    def _sampler(self, env=E1, **kwargs):
        defaults = dict(
            env=env, n_users=2, n_rx=1, n_tx=2, band=band_plan(20), rng=5
        )
        defaults.update(kwargs)
        return CsiSampler(**defaults)

    def test_session_shapes_and_sequences(self):
        batches = self._sampler().collect_session(50)
        assert len(batches) == 2
        for batch in batches:
            assert batch.csi.shape[1:] == (56, 1, 2)
            assert np.all(np.diff(batch.sequence) > 0)
            assert batch.n_samples <= 50

    def test_drops_occur_at_configured_rate(self):
        from dataclasses import replace

        env = replace(E1, packet_drop_rate=0.3)
        batches = self._sampler(env=env).collect_session(400)
        received = np.mean([b.n_samples for b in batches])
        assert 400 * 0.55 < received < 400 * 0.85

    def test_no_noise_when_disabled(self):
        batches = self._sampler(env=SYNTHETIC).collect_session(5)
        assert batches[0].csi.shape[0] == 5  # no drops either

    def test_collect_aligned(self):
        aligned = self._sampler().collect_aligned(40, n_sessions=2)
        assert aligned.shape[1:] == (2, 56, 1, 2)
        assert aligned.shape[0] <= 80

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            self._sampler(n_users=0)
        with pytest.raises(ConfigurationError):
            self._sampler().collect_session(0)
