"""Vectorized channel sampling vs the frozen per-packet reference.

The vectorized sampler consumes the session RNG (spawn, placement,
per-packet drop draws) exactly like the seed loop, so packet-drop
patterns — and therefore the sequence numbers driving multi-user
alignment — are identical per seed.  Channel realizations draw their
innovations in a different (batched) order and are compared
statistically; the shadowing AR(1) recursion matches the stepwise path
to floating-point rounding through ``scipy.signal.lfilter``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.doppler import ShadowingProcess
from repro.channels.environment import E1, E2, SYNTHETIC
from repro.channels.sampler import CsiSampler
from repro.channels.tgac import MODEL_B, TgacChannel
from repro.errors import ConfigurationError
from repro.perf.reference import reference_collect_session
from repro.phy.ofdm import band_plan


def make_sampler(env=E1, seed=5, **kwargs):
    defaults = dict(
        env=env, n_users=2, n_rx=1, n_tx=2, band=band_plan(20), rng=seed
    )
    defaults.update(kwargs)
    return CsiSampler(**defaults)


class TestSamplerEquivalence:
    @pytest.mark.parametrize("env", [E1, E2, SYNTHETIC])
    def test_sequences_match_reference(self, env):
        fast = make_sampler(env=env, seed=11).collect_session(60)
        seed = reference_collect_session(make_sampler(env=env, seed=11), 60)
        for fast_batch, seed_batch in zip(fast, seed):
            assert np.array_equal(fast_batch.sequence, seed_batch.sequence)
            assert fast_batch.csi.shape == seed_batch.csi.shape

    def test_chunking_is_invisible(self):
        small = make_sampler(seed=3).collect_session(40, chunk_size=7)
        large = make_sampler(seed=3).collect_session(40, chunk_size=4096)
        for a, b in zip(small, large):
            assert np.array_equal(a.sequence, b.sequence)
            # Same drop pattern; channel draws are chunk-order dependent,
            # so only the statistics must agree.
            assert a.csi.shape == b.csi.shape

    def test_statistics_match_reference(self):
        fast = make_sampler(env=SYNTHETIC, seed=2).collect_session(200)
        seed = reference_collect_session(
            make_sampler(env=SYNTHETIC, seed=2), 200
        )
        fast_power = np.mean([np.mean(np.abs(b.csi) ** 2) for b in fast])
        seed_power = np.mean([np.mean(np.abs(b.csi) ** 2) for b in seed])
        assert fast_power == pytest.approx(seed_power, rel=0.2)

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            make_sampler().collect_session(10, chunk_size=0)


class TestChannelBlockSampling:
    def _channel(self, **kwargs):
        defaults = dict(
            profile=MODEL_B,
            n_rx=2,
            n_tx=2,
            band=band_plan(20),
            doppler_hz=5.0,
            rng=9,
        )
        defaults.update(kwargs)
        return TgacChannel(**defaults)

    def test_deterministic(self):
        assert np.array_equal(
            self._channel().sample(12), self._channel().sample(12)
        )

    def test_state_advances_between_blocks(self):
        channel = self._channel()
        first = channel.sample(6)
        second = channel.sample(6)
        assert not np.allclose(first[-1], second[0])
        # Consecutive blocks stay temporally correlated (AR(1) carries
        # the state across the block boundary).
        a, b = first[-1].ravel(), second[0].ravel()
        corr = np.abs(np.vdot(a, b)) / (
            np.linalg.norm(a) * np.linalg.norm(b)
        )
        assert corr > 0.5

    def test_unit_average_power(self):
        blocks = [self._channel(rng=k).sample(40) for k in range(4)]
        power = np.mean(np.abs(np.concatenate(blocks)) ** 2)
        assert power == pytest.approx(1.0, rel=0.2)

    def test_rician_block_matches_los_structure(self):
        los = self._channel(rician_k_db=15.0, rng=4).sample(20)
        nlos = self._channel(rng=4).sample(20)
        assert np.std(np.abs(los)) < np.std(np.abs(nlos))


class TestShadowingBlockSampling:
    def test_matches_step_to_rounding(self):
        stepped = ShadowingProcess(3.0, 0.5, 1e-3, rng=1)
        blocked = ShadowingProcess(3.0, 0.5, 1e-3, rng=1)
        a = np.array([stepped.step() for _ in range(100)])
        b = blocked.sample(100)
        # Same draws, same recursion; lfilter only reorders the
        # floating-point accumulation.
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_state_continues_across_blocks(self):
        stepped = ShadowingProcess(2.0, 0.2, 1e-3, rng=3)
        blocked = ShadowingProcess(2.0, 0.2, 1e-3, rng=3)
        a = np.array([stepped.step() for _ in range(30)])
        b = np.concatenate([blocked.sample(10) for _ in range(3)])
        assert np.allclose(a, b, rtol=1e-12)

    def test_disabled_is_ones(self):
        assert np.array_equal(
            ShadowingProcess(0.0, 1.0, 1e-3, rng=0).sample(5), np.ones(5)
        )

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            ShadowingProcess(1.0, 1.0, 1e-3, rng=0).sample(0)
