"""Tests for the task-DAG executor (serial and worker-pool paths)."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.runtime.executor import (
    Task,
    TaskExecutionError,
    resolve_worker_count,
    run_tasks,
)


def square(params):
    return params["x"] ** 2


def whoami(params):
    return {"pid": os.getpid(), "tag": params.get("tag")}


def boom(params):
    raise ValueError("intentional failure")


def add_deps(params):
    return params["base"] + sum(params.get("extra", []))


class TestValidation:
    def test_duplicate_ids_rejected(self):
        tasks = [Task("a", square, {"x": 1}), Task("a", square, {"x": 2})]
        with pytest.raises(ConfigurationError):
            run_tasks(tasks)

    def test_unknown_dep_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tasks([Task("a", square, {"x": 1}, deps=("ghost",))])

    def test_cycle_rejected(self):
        tasks = [
            Task("a", square, {"x": 1}, deps=("b",)),
            Task("b", square, {"x": 2}, deps=("a",)),
        ]
        with pytest.raises(ConfigurationError):
            run_tasks(tasks)

    def test_bad_fn_ref_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tasks([Task("a", "not-a-ref", {"x": 1})])

    def test_worker_count_resolution(self, monkeypatch):
        assert resolve_worker_count(3) == 3
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "5")
        assert resolve_worker_count(None) == 5
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "zebra")
        with pytest.raises(ConfigurationError):
            resolve_worker_count(None)
        with pytest.raises(ConfigurationError):
            resolve_worker_count(0)

    def test_empty_plan(self):
        assert run_tasks([]) == {}


class TestExecution:
    def test_serial_and_pool_agree(self):
        tasks = [Task(f"t{i}", square, {"x": i}) for i in range(8)]
        serial = run_tasks(tasks, n_workers=1)
        pooled = run_tasks(tasks, n_workers=3)
        assert serial == pooled == {f"t{i}": i * i for i in range(8)}

    def test_string_fn_reference(self):
        # The engine's task functions are addressed as "module:name".
        from repro.phy.link import LinkConfig

        tasks = [
            Task(
                "ber",
                "repro.runtime.tasks:link_ber_point",
                {
                    "config": LinkConfig(snr_db=30.0),
                    "channels": _tiny_channels(),
                    "bf": _tiny_bf(),
                },
            )
        ]
        result = run_tasks(tasks)["ber"]
        assert set(result) == {"ber", "bit_errors", "total_bits"}
        assert result["total_bits"] > 0

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_resolve_hooks_run_in_plan_order(self, n_workers):
        observed = []

        def make_resolve(i):
            def resolve(dep_results):
                observed.append((i, dict(dep_results)))
                base = dep_results[f"c{i - 1}"] if i else 0
                return {"base": base, "extra": [i]}

            return resolve

        tasks = [
            Task(
                f"c{i}",
                add_deps,
                deps=(f"c{i - 1}",) if i else (),
                resolve=make_resolve(i),
            )
            for i in range(4)
        ]
        results = run_tasks(tasks, n_workers=n_workers)
        # Chain: 0, 0+1, 1+2, 3+3.
        assert [results[f"c{i}"] for i in range(4)] == [0, 1, 3, 6]
        assert [i for i, _ in observed] == [0, 1, 2, 3]

    def test_shard_affinity(self):
        # Tasks sharing a shard run in one worker process (serially);
        # distinct shards may land anywhere.
        tasks = [
            Task(f"a{i}", whoami, {"tag": "a"}, shard="a") for i in range(3)
        ] + [Task(f"b{i}", whoami, {"tag": "b"}, shard="b") for i in range(3)]
        results = run_tasks(tasks, n_workers=2)
        a_pids = {results[f"a{i}"]["pid"] for i in range(3)}
        b_pids = {results[f"b{i}"]["pid"] for i in range(3)}
        assert len(a_pids) == 1
        assert len(b_pids) == 1
        # And the pool actually ran out-of-process.
        assert os.getpid() not in a_pids | b_pids

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_on_result_fires_as_tasks_complete(self, n_workers):
        seen = []
        tasks = [Task(f"t{i}", square, {"x": i}) for i in range(4)]
        run_tasks(
            tasks,
            n_workers=n_workers,
            on_result=lambda task_id, result: seen.append((task_id, result)),
        )
        assert sorted(seen) == [(f"t{i}", i * i) for i in range(4)]

    def test_on_result_fires_before_a_later_failure(self):
        seen = []
        tasks = [Task("ok", square, {"x": 3}), Task("bad", boom, {})]
        with pytest.raises(TaskExecutionError):
            run_tasks(tasks, on_result=lambda tid, r: seen.append(tid))
        assert seen == ["ok"]

    def test_serial_error_wrapped(self):
        with pytest.raises(TaskExecutionError, match="bad"):
            run_tasks([Task("bad", boom, {})])

    def test_pool_error_wrapped(self):
        tasks = [Task("ok", square, {"x": 2}), Task("bad", boom, {})]
        with pytest.raises(TaskExecutionError, match="bad"):
            run_tasks(tasks, n_workers=2)


def _tiny_channels():
    import numpy as np

    rng = np.random.default_rng(0)
    shape = (2, 2, 4, 1, 2)
    return (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ) / np.sqrt(2.0)


def _tiny_bf():
    from repro.phy.svd import beamforming_matrices

    return beamforming_matrices(_tiny_channels(), n_streams=1)[..., 0]
