"""Tests for scenario specs and the named preset registry."""

from __future__ import annotations

import pytest

from repro.config import FAST, SMOKE
from repro.errors import ConfigurationError
from repro.runtime import (
    Scenario,
    campaign_names,
    canonical_json,
    dot11,
    fidelity_from_dict,
    fidelity_to_dict,
    get_campaign,
    get_scenario,
    grid,
    point,
    scenario_names,
    splitbeam,
)


class TestSpecHelpers:
    def test_fidelity_round_trip(self):
        assert fidelity_from_dict(fidelity_to_dict(FAST)) == FAST

    def test_grid_cross_product_order(self):
        cells = grid(env=("E1", "E2"), k=(1, 2))
        assert cells == [
            {"env": "E1", "k": 1},
            {"env": "E1", "k": 2},
            {"env": "E2", "k": 1},
            {"env": "E2", "k": 2},
        ]

    def test_point_shape(self):
        entry = point(
            "x",
            "D1",
            splitbeam(1 / 8, seed=3),
            eval_dataset_id="D3",
            eval_dataset_seed=8,
            link={"snr_db": 15.0},
            ber_samples=12,
        )
        assert entry["dataset"] == {"id": "D1", "seed": 7, "reset_interval": None}
        assert entry["eval_dataset"]["id"] == "D3"
        assert entry["scheme"] == {
            "kind": "splitbeam",
            "compression": 0.125,
            "seed": 3,
        }
        assert entry["ber_samples"] == 12

    def test_unknown_scheme_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            point("x", "D1", {"kind": "quantum"})

    def test_scenario_validation(self):
        fidelity = fidelity_to_dict(SMOKE)
        good = point("a", "D1", dot11())
        with pytest.raises(ConfigurationError):
            Scenario(name="s", title="t", fidelity=fidelity, points=())
        with pytest.raises(ConfigurationError):
            Scenario(
                name="s", title="t", fidelity=fidelity, points=(good, good)
            )
        bad_fidelity = {**fidelity, "bogus_knob": 1}
        with pytest.raises(TypeError):
            Scenario(
                name="s", title="t", fidelity=bad_fidelity, points=(good,)
            )

    def test_task_specs_merge_fidelity(self):
        scenario = Scenario(
            name="s",
            title="t",
            fidelity=fidelity_to_dict(SMOKE),
            points=(point("a", "D1", dot11()),),
        )
        (spec,) = scenario.task_specs()
        assert spec["fidelity"]["name"] == "smoke"
        assert spec["label"] == "a"


class TestRegistry:
    def test_expected_presets_registered(self):
        names = scenario_names()
        for expected in (
            "fig09",
            "fig12-ber",
            "fig13",
            "synthetic-160mhz",
            "multiuser-scaling",
            "mobility-sweep",
            "cross-env-matrix",
            "snr-sweep",
        ):
            assert expected in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("fig99")

    def test_every_preset_builds_canonical_specs(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert scenario.n_points > 0
            # Every point must hash (JSON-able) — the cache depends on it.
            canonical_json(scenario.task_specs())
            labels = [entry["label"] for entry in scenario.points]
            assert len(labels) == len(set(labels))

    def test_fig09_covers_full_grid(self):
        scenario = get_scenario("fig09", fidelity=SMOKE)
        # 12 datasets x (4 compressions + 802.11).
        assert scenario.n_points == 60
        assert scenario.fidelity["name"] == "smoke"
        labels = {entry["label"] for entry in scenario.points}
        assert "3x3 E2 80 MHz SB 1/8" in labels
        assert "2x2 E1 20 MHz 802.11" in labels

    def test_fig13_cross_env_points_carry_eval_dataset(self):
        scenario = get_scenario("fig13", bandwidths=(20,))
        by_label = {entry["label"]: entry for entry in scenario.points}
        cross = by_label["2x2 20 MHz E1/E2"]
        assert cross["dataset"]["id"] == "D1"
        assert cross["eval_dataset"] == {
            "id": "D3",
            "seed": 8,
            "reset_interval": None,
        }
        same = by_label["2x2 20 MHz E1/E1"]
        assert same["eval_dataset"] is None

    def test_mobility_sweep_varies_reset_interval(self):
        scenario = get_scenario("mobility-sweep", fidelity=SMOKE)
        intervals = {
            entry["dataset"]["reset_interval"] for entry in scenario.points
        }
        assert intervals == {4, 8, 16, 40}


class TestCampaignRegistry:
    def test_expected_campaign_presets_registered(self):
        names = campaign_names()
        for expected in (
            "network-scale",
            "heterogeneous-qos",
            "mobility-episodes",
        ):
            assert expected in names

    def test_unknown_campaign_rejected(self):
        with pytest.raises(ConfigurationError):
            get_campaign("campaign-of-the-month")

    def test_every_campaign_preset_builds_canonical_specs(self):
        from repro.core.network import campaign_round_spec

        for name in campaign_names():
            spec = get_campaign(name, fidelity=SMOKE)
            assert spec.n_stas > 0
            # Every round spec must hash — the result cache depends on it.
            canonical_json(campaign_round_spec(spec, spec.stas[0], 0))

    def test_network_scale_is_heterogeneous(self):
        spec = get_campaign("network-scale", fidelity=SMOKE)
        assert spec.n_stas == 16
        datasets = {sta["dataset"]["id"] for sta in spec.stas}
        assert len(datasets) >= 2  # several bandwidths/environments
        schemes = {sta["scheme"]["kind"] for sta in spec.stas}
        assert schemes == {"splitbeam", "dot11"}
        gammas = {sta["qos"]["max_ber"] for sta in spec.stas}
        assert len(gammas) >= 2
        flops = {
            sta["cost"].get("sta_flops_per_s", 2e9) for sta in spec.stas
        }
        assert len(flops) >= 2  # device tiers
        dopplers = {sta["doppler_hz"] for sta in spec.stas}
        assert len(dopplers) >= 2

    def test_network_scale_scales_to_hundreds(self):
        spec = get_campaign("network-scale", fidelity=SMOKE, n_stas=200)
        assert spec.n_stas == 200
        assert len({sta["name"] for sta in spec.stas}) == 200

    def test_heterogeneous_qos_spans_gamma_and_tau_ranges(self):
        spec = get_campaign("heterogeneous-qos", fidelity=SMOKE)
        gammas = sorted(sta["qos"]["max_ber"] for sta in spec.stas)
        assert gammas[0] == pytest.approx(1e-4)
        assert gammas[-1] == pytest.approx(0.2)
        delays = sorted(sta["qos"]["max_delay_s"] for sta in spec.stas)
        assert delays[0] == pytest.approx(4e-3)
        assert delays[-1] == pytest.approx(10e-3)
        # Static channel: the QoS axis is isolated from mobility.
        assert all(sta["doppler_hz"] == 0.0 for sta in spec.stas)

    def test_mobility_episodes_are_ordered_phases(self):
        spec = get_campaign("mobility-episodes", fidelity=SMOKE)
        assert len(spec.episodes) == 3
        starts = [episode["start_round"] for episode in spec.episodes]
        assert starts == sorted(starts)
        assert spec.episodes[1]["doppler_scale"] > 1.0
        assert spec.episodes[1]["snr_offset_db"] < 0.0
        assert spec.episodes[2]["doppler_scale"] == 1.0
