"""End-to-end tests for the experiment engine.

The acceptance properties of the subsystem live here at smoke scale:
worker counts never change a byte of the result artifact, and a warm
cache serves every point without executing a single task (verified both
through engine statistics and the ``@profiled`` link-simulator
registry).
"""

from __future__ import annotations

import json

import pytest

from repro.config import SMOKE
from repro.errors import ConfigurationError
from repro.perf import profile_summary, reset_profiles
from repro.runtime import (
    ExperimentEngine,
    ResultCache,
    Scenario,
    dot11,
    fidelity_to_dict,
    ideal,
    plan_scenario,
    point,
    splitbeam,
)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        name="unit",
        title="engine unit scenario",
        fidelity=fidelity_to_dict(SMOKE),
        points=(
            point("802.11", "D1", dot11(), link={"snr_db": 20.0}, ber_samples=6),
            point("ideal", "D1", ideal(), link={"snr_db": 20.0}, ber_samples=6),
            point(
                "SB 1/8",
                "D1",
                splitbeam(1 / 8),
                link={"snr_db": 20.0},
                ber_samples=6,
            ),
        ),
    )


class TestPlanner:
    def test_plan_is_keyed_and_ordered(self, scenario):
        planned = plan_scenario(scenario, version="v0")
        assert [entry.label for entry in planned] == [
            "802.11", "ideal", "SB 1/8",
        ]
        assert len({entry.key for entry in planned}) == 3
        # Keys are position-independent: the same spec always gets the
        # same address, so overlapping scenarios share cache entries.
        again = plan_scenario(scenario, version="v0")
        assert [e.key for e in planned] == [e.key for e in again]

    def test_shards_only_when_datasets_saturate_workers(self, scenario):
        # 1 dataset vs 1 worker -> no sharding (it would serialize).
        assert all(
            entry.task.shard is None
            for entry in plan_scenario(scenario, n_workers=1)
        )

    def test_keys_ignore_labels_and_fidelity_name(self, scenario):
        # The same physical measurement reached from another scenario
        # (different labels, renamed fidelity preset) must share its
        # cache entry.
        relabelled = Scenario(
            name="unit-relabelled",
            title="same grid, different words",
            fidelity={**dict(scenario.fidelity), "name": "smoke-copy"},
            points=tuple(
                {**entry, "label": f"renamed {i}"}
                for i, entry in enumerate(scenario.points)
            ),
        )
        original = plan_scenario(scenario, version="v0")
        renamed = plan_scenario(relabelled, version="v0")
        assert [e.key for e in original] == [e.key for e in renamed]


class TestEngineRun:
    def test_matches_direct_evaluation(self, scenario, smoke_dataset_2x2):
        from repro.baselines import Dot11Feedback
        from repro.core.pipeline import evaluate_scheme
        from repro.phy.link import LinkConfig

        run = ExperimentEngine(n_workers=1).run(scenario)
        direct = evaluate_scheme(
            Dot11Feedback(),
            smoke_dataset_2x2,
            indices=smoke_dataset_2x2.splits.test[:6],
            link_config=LinkConfig(snr_db=20.0),
        )
        assert run.result("802.11")["ber"] == direct.ber
        assert run.result("802.11")["feedback_bits"] == direct.feedback_bits
        assert run.n_tasks == 3 and run.n_executed == 3 and run.n_cached == 0

    def test_worker_count_does_not_change_a_byte(self, scenario):
        serial = ExperimentEngine(n_workers=1).run(scenario)
        pooled = ExperimentEngine(n_workers=2).run(scenario)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            pooled.to_dict(), sort_keys=True
        )

    def test_warm_cache_executes_zero_tasks(self, scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = ExperimentEngine(cache=cache, n_workers=1).run(scenario)
        assert cold.n_executed == 3
        reset_profiles()
        warm = ExperimentEngine(cache=cache, n_workers=1).run(scenario)
        assert warm.n_executed == 0 and warm.n_cached == 3
        # Zero link simulations ran: the profiled registry saw nothing.
        assert not any(
            entry.name == "link.measure_ber" for entry in profile_summary()
        )
        assert warm.to_dict() == cold.to_dict()

    def test_interrupted_run_keeps_completed_points(self, scenario, tmp_path):
        # Points persist as their tasks complete, so a run that dies
        # midway resumes from every finished point.
        import repro.runtime.tasks as tasks_module

        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache, n_workers=1)
        original = tasks_module.run_point
        calls = {"n": 0}

        def dies_on_third(params):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise RuntimeError("simulated crash")
            return original(params)

        tasks_module.run_point = dies_on_third
        try:
            with pytest.raises(Exception, match="simulated crash"):
                engine.run(scenario)
        finally:
            tasks_module.run_point = original
        # The two completed points are already on disk ...
        assert len(cache) == 2
        # ... and the resumed run executes only the missing one.
        resumed = ExperimentEngine(cache=cache, n_workers=1).run(scenario)
        assert resumed.n_cached == 2 and resumed.n_executed == 1

    def test_overlapping_scenario_reuses_points(self, scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExperimentEngine(cache=cache, n_workers=1).run(scenario)
        wider = Scenario(
            name="unit-wider",
            title="unit scenario plus one new point",
            fidelity=scenario.fidelity,
            points=scenario.points
            + (
                point(
                    "802.11 @ 10 dB",
                    "D1",
                    dot11(),
                    link={"snr_db": 10.0},
                    ber_samples=6,
                ),
            ),
        )
        run = ExperimentEngine(cache=cache, n_workers=1).run(wider)
        assert run.n_cached == 3 and run.n_executed == 1

    def test_artifact_is_deterministic_json(self, scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cache=cache, n_workers=1)
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        engine.run(scenario).write_json(path_a)
        engine.run(scenario).write_json(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
        payload = json.loads(path_a.read_text())
        assert payload["schema_version"] == 1
        assert [p["label"] for p in payload["points"]] == [
            "802.11", "ideal", "SB 1/8",
        ]
        assert "wall_s" not in payload and "created_unix" not in payload

    def test_result_lookup_and_values(self, scenario):
        run = ExperimentEngine(n_workers=1).run(scenario)
        assert set(run.values("ber")) == {"802.11", "ideal", "SB 1/8"}
        with pytest.raises(ConfigurationError):
            run.result("missing")
