"""Tests for the content-addressed checkpoint store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.checkpoints import CHECKPOINT_KIND, CheckpointStore
from repro.runtime.hashing import task_key


def dead_pid() -> int:
    """A pid guaranteed to belong to no running process."""
    import subprocess
    import sys

    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    return proc.pid


def backdate(path) -> None:
    """Age a file past the sweep's young-writer grace period."""
    import os
    import time

    old = time.time() - 3600.0
    os.utime(path, (old, old))


def _state(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "p0.weight": rng.standard_normal((4, 3)),
        "p0.bias": rng.standard_normal(3),
    }


def _key(i: int) -> str:
    return task_key({"x": i}, "v", kind=CHECKPOINT_KIND)


def _legacy_put(store, key, spec, state, meta=None) -> None:
    """Write a pre-packed two-file checkpoint (<key>.json + <key>.npz)."""
    from repro.runtime.hashing import state_digest

    payload = {
        "schema_version": 1,
        "key": key,
        "spec": spec,
        "state_sha256": state_digest(state),
        "meta": dict(meta or {}),
    }
    store.root.mkdir(parents=True, exist_ok=True)
    np.savez(store.weight_path(key), **state)
    store.meta_path(key).write_text(json.dumps(payload, sort_keys=True))


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        key = _key(1)
        assert store.get(key) is None
        state = _state()
        store.put(key, {"x": 1}, state, meta={"measured_ber": 0.25})
        loaded = store.get(key)
        assert loaded is not None
        assert loaded.key == key
        assert loaded.spec == {"x": 1}
        assert loaded.meta == {"measured_ber": 0.25}
        assert set(loaded.state) == set(state)
        for name in state:
            np.testing.assert_array_equal(loaded.state[name], state[name])
        assert store.keys() == [key]
        assert len(store) == 1

    def test_legacy_pair_absorbed_on_first_get(self, tmp_path):
        # Pre-packed roots hold <key>.json + <key>.npz pairs; get must
        # serve them bit-identically, pack them, and retire the files.
        store = CheckpointStore(tmp_path)
        key = _key(20)
        state = _state(3)
        _legacy_put(store, key, {"x": 20}, state, meta={"v": 3})
        assert store.keys() == [key]  # visible before absorption
        loaded = store.get(key)
        assert loaded is not None and loaded.meta == {"v": 3}
        np.testing.assert_array_equal(loaded.state["p0.bias"], state["p0.bias"])
        assert not store.meta_path(key).exists()
        assert not store.weight_path(key).exists()
        reopened = CheckpointStore(tmp_path)
        again = reopened.get(key)
        assert again is not None
        assert again.state_sha256 == loaded.state_sha256

    def test_missing_weights_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = _key(2)
        _legacy_put(store, key, {"x": 2}, _state())
        store.weight_path(key).unlink()
        assert store.get(key) is None
        assert store.keys() == []

    def test_corrupted_weights_are_a_miss(self, tmp_path):
        # Weights whose bytes no longer hash to the recorded digest must
        # not be served — retraining beats silently loading a wrong model.
        store = CheckpointStore(tmp_path)
        key = _key(3)
        _legacy_put(store, key, {"x": 3}, _state())
        other = _state(seed=9)
        np.savez(store.weight_path(key), **other)
        assert store.get(key) is None

    def test_truncated_npz_is_a_miss(self, tmp_path):
        # A torn write can leave a half-written zip container; np.load
        # raises BadZipFile/EOFError on those, which get must swallow
        # (retrain), never propagate into a warm rebuild.
        store = CheckpointStore(tmp_path)
        key = _key(10)
        _legacy_put(store, key, {"x": 10}, _state())
        raw = store.weight_path(key).read_bytes()
        store.weight_path(key).write_bytes(raw[: len(raw) // 2])
        assert store.get(key) is None
        _legacy_put(store, _key(11), {"x": 11}, _state())
        store.weight_path(_key(11)).write_bytes(b"PK")  # zip magic only
        assert store.get(_key(11)) is None

    def test_corrupted_record_is_a_miss(self, tmp_path):
        # Same contract for the packed layout: a record whose bytes no
        # longer pass the CRC is quarantined, never served.
        store = CheckpointStore(tmp_path)
        key = _key(13)
        segment = store.put(key, {"x": 13}, _state())
        location = store._store._entries[key]
        with open(segment, "r+b") as handle:
            handle.seek(location.offset + location.length - 3)
            handle.write(b"\xff\xff\xff")
        assert store.get(key) is None
        assert store.health.quarantined == 1
        assert store.keys() == []

    def test_corrupt_meta_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = _key(4)
        _legacy_put(store, key, {"x": 4}, _state())
        store.meta_path(key).write_text("{not json")
        assert store.get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key, other = _key(5), _key(6)
        _legacy_put(store, key, {"x": 5}, _state())
        store.meta_path(other).write_text(store.meta_path(key).read_text())
        np.savez(store.weight_path(other), **_state())
        assert store.get(other) is None

    def test_meta_layout(self, tmp_path):
        import struct

        store = CheckpointStore(tmp_path)
        key = _key(7)
        store.put(key, {"x": 7}, _state(), meta={"widths": [4, 2, 4]})
        raw = store._store.get(key)
        (meta_len,) = struct.unpack("<I", raw[:4])
        payload = json.loads(raw[4 : 4 + meta_len].decode())
        assert payload["schema_version"] == 1
        assert payload["key"] == key
        assert payload["spec"] == {"x": 7}
        assert payload["meta"] == {"widths": [4, 2, 4]}
        assert len(payload["state_sha256"]) == 64

    def test_prune_removes_dead_orphans_and_tmp(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [_key(i) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"x": i}, _state(i))
        # An orphaned npz (no metadata), plus a stale write-temp file.
        np.savez(store.weight_path("feed1234"), **_state())
        leftover = tmp_path / f"{keys[0]}.tmp.{dead_pid()}"
        leftover.write_text("{interrupted")
        backdate(leftover)
        removed = store.prune(keys[:1])
        # 2 dead packed records + 1 legacy orphan + 1 temp file.
        assert removed == 4
        assert store.keys() == [keys[0]]
        assert store.get(keys[0]) is not None

    def test_prune_spares_half_committed_live_keys(self, tmp_path):
        # A concurrent writer sits between its weight rename and its
        # metadata commit; prune must never delete a live key's files,
        # committed or not.
        store = CheckpointStore(tmp_path)
        key = _key(11)
        np.savez(store.weight_path(key), **_state())  # weights, no meta yet
        assert store.prune([key]) == 0
        assert store.weight_path(key).exists()
        # The same half-written pair for a *dead* key is fair game.
        other = _key(12)
        np.savez(store.weight_path(other), **_state())
        assert store.prune([key]) == 1
        assert not store.weight_path(other).exists()

    def test_put_overwrites_and_sweeps_stale_tmp(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = _key(8)
        stale = tmp_path / f"{key}.tmp.{dead_pid()}.npz"
        stale.write_bytes(b"partial")
        backdate(stale)
        store.put(key, {"x": 8}, _state(1), meta={"v": 1})
        store.put(key, {"x": 8}, _state(2), meta={"v": 2})
        assert not stale.exists()
        loaded = store.get(key)
        assert loaded.meta == {"v": 2}
        np.testing.assert_array_equal(
            loaded.state["p0.weight"], _state(2)["p0.weight"]
        )

    def test_empty_root_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckpointStore("")

    def test_default_root_env_override(self, tmp_path, monkeypatch):
        from repro.runtime.checkpoints import (
            CHECKPOINTS_ENV,
            default_checkpoint_root,
        )

        monkeypatch.delenv(CHECKPOINTS_ENV, raising=False)
        assert default_checkpoint_root("fallback") == "fallback"
        assert default_checkpoint_root().endswith("checkpoint_store")
        monkeypatch.setenv(CHECKPOINTS_ENV, str(tmp_path / "elsewhere"))
        assert default_checkpoint_root("fallback") == str(tmp_path / "elsewhere")
