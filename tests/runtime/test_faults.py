"""Chaos tests: deterministic fault injection through the runtime stack.

The contract under test: every task is pure and seeded, so injected
chaos (task errors, worker hard-crashes, delays, torn store writes) may
cost retries, pool rebuilds, and recomputes — but never bytes.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import faults as faults_mod
from repro.runtime.cache import ResultCache
from repro.runtime.checkpoints import CheckpointStore
from repro.runtime.executor import (
    RetryPolicy,
    RunHealth,
    Task,
    TaskExecutionError,
    run_tasks,
)
from repro.runtime.faults import (
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    active_plan,
    install,
    parse_plan,
)
from repro.runtime.payloads import PayloadStore, clear_payload_cache


def square(params):
    return params["x"] ** 2


def probe(params):
    return {"row": params["row"], "total": float(np.sum(params["blob"]))}


@pytest.fixture(autouse=True)
def _no_installed_plan():
    """Isolate every test from process-wide plan state."""
    previous = install(None)
    yield
    install(previous)


class TestFaultRule:
    def test_kinds_validated(self):
        with pytest.raises(ConfigurationError):
            FaultRule(kind="meteor")
        with pytest.raises(ConfigurationError):
            FaultRule(kind="error", count=0)
        with pytest.raises(ConfigurationError):
            FaultRule(kind="error", rate=0.0)
        with pytest.raises(ConfigurationError):
            FaultRule(kind="delay", delay_s=-1.0)

    def test_match_and_count(self):
        rule = FaultRule(kind="error", match="sta*/round-0001", count=2)
        assert rule.fires("sta003/round-0001", 0)
        assert rule.fires("sta003/round-0001", 1)
        assert not rule.fires("sta003/round-0001", 2)  # count exhausted
        assert not rule.fires("sta003/round-0002", 0)  # no match

    def test_rate_is_deterministic_and_proportional(self):
        rule = FaultRule(kind="error", rate=0.3)
        targets = [f"task-{i:03d}" for i in range(500)]
        selected = [t for t in targets if rule.selects(t)]
        assert selected == [t for t in targets if rule.selects(t)]
        assert 0.2 < len(selected) / len(targets) < 0.4

    def test_seed_varies_the_selection(self):
        a = FaultRule(kind="error", rate=0.5, seed=0)
        b = FaultRule(kind="error", rate=0.5, seed=1)
        targets = [f"task-{i:03d}" for i in range(200)]
        assert [a.selects(t) for t in targets] != [
            b.selects(t) for t in targets
        ]


class TestParsePlan:
    def test_grammar_round_trips_through_describe(self):
        text = "crash,*/round-0001;torn,cache:*,count=2,rate=0.5,seed=3"
        plan = parse_plan(text)
        assert len(plan) == 2
        assert plan.rules[0] == FaultRule(kind="crash", match="*/round-0001")
        assert plan.rules[1] == FaultRule(
            kind="torn", match="cache:*", count=2, rate=0.5, seed=3
        )
        assert parse_plan(plan.describe()).rules == plan.rules

    def test_task_ids_with_colons_and_slashes_match(self):
        # Zoo task ids look like "0004:D1 K=1/8" — the grammar's
        # separators (";" and ",") must leave them expressible.
        plan = parse_plan("error,0004:D1 K=1/8,count=1")
        assert plan.rules[0].fires("0004:D1 K=1/8", 0)

    def test_bad_input_rejected(self):
        for text in ("", ";;", "error,x,bogus=1", "wat,*", "error,x,count=z"):
            with pytest.raises(ConfigurationError):
                parse_plan(text)

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults_mod.FAULTS_ENV, "error,env-task,count=1")
        plan = active_plan()
        assert plan is not None
        assert plan.rules[0].match == "env-task"
        monkeypatch.delenv(faults_mod.FAULTS_ENV)
        assert active_plan() is None

    def test_explicit_beats_installed(self):
        explicit = FaultPlan([FaultRule(kind="error")])
        installed = FaultPlan([FaultRule(kind="delay")])
        install(installed)
        assert active_plan() is installed
        assert active_plan(explicit) is explicit


class TestApplyTaskFaults:
    def test_error_raises(self):
        plan = FaultPlan([FaultRule(kind="error", match="t", count=1)])
        with pytest.raises(InjectedFaultError):
            plan.apply_task_faults("t", 0, in_worker=True)
        plan.apply_task_faults("t", 1, in_worker=True)  # count exhausted

    def test_crash_downgrades_in_coordinator(self):
        # os._exit in the in-process executor would kill the run itself.
        plan = FaultPlan([FaultRule(kind="crash", match="t")])
        with pytest.raises(InjectedFaultError, match="downgraded"):
            plan.apply_task_faults("t", 0, in_worker=False)

    def test_pickled_plan_drops_tear_counters(self):
        plan = FaultPlan([FaultRule(kind="torn", match="cache:*")])
        assert plan.tear("cache", "k")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.rules == plan.rules
        assert clone._tear_counts == {}

    def test_tear_counts_per_label(self):
        plan = FaultPlan([FaultRule(kind="torn", match="cache:*", count=1)])
        assert plan.tear("cache", "a")
        assert not plan.tear("cache", "a")  # count exhausted for "a"
        assert plan.tear("cache", "b")  # fresh label, fresh counter
        assert not plan.tear("checkpoint", "a")  # label never matched


class TestExecutorRetries:
    def test_injected_errors_are_absorbed_by_retries(self):
        plan = FaultPlan([FaultRule(kind="error", match="t1", count=2)])
        health = RunHealth()
        tasks = [Task(f"t{i}", square, {"x": i}) for i in range(3)]
        results = run_tasks(tasks, faults=plan, health=health)
        assert results == {f"t{i}": i * i for i in range(3)}
        assert health.task_errors == 2
        assert health.injected_faults == 2
        assert health.retries == 2
        assert health.faulted

    def test_exhausted_retries_raise_with_remote_traceback(self):
        plan = FaultPlan([FaultRule(kind="error", match="t0", count=99)])
        policy = RetryPolicy(retries=1, backoff_s=0.0)
        with pytest.raises(TaskExecutionError) as excinfo:
            run_tasks(
                [Task("t0", square, {"x": 1})], faults=plan, policy=policy
            )
        assert excinfo.value.task_id == "t0"
        assert "InjectedFaultError" in excinfo.value.remote_traceback

    def test_error_survives_pickling_with_traceback(self):
        # The remote traceback is a plain attribute that must outlive a
        # trip through pickle (worker -> coordinator).
        err = TaskExecutionError(
            "task 'x' failed",
            task_id="x",
            remote_traceback="Traceback ...\nValueError: boom",
            injected=True,
        )
        clone = pickle.loads(pickle.dumps(err))
        assert clone.task_id == "x"
        assert clone.remote_traceback == err.remote_traceback
        assert clone.injected is True

    def test_policy_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_pool_failures=0)

    def test_collect_errors_skips_dependents_only(self):
        plan = FaultPlan([FaultRule(kind="error", match="a", count=99)])
        policy = RetryPolicy(retries=0, backoff_s=0.0)
        health = RunHealth()
        tasks = [
            Task("a", square, {"x": 1}),
            Task("b", square, {"x": 2}, deps=("a",)),
            Task("c", square, {"x": 3}, deps=("b",)),
            Task("d", square, {"x": 4}),
        ]
        results = run_tasks(
            tasks,
            faults=plan,
            policy=policy,
            health=health,
            collect_errors=True,
        )
        assert results == {"d": 16}
        assert [row["task"] for row in health.failed] == ["a"]
        assert "InjectedFaultError" in health.failed[0]["summary"]
        assert sorted(health.skipped) == ["b", "c"]


class TestPoolRecovery:
    def test_worker_crash_is_replayed_byte_identically(self):
        plan = FaultPlan(
            [FaultRule(kind="crash", match="t03", count=1)]
        )
        health = RunHealth()
        tasks = [Task(f"t{i:02d}", square, {"x": i}) for i in range(8)]
        clean = run_tasks(tasks, n_workers=2)
        chaotic = run_tasks(tasks, n_workers=2, faults=plan, health=health)
        assert chaotic == clean
        assert health.worker_crashes == 1
        assert health.pool_rebuilds == 1
        assert health.injected_faults >= 1
        assert health.serial_fallbacks == 0

    def test_timeout_kills_and_replays(self):
        plan = FaultPlan(
            [FaultRule(kind="delay", match="t1", count=1, delay_s=5.0)]
        )
        policy = RetryPolicy(timeout_s=0.5, backoff_s=0.0)
        health = RunHealth()
        tasks = [Task(f"t{i}", square, {"x": i}) for i in range(4)]
        results = run_tasks(
            tasks, n_workers=2, faults=plan, policy=policy, health=health
        )
        assert results == {f"t{i}": i * i for i in range(4)}
        assert health.timeouts == 1

    def test_repeated_crashes_degrade_to_serial(self):
        plan = FaultPlan([FaultRule(kind="crash", match="t0", count=10)])
        policy = RetryPolicy(
            retries=10, backoff_s=0.0, max_pool_failures=2
        )
        health = RunHealth()
        with pytest.warns(RuntimeWarning, match="degrading"):
            results = run_tasks(
                [Task("t0", square, {"x": 3})],
                n_workers=2,
                faults=plan,
                policy=policy,
                health=health,
            )
        # The serial path downgrades the remaining crashes to retryable
        # errors and the task eventually succeeds.
        assert results == {"t0": 9}
        assert health.worker_crashes == 2
        assert health.serial_fallbacks == 1
        assert "pool failure" in health.fallback_reason

    def test_pool_creation_failure_records_reason(self, monkeypatch):
        import repro.runtime.executor as executor_mod

        def refuse(n_workers):
            raise OSError("no semaphores left")

        monkeypatch.setattr(executor_mod, "_make_pool", refuse)
        health = RunHealth()
        tasks = [Task(f"t{i}", square, {"x": i}) for i in range(3)]
        with pytest.warns(RuntimeWarning, match="no semaphores"):
            results = run_tasks(tasks, n_workers=2, health=health)
        assert results == {f"t{i}": i * i for i in range(3)}
        assert health.serial_fallbacks == 1
        assert "no semaphores" in health.fallback_reason

    def test_crash_with_payloads_still_byte_identical(self):
        clear_payload_cache()
        plan = FaultPlan([FaultRule(kind="crash", match="p2", count=1)])
        blob = np.random.default_rng(7).random((16, 4))

        def run(faults=None):
            with PayloadStore() as store:
                ref = store.intern(blob)
                tasks = [
                    Task(f"p{i}", probe, {"blob": ref, "row": i})
                    for i in range(6)
                ]
                return run_tasks(
                    tasks, n_workers=2, payloads=store, faults=faults
                )

        clean = run()
        chaotic = run(faults=plan)
        assert json.dumps(chaotic, sort_keys=True) == json.dumps(
            clean, sort_keys=True
        )
        clear_payload_cache()


class TestStoreQuarantine:
    def test_corrupt_legacy_cache_entry_is_quarantined(self, tmp_path):
        # A pre-packed root's corrupt <key>.json is moved aside on
        # first touch instead of being absorbed.
        cache = ResultCache(tmp_path)
        cache.path("k1").write_text("{ totally not json")
        assert cache.get("k1") is None
        assert cache.health.quarantined == 1
        assert not cache.path("k1").exists()
        assert (tmp_path / "quarantine" / "k1.json").exists()
        assert cache.keys() == []  # quarantine/ is unaddressable

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        from repro.runtime.cache import result_digest

        cache = ResultCache(tmp_path)
        payload = {
            "schema_version": 1,
            "key": "k1",
            "spec": {"spec": 1},
            "result": {"ber": 0.25},  # bit-rot: result no longer
            "result_sha256": result_digest({"ber": 0.5}),  # matches digest
        }
        cache.path("k1").write_text(json.dumps(payload))
        assert cache.get("k1") is None
        assert cache.health.quarantined == 1

    def test_packed_digest_mismatch_is_quarantined(self, tmp_path):
        # Same contract inside a packed record: an entry whose payload
        # fails the result_sha256 check is tombstoned + counted.
        cache = ResultCache(tmp_path)
        cache.put("k1", {"spec": 1}, {"ber": 0.5})
        raw = cache._store.get("k1")
        doctored = raw.replace(b'"ber":0.5', b'"ber":0.7')
        cache._store.put("k1", doctored)
        assert cache.get("k1") is None
        assert cache.health.quarantined == 1
        assert cache.keys() == []

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ghost") is None
        assert cache.health.quarantined == 0

    def test_torn_cache_write_recovers_on_reread(self, tmp_path):
        plan = FaultPlan([FaultRule(kind="torn", match="cache:k1", count=1)])
        install(plan)
        cache = ResultCache(tmp_path)
        cache.put("k1", {"spec": 1}, {"ber": 0.5})  # lands torn
        assert cache.get("k1") is None  # quarantined, clean miss
        assert cache.health.quarantined == 1
        cache.put("k1", {"spec": 1}, {"ber": 0.5})  # tear count exhausted
        assert cache.get("k1") == {"ber": 0.5}

    def test_torn_checkpoint_write_recovers_on_reread(self, tmp_path):
        plan = FaultPlan(
            [FaultRule(kind="torn", match="checkpoint:k1", count=1)]
        )
        install(plan)
        store = CheckpointStore(tmp_path)
        state = {"w": np.arange(6.0), "b": np.zeros(3)}
        store.put("k1", {"spec": 1}, state)  # record lands torn
        assert store.get("k1") is None
        assert store.health.quarantined == 1
        store.put("k1", {"spec": 1}, state)
        loaded = store.get("k1")
        assert loaded is not None
        assert np.array_equal(loaded.state["w"], state["w"])

    def test_checkpoint_digest_mismatch_quarantines_both_files(
        self, tmp_path
    ):
        from repro.runtime.hashing import state_digest

        store = CheckpointStore(tmp_path)
        state = {"w": np.arange(4.0)}
        payload = {
            "schema_version": 1,
            "key": "k1",
            "spec": {"spec": 1},
            "state_sha256": state_digest(state),
            "meta": {},
        }
        (tmp_path / "k1.json").write_text(json.dumps(payload))
        np.savez(tmp_path / "k1.npz", w=np.zeros(4))  # swapped weights
        assert store.get("k1") is None
        assert not (tmp_path / "k1.npz").exists()
        assert not (tmp_path / "k1.json").exists()
        assert (tmp_path / "quarantine" / "k1.npz").exists()
        assert (tmp_path / "quarantine" / "k1.json").exists()

    def test_vanished_spool_file_is_rehydrated(self, tmp_path):
        clear_payload_cache()
        store = PayloadStore(root=str(tmp_path))
        ref = store.intern(np.arange(12.0))
        root = store.spill({ref.digest})
        path = os.path.join(root, f"{ref.digest}.pkl")
        os.remove(path)  # scratch cleaner strikes mid-run
        assert store.spill({ref.digest}) == root
        assert os.path.exists(path)
        assert store.rehydrated == 1
        store.close()
        clear_payload_cache()


class TestEngineIntegration:
    def test_engine_run_survives_chaos_and_reports_health(self, tmp_path):
        from repro.config import SMOKE
        from repro.runtime import (
            Scenario,
            dot11,
            fidelity_to_dict,
            ideal,
            point,
            splitbeam,
        )
        from repro.runtime.engine import ExperimentEngine

        scenario = Scenario(
            name="chaos-unit",
            title="engine chaos scenario",
            fidelity=fidelity_to_dict(SMOKE),
            points=(
                point(
                    "802.11", "D1", dot11(), link={"snr_db": 20.0},
                    ber_samples=6,
                ),
                point(
                    "ideal", "D1", ideal(), link={"snr_db": 20.0},
                    ber_samples=6,
                ),
                point(
                    "SB 1/8", "D1", splitbeam(1 / 8),
                    link={"snr_db": 20.0}, ber_samples=6,
                ),
            ),
        )
        clean = ExperimentEngine(
            cache=ResultCache(tmp_path / "clean")
        ).run(scenario)
        # The tear rule runs at rate 1.0: cache keys embed code_version(),
        # so a fractional rate would select a source-edit-dependent subset
        # of keys (possibly none) and the quarantine assertion below
        # would flap with every unrelated change to the library.
        plan = parse_plan("error,*,rate=0.4,count=1;torn,cache:*")
        chaotic_cache = ResultCache(tmp_path / "chaos")
        engine = ExperimentEngine(cache=chaotic_cache, faults=plan)
        chaotic = engine.run(scenario)
        assert json.dumps(chaotic.to_dict(), sort_keys=True) == json.dumps(
            clean.to_dict(), sort_keys=True
        )
        assert chaotic.health["executor"]["injected_faults"] > 0
        assert "health" not in chaotic.to_dict()
        assert chaotic.to_dict(include_health=True)["health"] == chaotic.health
        # A warm re-run quarantines the torn entries, recomputes them,
        # and still produces the same bytes.
        warm = ExperimentEngine(cache=chaotic_cache).run(scenario)
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            clean.to_dict(), sort_keys=True
        )
        assert warm.health["cache"]["quarantined"] > 0
