"""Tests for the packed segment store (crash safety, recovery, migration).

The commit protocol under test: a record is committed once its CRC
frame is fully on disk; the index snapshot lags the data, never leads
it.  Killing a writer at *any* byte of the protocol must leave a store
that opens clean, serves every committed record, and drops only the
torn tail.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache, result_digest
from repro.runtime.checkpoints import CheckpointStore
from repro.runtime.faults import FaultPlan, FaultRule, install
from repro.runtime.store import (
    INDEX_NAME,
    SegmentStore,
    default_segment_bytes,
    default_snapshot_every,
    migrate,
)


@pytest.fixture(autouse=True)
def _no_installed_plan():
    yield
    install(None)


def _child_env() -> dict:
    """Subprocess environment with this checkout's src on PYTHONPATH."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestSegmentStore:
    def test_round_trip_and_overwrite(self, tmp_path):
        store = SegmentStore(tmp_path)
        assert store.get("a") is None
        store.put("a", b"one")
        store.put("b", b"two")
        store.put("a", b"three")  # last writer wins
        assert store.get("a") == b"three"
        assert store.get("b") == b"two"
        assert store.keys() == ["a", "b"]
        assert len(store) == 2

    def test_delete_and_contains(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put("a", b"x")
        assert store.delete("a") is True
        assert store.delete("a") is False
        assert store.get("a") is None
        assert store.contains("a")  # tombstoned, still indexed
        assert store.keys() == []
        store.put("a", b"y")  # a re-put revives the key
        assert store.get("a") == b"y"

    def test_missing_root_reads_are_cheap_noops(self, tmp_path):
        store = SegmentStore(tmp_path / "never-written")
        assert store.get("a") is None
        assert store.keys() == []
        assert len(store) == 0
        store.flush()
        assert not (tmp_path / "never-written").exists()

    def test_segments_roll_at_the_size_bound(self, tmp_path):
        store = SegmentStore(tmp_path, segment_bytes=128)
        for i in range(20):
            store.put(f"k{i:02d}", b"v" * 40)
        assert len(list((tmp_path / "segments").glob("*.seg"))) > 1
        for i in range(20):
            assert store.get(f"k{i:02d}") == b"v" * 40
        reopened = SegmentStore(tmp_path, segment_bytes=128)
        assert reopened.keys() == store.keys()

    def test_oversized_key_rejected(self, tmp_path):
        store = SegmentStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.put("k" * 70000, b"v")


class TestRecovery:
    def test_reopen_without_flush_recovers_everything(self, tmp_path):
        # Crash before any index publish: the snapshot never existed.
        store = SegmentStore(tmp_path)
        for i in range(5):
            store.put(f"k{i}", f"v{i}".encode())
        assert not (tmp_path / INDEX_NAME).exists()
        reopened = SegmentStore(tmp_path)
        assert reopened.keys() == sorted(f"k{i}" for i in range(5))
        assert reopened.get("k3") == b"v3"
        assert reopened.health.recovered == 5
        assert reopened.health.truncated == 0

    def test_stale_snapshot_recovers_the_tail(self, tmp_path):
        # Crash after a publish but before the next one: the index
        # lags; the scan picks up exactly the unsnapshotted records.
        store = SegmentStore(tmp_path)
        store.put("a", b"1")
        store.flush()
        store.put("b", b"2")
        store.put("a", b"3")
        reopened = SegmentStore(tmp_path)
        assert reopened.get("a") == b"3"
        assert reopened.get("b") == b"2"
        assert reopened.health.recovered == 2

    def test_lost_index_triggers_full_rebuild(self, tmp_path):
        store = SegmentStore(tmp_path)
        for i in range(4):
            store.put(f"k{i}", f"v{i}".encode())
        store.delete("k0")
        store.flush()
        (tmp_path / INDEX_NAME).unlink()
        reopened = SegmentStore(tmp_path)
        assert reopened.keys() == ["k1", "k2", "k3"]
        assert not reopened.contains("k0") or reopened.get("k0") is None
        assert reopened.get("k2") == b"v2"

    def test_garbled_index_triggers_full_rebuild(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put("a", b"1")
        store.flush()
        (tmp_path / INDEX_NAME).write_text("{half a snapsh")
        reopened = SegmentStore(tmp_path)
        assert reopened.get("a") == b"1"

    def test_crash_at_every_byte_of_an_append(self, tmp_path):
        # Commit-protocol sweep: kill the writer at *every* byte of the
        # third record's append.  However much of the frame landed, the
        # reopened store must serve both committed records and never a
        # partial third.
        store = SegmentStore(tmp_path)
        store.put("a", b"alpha")
        segment = store.put("b", b"beta")
        committed = segment.stat().st_size
        store.put("c", b"gamma")
        full = segment.stat().st_size
        store.close()
        pristine = segment.read_bytes()
        for cut in range(committed, full):
            shutil.rmtree(tmp_path / "scratch", ignore_errors=True)
            scratch = tmp_path / "scratch"
            scratch.mkdir()
            (scratch / "segments").mkdir()
            seg_copy = scratch / "segments" / segment.name
            seg_copy.write_bytes(pristine[:cut])
            reopened = SegmentStore(scratch)
            assert reopened.get("a") == b"alpha"
            assert reopened.get("b") == b"beta"
            assert reopened.get("c") is None, f"partial record served at {cut}"
            if cut > committed:
                assert reopened.health.truncated == 1
            assert seg_copy.stat().st_size == committed  # tail dropped
            reopened.close()

    def test_mid_segment_bit_rot_is_skipped_not_served(self, tmp_path):
        # A CRC failure *under* later valid records is bit rot, not a
        # torn tail: the scan must skip it and keep the records after.
        store = SegmentStore(tmp_path)
        store.put("a", b"alpha")
        segment = store.put("b", b"beta")
        rot_end = segment.stat().st_size
        store.put("c", b"gamma")
        store.close()
        with open(segment, "r+b") as handle:
            handle.seek(rot_end - 2)
            handle.write(b"\xff\xff")
        (tmp_path / INDEX_NAME).unlink()
        reopened = SegmentStore(tmp_path)
        assert reopened.get("a") == b"alpha"
        assert reopened.get("b") is None
        assert reopened.get("c") == b"gamma"
        assert reopened.health.truncated == 0

    def test_tombstones_survive_reopen(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put("a", b"1")
        store.quarantine("a")
        assert store.health.quarantined == 1
        reopened = SegmentStore(tmp_path)
        assert reopened.get("a") is None
        assert reopened.contains("a")

    def test_worker_killed_mid_run_loses_nothing_committed(self, tmp_path):
        # A real os._exit (no flush, no close, no atexit) after five
        # puts: every one of them must be served on the next open.
        script = textwrap.dedent(
            """
            import os, sys
            from repro.runtime.store import SegmentStore
            store = SegmentStore(sys.argv[1])
            for i in range(5):
                store.put(f"k{i}", f"v{i}".encode())
            os._exit(1)
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=_child_env(),
            timeout=60,
        )
        assert proc.returncode == 1
        store = SegmentStore(tmp_path)
        assert store.keys() == sorted(f"k{i}" for i in range(5))
        assert store.get("k4") == b"v4"


class TestCompaction:
    def test_compact_drops_dead_records_and_tombstones(self, tmp_path):
        store = SegmentStore(tmp_path)
        for i in range(6):
            store.put(f"k{i}", f"v{i}".encode())
        store.put("k0", b"v0-new")
        store.delete("k5")
        dropped = store.compact(["k0", "k1", "k2"])
        assert dropped == 2  # k3, k4 (k5 was already tombstoned)
        assert store.keys() == ["k0", "k1", "k2"]
        assert store.get("k0") == b"v0-new"
        assert store.health.compactions == 1
        # Exactly one fresh generation remains on disk.
        names = sorted(p.name for p in (tmp_path / "segments").iterdir())
        assert all(name.startswith("seg-00000001-") for name in names)
        reopened = SegmentStore(tmp_path)
        assert reopened.keys() == ["k0", "k1", "k2"]
        assert reopened.get("k2") == b"v2"

    def test_crashed_compaction_orphans_are_discarded(self, tmp_path):
        # A compactor died after writing new-generation segments but
        # before publishing the index: the orphans must be discarded
        # and the indexed generation served untouched.
        store = SegmentStore(tmp_path)
        store.put("a", b"1")
        store.put("b", b"2")
        store.flush()
        orphan = tmp_path / "segments" / "seg-00000001-00000000.seg"
        orphan.write_bytes(b"half-written compaction output")
        reopened = SegmentStore(tmp_path)
        assert reopened.get("a") == b"1"
        assert reopened.get("b") == b"2"
        assert not orphan.exists()

    def test_index_torn_during_compaction_still_recovers(self, tmp_path):
        # Crash *during* the publish itself: the snapshot lands
        # unparseable, but the new generation's segments were fsync'd
        # first, so the rebuild scan serves every live record.
        store = SegmentStore(tmp_path, label="cache")
        for i in range(4):
            store.put(f"k{i}", f"v{i}".encode())
        install(FaultPlan([FaultRule(kind="torn", match="index:cache")]))
        store.compact(["k0", "k1"])
        install(None)
        store.close()
        reopened = SegmentStore(tmp_path, label="cache")
        assert reopened.keys() == ["k0", "k1"]
        assert reopened.get("k1") == b"v1"


class TestFaultLabels:
    def test_segment_label_tears_the_append(self, tmp_path):
        install(
            FaultPlan(
                [
                    FaultRule(
                        kind="torn",
                        match="segment:seg-00000000-00000000.seg",
                    )
                ]
            )
        )
        store = SegmentStore(tmp_path)
        store.put("a", b"alpha")  # lands as a torn, unindexed tail
        assert store.get("a") is None
        assert store.keys() == []
        store.put("b", b"beta")  # rolled to a fresh segment: clean
        assert store.get("b") == b"beta"
        install(None)
        reopened = SegmentStore(tmp_path)
        assert reopened.get("a") is None
        assert reopened.get("b") == b"beta"
        assert reopened.health.truncated == 1

    def test_index_label_tears_the_snapshot(self, tmp_path):
        store = SegmentStore(tmp_path, label="checkpoint")
        store.put("a", b"1")
        install(FaultPlan([FaultRule(kind="torn", match="index:checkpoint")]))
        store.flush()  # snapshot lands unparseable
        install(None)
        reopened = SegmentStore(tmp_path, label="checkpoint")
        assert reopened.get("a") == b"1"
        assert reopened.health.recovered == 1  # rebuilt, not snapshot-read

    def test_env_grammar_reaches_the_store(self, tmp_path, monkeypatch):
        from repro.runtime.faults import FAULTS_ENV, _parse_cached

        _parse_cached.cache_clear()
        monkeypatch.setenv(FAULTS_ENV, "torn,segment:*,count=1")
        store = SegmentStore(tmp_path)
        store.put("a", b"alpha")
        assert store.get("a") is None
        monkeypatch.delenv(FAULTS_ENV)
        _parse_cached.cache_clear()


class TestConcurrentWriters:
    def test_two_processes_interleave_without_loss(self, tmp_path):
        # Two writers race 40 puts each onto one root.  On reopen the
        # snapshot-driven view and a full rebuild scan must agree, and
        # every record from both writers must be present and intact.
        script = textwrap.dedent(
            """
            import sys
            from repro.runtime.store import SegmentStore
            root, tag = sys.argv[1], sys.argv[2]
            store = SegmentStore(root, segment_bytes=2048)
            for i in range(40):
                store.put(f"{tag}-{i:02d}", f"value-{tag}-{i:02d}".encode())
            store.close()
            """
        )
        children = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), tag],
                env=_child_env(),
            )
            for tag in ("a", "b")
        ]
        for child in children:
            assert child.wait(timeout=120) == 0
        expected = sorted(
            f"{tag}-{i:02d}" for tag in ("a", "b") for i in range(40)
        )
        from_snapshot = SegmentStore(tmp_path, segment_bytes=2048)
        assert from_snapshot.keys() == expected
        values = {key: from_snapshot.get(key) for key in expected}
        assert all(
            values[key] == f"value-{key}".encode() for key in expected
        )
        from_snapshot.close()
        # The index must agree with a full segment scan.
        (tmp_path / INDEX_NAME).unlink()
        rebuilt = SegmentStore(tmp_path, segment_bytes=2048)
        assert rebuilt.keys() == expected
        assert {key: rebuilt.get(key) for key in expected} == values
        assert rebuilt.health.quarantined == 0
        assert rebuilt.health.truncated == 0

    def test_single_root_shared_by_two_handles_in_process(self, tmp_path):
        # Same-process aliasing (two engine instances on one cache
        # root): appends interleave through the catch-up path.
        first = SegmentStore(tmp_path)
        second = SegmentStore(tmp_path)
        first.put("a", b"1")
        second.put("b", b"2")
        first.put("c", b"3")
        first.flush()
        second.refresh()
        assert second.get("a") == b"1"
        assert second.get("c") == b"3"
        assert SegmentStore(tmp_path).keys() == ["a", "b", "c"]


class TestMigration:
    def test_cache_migration_is_byte_identical(self, tmp_path):
        # Populate a legacy per-file root, migrate via the CLI, and
        # check every result is served byte-identically afterwards.
        results = {
            f"key{i:02d}": {"ber": i / 16.0, "evm": [i, i + 1]}
            for i in range(8)
        }
        for key, result in results.items():
            payload = {
                "schema_version": 1,
                "key": key,
                "spec": {"i": key},
                "result": result,
                "result_sha256": result_digest(result),
            }
            (tmp_path / f"{key}.json").write_text(json.dumps(payload))
        (tmp_path / "badkey.json").write_text("{torn legacy entry")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.runtime.store",
                "migrate",
                str(tmp_path),
            ],
            env=_child_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["kind"] == "cache"
        assert summary["legacy_entries"] == 9
        assert summary["migrated"] == 8
        assert summary["quarantined"] == 1
        assert summary["packed_entries"] == 8
        # No per-file entries left behind (only the packed index).
        assert [p.name for p in tmp_path.glob("*.json")] == [INDEX_NAME]
        cache = ResultCache(tmp_path)
        for key, result in results.items():
            served = cache.get(key)
            assert served == result
            assert json.dumps(served, sort_keys=True) == json.dumps(
                result, sort_keys=True
            )
        assert (tmp_path / "quarantine" / "badkey.json").exists()

    def test_checkpoint_migration_preserves_state_bytes(self, tmp_path):
        from repro.runtime.hashing import state_digest

        rng = np.random.default_rng(7)
        states = {
            f"ck{i}": {
                "w": rng.standard_normal((3, 2)),
                "b": rng.standard_normal(2),
            }
            for i in range(3)
        }
        digests = {}
        for key, state in states.items():
            payload = {
                "schema_version": 1,
                "key": key,
                "spec": {"k": key},
                "state_sha256": state_digest(state),
                "meta": {"tag": key},
            }
            np.savez(tmp_path / f"{key}.npz", **state)
            (tmp_path / f"{key}.json").write_text(json.dumps(payload))
            digests[key] = payload["state_sha256"]
        summary = migrate(tmp_path)
        assert summary["kind"] == "checkpoint"
        assert summary["migrated"] == 3
        assert summary["quarantined"] == 0
        assert list(tmp_path.glob("*.npz")) == []
        store = CheckpointStore(tmp_path)
        for key, state in states.items():
            loaded = store.get(key)
            assert loaded is not None
            assert loaded.state_sha256 == digests[key]
            assert loaded.meta == {"tag": key}
            for name in state:
                np.testing.assert_array_equal(loaded.state[name], state[name])

    def test_migrate_rejects_missing_root(self, tmp_path):
        with pytest.raises(ConfigurationError):
            migrate(tmp_path / "nope")


class TestKnobs:
    def test_segment_bytes_env(self, monkeypatch):
        from repro.runtime import knobs

        monkeypatch.delenv(knobs.STORE_SEGMENT_BYTES_ENV, raising=False)
        assert default_segment_bytes() == 64 * 1024 * 1024
        monkeypatch.setenv(knobs.STORE_SEGMENT_BYTES_ENV, "4096")
        assert default_segment_bytes() == 4096
        monkeypatch.setenv(knobs.STORE_SEGMENT_BYTES_ENV, "zero")
        with pytest.raises(ConfigurationError):
            default_segment_bytes()
        monkeypatch.setenv(knobs.STORE_SEGMENT_BYTES_ENV, "0")
        with pytest.raises(ConfigurationError):
            default_segment_bytes()

    def test_snapshot_every_env(self, monkeypatch):
        from repro.runtime import knobs

        monkeypatch.delenv(knobs.STORE_SNAPSHOT_EVERY_ENV, raising=False)
        assert default_snapshot_every() == 4096
        monkeypatch.setenv(knobs.STORE_SNAPSHOT_EVERY_ENV, "7")
        assert default_snapshot_every() == 7
        monkeypatch.setenv(knobs.STORE_SNAPSHOT_EVERY_ENV, "-1")
        with pytest.raises(ConfigurationError):
            default_snapshot_every()

    def test_snapshot_cadence_bounds_recovery(self, tmp_path):
        store = SegmentStore(tmp_path, snapshot_every=3)
        for i in range(7):
            store.put(f"k{i}", b"v")
        # Two snapshots happened (after puts 3 and 6); only the one
        # post-snapshot record needs recovery on reopen.
        reopened = SegmentStore(tmp_path, snapshot_every=3)
        assert len(reopened) == 7
        assert reopened.health.recovered == 1


class TestWarmRerunAfterRecovery:
    def _scenario(self):
        from repro.config import SMOKE
        from repro.runtime import (
            Scenario,
            dot11,
            fidelity_to_dict,
            ideal,
            point,
        )

        return Scenario(
            name="store-recovery-unit",
            title="warm rerun after store recovery",
            fidelity=fidelity_to_dict(SMOKE),
            points=(
                point(
                    "802.11", "D1", dot11(), link={"snr_db": 20.0},
                    ber_samples=6,
                ),
                point(
                    "ideal", "D1", ideal(), link={"snr_db": 20.0},
                    ber_samples=6,
                ),
            ),
        )

    def test_warm_rerun_after_index_loss_is_byte_identical(self, tmp_path):
        # Acceptance: crash before the index publish, reopen, and the
        # warm rerun is byte-identical with ZERO recomputed points.
        from repro.runtime.engine import ExperimentEngine

        scenario = self._scenario()
        cold = ExperimentEngine(cache=ResultCache(tmp_path)).run(scenario)
        (tmp_path / INDEX_NAME).unlink()  # the "crash"
        warm = ExperimentEngine(cache=ResultCache(tmp_path)).run(scenario)
        assert warm.n_executed == 0  # zero link simulations
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )

    def test_warm_rerun_after_torn_tail_recomputes_only_the_tail(
        self, tmp_path
    ):
        from repro.runtime.engine import ExperimentEngine

        scenario = self._scenario()
        cache = ResultCache(tmp_path)
        cold = ExperimentEngine(cache=cache).run(scenario)
        # Tear the last committed record in half and lose the index —
        # the worst crash an appending writer can leave behind.
        (tmp_path / INDEX_NAME).unlink()
        (segment,) = (tmp_path / "segments").glob("*.seg")
        locations = sorted(
            loc for loc in cache._store._entries.values() if loc is not None
        )
        last = locations[-1]
        with open(segment, "r+b") as handle:
            handle.truncate(last.offset + last.length // 2)
        recovered = ResultCache(tmp_path)
        warm = ExperimentEngine(cache=recovered).run(scenario)
        assert recovered.health.truncated == 1
        assert warm.n_executed == 1  # only the torn point recomputed
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )
