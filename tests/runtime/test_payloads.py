"""Tests for the content-addressed payload store and chunked dispatch."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.executor import Task, _pack_wave, run_tasks
from repro.runtime.payloads import (
    PayloadRef,
    PayloadStore,
    clear_payload_cache,
    collect_refs,
    load_payload,
    resolve_refs,
)

PROBE_FN = "repro.runtime.tasks:payload_probe"


class TestPayloadStore:
    def test_intern_is_content_addressed(self):
        with PayloadStore() as store:
            a = np.arange(12.0)
            b = np.arange(12.0)  # equal content, distinct object
            ref_a = store.intern(a)
            ref_b = store.intern(b)
            assert ref_a == ref_b
            assert len(store) == 1

    def test_intern_identity_memo_skips_repickling(self):
        with PayloadStore() as store:
            blob = np.arange(5.0)
            assert store.intern(blob) == store.intern(blob)
            assert len(store) == 1

    def test_distinct_objects_distinct_refs(self):
        with PayloadStore() as store:
            ref_a = store.intern(np.arange(3.0))
            ref_b = store.intern(np.arange(4.0))
            assert ref_a != ref_b
            assert len(store) == 2

    def test_id_reuse_cannot_serve_stale_digest(self):
        """Equal-content objects stay referenced, so a dead object's id
        can never be recycled into a stale memo hit."""
        with PayloadStore() as store:
            refs = set()
            for _ in range(50):
                # Fresh equal arrays first (digest collision path), then
                # fresh distinct arrays reusing freed memory.
                refs.add(store.intern(np.zeros(64)).digest)
                refs.add(store.intern(np.random.default_rng(1).random(64)).digest)
            assert len(refs) == 2

    def test_resolve_nested_structures(self):
        with PayloadStore() as store:
            blob = np.arange(6.0)
            ref = store.intern(blob)
            params = {
                "scheme": {"model": ref, "bits": 7},
                "rows": [ref, 1, (ref, "x")],
                "plain": np.ones(2),
            }
            resolved = store.resolve(params)
            assert resolved["scheme"]["model"] is blob
            assert resolved["rows"][0] is blob
            assert resolved["rows"][2][0] is blob
            assert resolved["plain"] is params["plain"]

    def test_resolve_without_refs_returns_same_object(self):
        with PayloadStore() as store:
            params = {"a": 1, "b": [2, 3]}
            assert store.resolve(params) is params

    def test_collect_refs(self):
        ref = PayloadRef("d" * 64)
        assert collect_refs({"x": [1, (ref,)], "y": 2}) == {ref.digest}
        assert collect_refs({"x": 1}) == set()

    def test_spill_and_load(self, tmp_path):
        clear_payload_cache()
        store = PayloadStore(root=str(tmp_path))
        blob = np.random.default_rng(0).random((16, 4))
        ref = store.intern(blob)
        root = store.spill({ref.digest})
        assert root.startswith(str(tmp_path))
        assert os.path.exists(os.path.join(root, f"{ref.digest}.pkl"))
        loaded = load_payload(root, ref.digest)
        assert np.array_equal(loaded, blob)
        # Second spill is a no-op; second load is memoized.
        assert store.spill({ref.digest}) == root
        assert load_payload(root, ref.digest) is loaded
        store.close()
        assert not os.path.exists(root)
        clear_payload_cache()

    def test_closed_store_rejects_interning(self):
        store = PayloadStore()
        store.close()
        with pytest.raises(ConfigurationError):
            store.intern(np.arange(2.0))

    def test_resolve_refs_rebuilds_tuples(self):
        ref = PayloadRef("e" * 64)
        resolved = resolve_refs((1, ref), lambda r: "obj")
        assert resolved == (1, "obj")
        assert isinstance(resolved, tuple)


class TestChunkedDispatch:
    def _tasks(self, blob, n):
        return [
            Task(
                task_id=f"probe-{index:02d}",
                fn=PROBE_FN,
                params={"blob": blob, "row": index},
            )
            for index in range(n)
        ]

    def test_pack_wave_respects_shards_and_cap(self):
        tasks = [
            Task(task_id=f"t{i}", fn=PROBE_FN, params={}, shard=f"s{i % 2}")
            for i in range(6)
        ]
        params = {t.task_id: {} for t in tasks}
        messages = _pack_wave(tasks, params, n_workers=4)
        # Two shards -> two messages, each holding its shard in order.
        assert len(messages) == 2
        ids = [[item[0] for item in message] for message in messages]
        assert ids == [["t0", "t2", "t4"], ["t1", "t3", "t5"]]

    def test_pack_wave_bounds_messages_per_worker(self):
        """Large waves pack to at most 4 messages per worker (not 1 per
        task), leaving several chunks per worker for dynamic balancing."""
        tasks = [
            Task(task_id=f"t{i:02d}", fn=PROBE_FN, params={}) for i in range(50)
        ]
        params = {t.task_id: {} for t in tasks}
        messages = _pack_wave(tasks, params, n_workers=3)
        assert len(messages) == 12  # 4 * n_workers
        all_ids = sorted(item[0] for message in messages for item in message)
        assert all_ids == sorted(t.task_id for t in tasks)

    def test_pack_wave_small_wave_one_task_per_message(self):
        tasks = [
            Task(task_id=f"t{i}", fn=PROBE_FN, params={}) for i in range(5)
        ]
        params = {t.task_id: {} for t in tasks}
        messages = _pack_wave(tasks, params, n_workers=2)
        assert len(messages) == 5  # below the cap: one chunk per message

    def test_serial_resolves_interned_payloads_in_memory(self):
        blob = np.random.default_rng(1).random((8, 3))
        with PayloadStore() as store:
            ref = store.intern(blob)
            results = run_tasks(
                self._tasks(ref, 4), n_workers=1, payloads=store
            )
            # Serial execution never spills to disk.
            assert store._spool is None
        inline = run_tasks(self._tasks(blob, 4), n_workers=1)
        assert results == inline

    def test_pool_workers_byte_identical_with_interning(self):
        """1 vs 4 workers through the interned-payload path: same bytes."""
        blob = np.random.default_rng(2).random((32, 8))

        def run(n_workers):
            with PayloadStore() as store:
                return run_tasks(
                    self._tasks(store.intern(blob), 12),
                    n_workers=n_workers,
                    payloads=store,
                )

        serial = run(1)
        pooled = run(4)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )
        # And both equal the no-interning reference execution.
        inline = run_tasks(self._tasks(blob, 12), n_workers=1)
        assert json.dumps(inline, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_pool_spills_once_per_payload(self):
        blob = np.random.default_rng(3).random((16, 4))
        with PayloadStore() as store:
            ref = store.intern(blob)
            run_tasks(self._tasks(ref, 6), n_workers=2, payloads=store)
            spool = store._spool
            assert spool is not None
            files = [f for f in os.listdir(spool) if f.endswith(".pkl")]
            assert files == [f"{ref.digest}.pkl"]
