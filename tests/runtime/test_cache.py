"""Tests for content addressing and the result cache."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.hashing import canonical_json, code_version, task_key


class TestHashing:
    def test_canonical_json_order_invariant(self):
        assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == canonical_json(
            {"a": {"c": 3, "d": 2}, "b": 1}
        )

    def test_canonical_json_rejects_non_json(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": object()})
        with pytest.raises(ConfigurationError):
            canonical_json({"x": float("nan")})

    def test_task_key_stable_and_spec_sensitive(self):
        spec = {"dataset": {"id": "D1", "seed": 7}, "scheme": {"kind": "dot11"}}
        reordered = {
            "scheme": {"kind": "dot11"},
            "dataset": {"seed": 7, "id": "D1"},
        }
        assert task_key(spec) == task_key(reordered)
        assert task_key(spec) != task_key({**spec, "ber_samples": 5})

    def test_task_key_embeds_code_version(self):
        spec = {"a": 1}
        assert task_key(spec, "v1") != task_key(spec, "v2")
        # Default version is this checkout's digest, cached per process.
        assert task_key(spec) == task_key(spec, code_version())
        assert len(code_version()) == 64


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = task_key({"x": 1}, "v")
        assert cache.get(key) is None
        cache.put(key, {"x": 1}, {"ber": 0.25})
        assert cache.get(key) == {"ber": 0.25}
        assert cache.keys() == [key]
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key({"x": 2}, "v")
        cache.put(key, {"x": 2}, {"ber": 0.5})
        cache.path(key).write_text("{not json")
        assert cache.get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        # A renamed/copied file must not serve a result for the wrong key.
        cache = ResultCache(tmp_path)
        key = task_key({"x": 3}, "v")
        other = task_key({"x": 4}, "v")
        cache.put(key, {"x": 3}, {"ber": 0.125})
        cache.path(other).write_text(cache.path(key).read_text())
        assert cache.get(other) is None

    def test_entry_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key({"x": 5}, "v")
        path = cache.put(key, {"x": 5}, {"ber": 0.0})
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        assert payload["key"] == key
        assert payload["spec"] == {"x": 5}

    def test_prune(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [task_key({"x": i}, "v") for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, {"x": i}, i)
        assert cache.prune(keys[:1]) == 2
        assert cache.keys() == sorted(keys[:1])

    def test_empty_root_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache("")
