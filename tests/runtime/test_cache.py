"""Tests for content addressing and the result cache."""

from __future__ import annotations

import json

import pytest

import subprocess
import sys

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.hashing import canonical_json, code_version, task_key


def dead_pid() -> int:
    """A pid guaranteed to belong to no running process."""
    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    return proc.pid


def backdate(path) -> None:
    """Age a file past the sweep's young-writer grace period."""
    import os
    import time

    old = time.time() - 3600.0
    os.utime(path, (old, old))


class TestHashing:
    def test_canonical_json_order_invariant(self):
        assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == canonical_json(
            {"a": {"c": 3, "d": 2}, "b": 1}
        )

    def test_canonical_json_rejects_non_json(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": object()})
        with pytest.raises(ConfigurationError):
            canonical_json({"x": float("nan")})

    def test_task_key_stable_and_spec_sensitive(self):
        spec = {"dataset": {"id": "D1", "seed": 7}, "scheme": {"kind": "dot11"}}
        reordered = {
            "scheme": {"kind": "dot11"},
            "dataset": {"seed": 7, "id": "D1"},
        }
        assert task_key(spec) == task_key(reordered)
        assert task_key(spec) != task_key({**spec, "ber_samples": 5})

    def test_task_key_embeds_code_version(self):
        spec = {"a": 1}
        assert task_key(spec, "v1") != task_key(spec, "v2")
        # Default version is this checkout's digest, cached per process.
        assert task_key(spec) == task_key(spec, code_version())
        assert len(code_version()) == 64

    def test_task_key_kind_namespaces(self):
        # Checkpoint keys must never collide with result-cache keys for
        # the same spec; kind=None keeps the original addresses.
        spec = {"a": 1}
        assert task_key(spec, "v") != task_key(spec, "v", kind="train")
        assert task_key(spec, "v", kind="train") != task_key(
            spec, "v", kind="other"
        )
        assert task_key(spec, "v", kind="train") == task_key(
            spec, "v", kind="train"
        )

    def test_state_digest_covers_names_shapes_and_bytes(self):
        import numpy as np

        from repro.runtime.hashing import state_digest

        state = {"p0.w": np.arange(6.0).reshape(2, 3), "p1.b": np.ones(2)}
        same = {k: v.copy() for k, v in state.items()}
        assert state_digest(state) == state_digest(same)
        renamed = {"p0.x": state["p0.w"], "p1.b": state["p1.b"]}
        assert state_digest(state) != state_digest(renamed)
        reshaped = {
            "p0.w": state["p0.w"].reshape(3, 2),
            "p1.b": state["p1.b"],
        }
        assert state_digest(state) != state_digest(reshaped)
        perturbed = {k: v.copy() for k, v in state.items()}
        perturbed["p1.b"][0] += 1e-12
        assert state_digest(state) != state_digest(perturbed)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = task_key({"x": 1}, "v")
        assert cache.get(key) is None
        cache.put(key, {"x": 1}, {"ber": 0.25})
        assert cache.get(key) == {"ber": 0.25}
        assert cache.keys() == [key]
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        # Flip a byte inside the committed record: the CRC check must
        # catch it, quarantine the entry, and report a miss.
        cache = ResultCache(tmp_path)
        key = task_key({"x": 2}, "v")
        segment = cache.put(key, {"x": 2}, {"ber": 0.5})
        location = cache._store._entries[key]
        with open(segment, "r+b") as handle:
            handle.seek(location.offset + location.length - 1)
            handle.write(b"\xff")  # last value byte is JSON's "}"
        assert cache.get(key) is None
        assert cache.health.quarantined == 1
        assert cache.keys() == []

    def test_key_mismatch_is_a_miss(self, tmp_path):
        # An index entry pointing at another key's record (snapshot
        # corruption) must not serve a result for the wrong key.
        cache = ResultCache(tmp_path)
        key = task_key({"x": 3}, "v")
        other = task_key({"x": 4}, "v")
        cache.put(key, {"x": 3}, {"ber": 0.125})
        cache._store._entries[other] = cache._store._entries[key]
        assert cache.get(other) is None
        assert cache.health.quarantined == 1
        assert cache.get(key) == {"ber": 0.125}

    def test_entry_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key({"x": 5}, "v")
        cache.put(key, {"x": 5}, {"ber": 0.0})
        payload = json.loads(cache._store.get(key).decode())
        assert payload["schema_version"] == 1
        assert payload["key"] == key
        assert payload["spec"] == {"x": 5}

    def test_legacy_entry_absorbed_on_first_get(self, tmp_path):
        # Pre-packed roots hold one <key>.json per entry; get must
        # serve it byte-identically, pack it, and retire the file.
        from repro.runtime.cache import result_digest

        cache = ResultCache(tmp_path)
        key = task_key({"x": 6}, "v")
        payload = {
            "schema_version": 1,
            "key": key,
            "spec": {"x": 6},
            "result": {"ber": 0.0625},
            "result_sha256": result_digest({"ber": 0.0625}),
        }
        cache.path(key).write_text(json.dumps(payload))
        assert cache.keys() == [key]  # visible before absorption
        assert cache.get(key) == {"ber": 0.0625}
        assert not cache.path(key).exists()
        reopened = ResultCache(tmp_path)
        assert reopened.get(key) == {"ber": 0.0625}

    def test_corrupt_legacy_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key({"x": 7}, "v")
        cache.path(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.health.quarantined == 1
        assert (tmp_path / "quarantine" / f"{key}.json").exists()
        assert cache.keys() == []

    def test_prune(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [task_key({"x": i}, "v") for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, {"x": i}, i)
        assert cache.prune(keys[:1]) == 2
        assert cache.keys() == sorted(keys[:1])

    def test_prune_sweeps_stale_tmp_files(self, tmp_path):
        # A writer that crashes between write_text and os.replace leaves
        # a <key>.tmp.<pid> file that no key ever addresses; prune must
        # clear those alongside dead entries.
        cache = ResultCache(tmp_path)
        key = task_key({"x": 1}, "v")
        cache.put(key, {"x": 1}, {"ber": 0.5})
        gone = dead_pid()
        stale = tmp_path / f"{key}.tmp.{gone}"
        stale.write_text("{interrupted")
        other = tmp_path / f"deadbeef.tmp.{gone}"
        other.write_text("{interrupted")
        backdate(stale)
        backdate(other)
        assert cache.prune([key]) == 2
        assert not stale.exists() and not other.exists()
        assert cache.get(key) == {"ber": 0.5}

    def test_prune_spares_recent_tmp_files(self, tmp_path):
        # A dead-pid temp file younger than the grace period could be a
        # live writer on another host sharing the root; it stays until
        # it has aged.
        cache = ResultCache(tmp_path)
        key = task_key({"x": 11}, "v")
        cache.put(key, {"x": 11}, 1)
        young = tmp_path / f"{key}.tmp.{dead_pid()}"
        young.write_text("{mid-write elsewhere}")
        assert cache.prune([key]) == 0
        assert young.exists()
        backdate(young)
        assert cache.prune([key]) == 1
        assert not young.exists()

    def test_first_put_sweeps_stale_tmp_once_per_root(self, tmp_path):
        # The first put a process makes into a root clears crashed
        # writers' leftovers; later puts skip the directory scan (the
        # hot path pays O(1), prune still sweeps unconditionally).
        cache = ResultCache(tmp_path)
        key = task_key({"x": 2}, "v")
        gone = dead_pid()
        stale = tmp_path / f"{key}.tmp.{gone}"
        stale.write_text("{interrupted")
        other = tmp_path / f"deadbeef.tmp.{gone}"
        other.write_text("{interrupted")
        backdate(stale)
        backdate(other)
        cache.put(key, {"x": 2}, {"ber": 0.25})
        assert not stale.exists() and not other.exists()
        assert cache.get(key) == {"ber": 0.25}
        # New residue after the first put stays until prune runs.
        late = tmp_path / f"deadbeef.tmp.{gone}"
        late.write_text("{interrupted")
        backdate(late)
        cache.put(task_key({"x": 22}, "v"), {"x": 22}, 1)
        assert late.exists()
        cache.prune(cache.keys())
        assert not late.exists()

    def test_sweep_spares_live_writers(self, tmp_path):
        # The pid baked into a temp name marks its writer; a file whose
        # writer is still running is an in-flight atomic write, not
        # residue — neither put nor prune may delete it.
        cache = ResultCache(tmp_path)
        key = task_key({"x": 9}, "v")
        live = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(30)"]
        )
        try:
            other_writer = tmp_path / f"{key}.tmp.{live.pid}"
            other_writer.write_text("{mid-write")
            backdate(other_writer)  # old, but its writer is still alive
            cache.put(key, {"x": 9}, {"ber": 0.125})
            assert other_writer.exists()
            assert cache.prune([key]) == 0
            assert other_writer.exists()
        finally:
            live.kill()
            live.wait()
        # Once its writer is gone, prune reclaims it.
        assert cache.prune([key]) == 1
        assert not other_writer.exists()

    def test_tmp_files_are_not_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key({"x": 3}, "v")
        cache.put(key, {"x": 3}, 1)
        (tmp_path / f"{key}.tmp.4242").write_text("{interrupted")
        assert cache.keys() == [key]
        assert len(cache) == 1

    def test_empty_root_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache("")
