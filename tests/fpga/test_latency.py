"""Tests for the FPGA latency model against the paper's Table III."""

import pytest

from repro.errors import ConfigurationError
from repro.core.model import SplitBeamNet
from repro.fpga import (
    ZYNQ_ULTRASCALE_XCZU9EG,
    FpgaTarget,
    model_latency_s,
    splitbeam_latency_s,
    table3_latency_s,
)

#: The paper's Table III, milliseconds.
PAPER_TABLE3_MS = {
    (2, 20): 0.0202, (2, 40): 0.0824, (2, 80): 0.3686, (2, 160): 1.477,
    (3, 20): 0.0459, (3, 40): 0.1867, (3, 80): 0.8337, (3, 160): 3.314,
    (4, 20): 0.0808, (4, 40): 0.3298, (4, 80): 1.4782, (4, 160): 5.883,
}


class TestTable3Reproduction:
    @pytest.mark.parametrize("cell", sorted(PAPER_TABLE3_MS))
    def test_within_three_percent_of_paper(self, cell):
        mimo, bandwidth = cell
        ours_ms = table3_latency_s(mimo, bandwidth) * 1e3
        assert ours_ms == pytest.approx(PAPER_TABLE3_MS[cell], rel=0.03)

    def test_bandwidth_doubling_quadruples_latency(self):
        """The paper: 'by doubling the bandwidth, the latency ... increases
        by about 4 times on the average'."""
        ratios = []
        for mimo in (2, 3, 4):
            for low, high in ((20, 40), (40, 80), (80, 160)):
                ratios.append(
                    table3_latency_s(mimo, high) / table3_latency_s(mimo, low)
                )
        average = sum(ratios) / len(ratios)
        assert average == pytest.approx(4.0, rel=0.1)

    def test_worst_case_below_10ms(self):
        assert table3_latency_s(4, 160) < 10e-3

    def test_latency_monotone_in_mimo(self):
        for bandwidth in (20, 40, 80, 160):
            values = [table3_latency_s(n, bandwidth) for n in (2, 3, 4)]
            assert values == sorted(values)


class TestModel:
    def test_zero_macs_is_pipeline_only(self):
        target = ZYNQ_ULTRASCALE_XCZU9EG
        assert model_latency_s(0) == pytest.approx(
            target.pipeline_depth_cycles / target.clock_hz
        )

    def test_custom_target(self):
        fast = FpgaTarget("fast", clock_hz=400e6, macs_per_cycle=12.6)
        assert model_latency_s(10_000, fast) < model_latency_s(10_000)

    def test_splitbeam_model_latency(self):
        net = SplitBeamNet([224, 56, 224], rng=0)
        latency = splitbeam_latency_s(net)
        assert latency == pytest.approx(PAPER_TABLE3_MS[(2, 20)] * 1e-3, rel=0.05)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            model_latency_s(-1)
        with pytest.raises(ConfigurationError):
            FpgaTarget("bad", clock_hz=0.0, macs_per_cycle=1.0)
        with pytest.raises(ConfigurationError):
            table3_latency_s(0, 20)
