"""Tests for LLR demapping, soft Viterbi, RZF, and the extended TX chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.phy.coding import bcc_rate_half
from repro.phy.link import LinkConfig, LinkSimulator
from repro.phy.modulation import QamModem
from repro.phy.precoding import (
    interference_leakage,
    normalize_columns,
    regularized_zero_forcing,
    zero_forcing,
)


def random_channels(n_samples, n_users, n_sc, n_rx, n_tx, seed=0):
    rng = np.random.default_rng(seed)
    shape = (n_samples, n_users, n_sc, n_rx, n_tx)
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)


class TestLlr:
    def test_sign_matches_hard_decision_qpsk(self):
        modem = QamModem(4)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=200)
        symbols = modem.modulate(bits)
        llrs = modem.llr(symbols, noise_power=0.1)
        hard_from_llr = (llrs < 0).astype(np.int64)
        np.testing.assert_array_equal(hard_from_llr, bits)

    def test_sign_matches_hard_decision_16qam(self):
        modem = QamModem(16)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=400)
        noisy = modem.modulate(bits) + 0.01 * (
            rng.standard_normal(100) + 1j * rng.standard_normal(100)
        )
        llrs = modem.llr(noisy, noise_power=0.01)
        np.testing.assert_array_equal(
            (llrs < 0).astype(np.int64), modem.demodulate(noisy)
        )

    def test_magnitude_scales_with_confidence(self):
        modem = QamModem(4)
        clean = modem.modulate(np.array([0, 0]))
        boundary = np.array([0.0 + 0.0j])  # equidistant from everything
        llr_clean = modem.llr(clean, 0.1)
        llr_edge = modem.llr(boundary, 0.1)
        assert np.min(np.abs(llr_clean)) > np.max(np.abs(llr_edge))

    def test_per_symbol_noise_array(self):
        modem = QamModem(4)
        symbols = modem.modulate(np.array([0, 0, 1, 1]))
        llrs = modem.llr(symbols, noise_power=np.array([0.1, 10.0]))
        # The noisier symbol's LLRs shrink by the noise ratio.
        assert np.all(np.abs(llrs[:2]) > np.abs(llrs[2:]) * 50)

    def test_nonpositive_noise_rejected(self):
        modem = QamModem(4)
        with pytest.raises(ShapeError):
            modem.llr(np.array([1 + 1j]), 0.0)


class TestSoftViterbi:
    def test_noiseless_llrs_decode_exactly(self):
        code = bcc_rate_half()
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=120)
        coded = code.encode(bits)
        llrs = (1.0 - 2.0 * coded) * 5.0  # strong correct beliefs
        np.testing.assert_array_equal(code.decode_soft(llrs), bits)

    def test_soft_beats_hard_at_moderate_noise(self):
        """Soft decisions should produce no more errors than hard ones."""
        code = bcc_rate_half()
        modem = QamModem(4)
        rng = np.random.default_rng(3)
        n_info = 200
        noise_power = 0.45
        soft_errors = 0
        hard_errors = 0
        for trial in range(20):
            bits = rng.integers(0, 2, size=n_info)
            coded = code.encode(bits)
            symbols = modem.modulate(coded)
            noisy = symbols + np.sqrt(noise_power / 2) * (
                rng.standard_normal(symbols.size)
                + 1j * rng.standard_normal(symbols.size)
            )
            llrs = modem.llr(noisy, noise_power)
            soft_errors += int(np.sum(code.decode_soft(llrs) != bits))
            hard_errors += int(np.sum(code.decode(modem.demodulate(noisy)) != bits))
        assert soft_errors <= hard_errors
        assert hard_errors > 0  # the operating point actually stresses the code

    def test_bad_llr_length(self):
        code = bcc_rate_half()
        with pytest.raises(ShapeError):
            code.decode_soft(np.ones(7))

    def test_too_short_codeword(self):
        code = bcc_rate_half()
        with pytest.raises(ShapeError):
            code.decode_soft(np.ones(4))


class TestRegularizedZeroForcing:
    def test_high_power_limit_is_zf(self):
        rng = np.random.default_rng(4)
        h = rng.standard_normal((4, 3)) + 1j * rng.standard_normal((4, 3))
        rzf = regularized_zero_forcing(h, noise_power=1e-12)
        zf = zero_forcing(h)
        np.testing.assert_allclose(rzf, zf, atol=1e-6)

    def test_regularization_reduces_precoder_norm(self):
        """Near-collinear users blow up ZF; RZF stays bounded."""
        rng = np.random.default_rng(5)
        base = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        h = np.stack([base, base + 0.01 * rng.standard_normal(4)], axis=1)
        zf_norm = np.linalg.norm(zero_forcing(h))
        rzf_norm = np.linalg.norm(regularized_zero_forcing(h, noise_power=0.1))
        assert rzf_norm < zf_norm / 10

    def test_rzf_leaks_at_finite_snr(self):
        rng = np.random.default_rng(6)
        h = rng.standard_normal((4, 2)) + 1j * rng.standard_normal((4, 2))
        w = normalize_columns(regularized_zero_forcing(h, noise_power=0.5))
        assert interference_leakage(h, w) > 0

    def test_invalid_arguments(self):
        h = np.eye(2, dtype=np.complex128)
        with pytest.raises(ShapeError):
            regularized_zero_forcing(h, noise_power=-1.0)
        with pytest.raises(ShapeError):
            regularized_zero_forcing(h, noise_power=0.1, total_power=0.0)
        with pytest.raises(ShapeError):
            regularized_zero_forcing(np.zeros(3), noise_power=0.1)


class TestLinkConfigOptions:
    def test_soft_requires_coding(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(soft_decoding=True, use_coding=False)

    def test_interleaver_requires_coding(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(use_interleaver=True, use_coding=False)

    def test_unknown_precoder(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(precoder="dirty-paper")


class TestLinkChainEndToEnd:
    """The full chain stays correct under every option combination."""

    @pytest.mark.parametrize(
        "config",
        [
            LinkConfig(snr_db=30.0),
            LinkConfig(snr_db=30.0, use_scrambler=True),
            LinkConfig(snr_db=30.0, use_coding=True, n_ofdm_symbols=2),
            LinkConfig(
                snr_db=30.0,
                use_coding=True,
                use_interleaver=True,
                use_scrambler=True,
                n_ofdm_symbols=2,
            ),
            LinkConfig(
                snr_db=30.0,
                use_coding=True,
                soft_decoding=True,
                n_ofdm_symbols=2,
            ),
            LinkConfig(snr_db=30.0, precoder="rzf"),
        ],
        ids=["plain", "scrambled", "coded", "full-chain", "soft", "rzf"],
    )
    def test_ideal_feedback_near_zero_ber(self, config):
        channels = random_channels(3, 2, 56, 1, 2, seed=7)
        result = LinkSimulator(config).measure_ber_ideal(channels)
        assert result.ber < 0.02

    def test_soft_not_worse_than_hard_in_link(self):
        channels = random_channels(4, 2, 56, 1, 2, seed=8)
        hard = LinkSimulator(
            LinkConfig(snr_db=9.0, use_coding=True, n_ofdm_symbols=2)
        ).measure_ber_ideal(channels)
        soft = LinkSimulator(
            LinkConfig(
                snr_db=9.0, use_coding=True, soft_decoding=True, n_ofdm_symbols=2
            )
        ).measure_ber_ideal(channels)
        assert soft.ber <= hard.ber + 0.01

    def test_rzf_not_worse_at_low_snr(self):
        """At low SNR, RZF should not lose to pure ZF."""
        channels = random_channels(4, 2, 28, 1, 2, seed=9)
        zf = LinkSimulator(LinkConfig(snr_db=3.0)).measure_ber_ideal(channels)
        rzf = LinkSimulator(
            LinkConfig(snr_db=3.0, precoder="rzf")
        ).measure_ber_ideal(channels)
        assert rzf.ber <= zf.ber + 0.02

    def test_measure_metrics_shapes_and_sanity(self):
        channels = random_channels(2, 2, 16, 1, 2, seed=10)
        sim = LinkSimulator(LinkConfig(snr_db=20.0))
        from repro.phy.svd import beamforming_matrices

        bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        metrics = sim.measure_metrics(channels, bf)
        assert metrics.leakage < 1e-10  # exact feedback -> perfect nulling
        assert metrics.mean_sinr_db > 10.0
        assert metrics.sum_rate_bps_per_hz > 0

    def test_degraded_feedback_raises_leakage(self):
        channels = random_channels(2, 2, 16, 1, 2, seed=11)
        from repro.phy.svd import beamforming_matrices

        bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        rng = np.random.default_rng(12)
        noisy_bf = bf + 0.2 * (
            rng.standard_normal(bf.shape) + 1j * rng.standard_normal(bf.shape)
        )
        sim = LinkSimulator(LinkConfig(snr_db=20.0))
        clean = sim.measure_metrics(channels, bf)
        dirty = sim.measure_metrics(channels, noisy_bf)
        assert dirty.leakage > clean.leakage
        assert dirty.sum_rate_bps_per_hz < clean.sum_rate_bps_per_hz
