"""Tests for the end-to-end MU-MIMO BER link simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.phy.link import BerResult, LinkConfig, LinkSimulator
from repro.phy.svd import beamforming_matrices


def random_channels(rng, n_samples=6, n_users=2, n_sc=16, n_rx=1, n_tx=2):
    shape = (n_samples, n_users, n_sc, n_rx, n_tx)
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)


class TestLinkSimulator:
    def test_ideal_feedback_low_ber_at_high_snr(self, rng):
        channels = random_channels(rng)
        sim = LinkSimulator(LinkConfig(snr_db=35.0))
        result = sim.measure_ber_ideal(channels, rng=0)
        assert result.ber < 0.01

    def test_random_feedback_high_ber(self, rng):
        channels = random_channels(rng)
        bad_bf = rng.standard_normal((6, 2, 16, 2)) + 1j * rng.standard_normal(
            (6, 2, 16, 2)
        )
        sim = LinkSimulator(LinkConfig(snr_db=35.0))
        result = sim.measure_ber(channels, bad_bf, rng=0)
        assert result.ber > 0.1

    def test_ber_monotone_in_snr(self, rng):
        channels = random_channels(rng, n_samples=10)
        bers = []
        for snr in (5.0, 15.0, 30.0):
            sim = LinkSimulator(LinkConfig(snr_db=snr))
            bers.append(sim.measure_ber_ideal(channels, rng=0).ber)
        assert bers[0] > bers[1] >= bers[2]

    def test_perturbed_feedback_degrades_gracefully(self, rng):
        channels = random_channels(rng, n_samples=10)
        bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        sim = LinkSimulator(LinkConfig(snr_db=25.0))
        clean = sim.measure_ber(channels, bf, rng=0).ber
        noisy_bf = bf + 0.3 * (
            rng.standard_normal(bf.shape) + 1j * rng.standard_normal(bf.shape)
        )
        noisy = sim.measure_ber(channels, noisy_bf, rng=0).ber
        assert noisy > clean

    def test_coding_reduces_ber(self, rng):
        channels = random_channels(rng, n_samples=10, n_sc=32)
        bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        # Moderate SNR so the uncoded link makes errors.
        uncoded = LinkSimulator(LinkConfig(snr_db=12.0)).measure_ber(
            channels, bf, rng=0
        )
        coded = LinkSimulator(
            LinkConfig(snr_db=12.0, use_coding=True, n_ofdm_symbols=2)
        ).measure_ber(channels, bf, rng=0)
        assert uncoded.ber > 0.0
        assert coded.ber < uncoded.ber

    def test_result_bookkeeping(self, rng):
        channels = random_channels(rng, n_samples=3)
        sim = LinkSimulator(LinkConfig(snr_db=20.0))
        result = sim.measure_ber_ideal(channels, rng=0)
        assert isinstance(result, BerResult)
        # 16-QAM over 16 subcarriers x 1 symbol = 64 bits/user/sample.
        assert result.total_bits == 3 * 2 * 16 * 4
        assert result.per_user_ber.shape == (2,)
        assert 0.0 <= result.ber <= 1.0

    def test_deterministic_given_seed(self, rng):
        channels = random_channels(rng)
        sim = LinkSimulator(LinkConfig(snr_db=15.0))
        a = sim.measure_ber_ideal(channels, rng=3).ber
        b = sim.measure_ber_ideal(channels, rng=3).ber
        assert a == b

    def test_three_user_network(self, rng):
        channels = random_channels(rng, n_users=3, n_tx=3)
        sim = LinkSimulator(LinkConfig(snr_db=30.0))
        result = sim.measure_ber_ideal(channels, rng=0)
        assert result.per_user_ber.shape == (3,)
        assert result.ber < 0.05

    def test_shape_validation(self, rng):
        channels = random_channels(rng)
        sim = LinkSimulator()
        with pytest.raises(ShapeError):
            sim.measure_ber(channels, np.zeros((6, 2, 16, 3)))
        with pytest.raises(ShapeError):
            sim.measure_ber(channels[0], np.zeros((2, 16, 2)))

    def test_more_users_than_antennas_rejected(self, rng):
        channels = random_channels(rng, n_users=3, n_tx=2)
        with pytest.raises(ShapeError):
            LinkSimulator().measure_ber(
                channels, np.zeros((6, 3, 16, 2), dtype=complex)
            )

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(n_ofdm_symbols=0)

    def test_coded_grid_too_small_rejected(self, rng):
        channels = random_channels(rng, n_sc=2)
        bf = beamforming_matrices(channels, n_streams=1)[..., 0]
        sim = LinkSimulator(LinkConfig(use_coding=True, n_ofdm_symbols=1))
        with pytest.raises(ConfigurationError):
            sim.measure_ber(channels, bf)
