"""Tests for NDP/VHT-LTF channel estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.phy.estimation import (
    NdpObservation,
    estimate_channel,
    estimation_nmse,
    ltf_sequence,
    p_matrix,
    transmit_ndp,
)


def random_channel(n_sc=16, n_rx=2, n_tx=2, seed=0):
    rng = np.random.default_rng(seed)
    shape = (n_sc, n_rx, n_tx)
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)


class TestPMatrix:
    @pytest.mark.parametrize("n_streams", [1, 2, 3, 4])
    def test_rows_orthogonal_with_norm_nltf(self, n_streams):
        p = p_matrix(n_streams)
        n_ltf = p.shape[1]
        gram = p @ p.T
        np.testing.assert_allclose(gram, n_ltf * np.eye(n_streams))

    def test_entries_are_signs(self):
        for n in (1, 2, 3, 4):
            assert np.all(np.abs(p_matrix(n)) == 1.0)

    def test_three_streams_use_four_ltfs(self):
        assert p_matrix(3).shape == (3, 4)

    def test_unsupported_count(self):
        with pytest.raises(ConfigurationError):
            p_matrix(5)
        with pytest.raises(ConfigurationError):
            p_matrix(0)


class TestLtfSequence:
    def test_bpsk_values(self):
        seq = ltf_sequence(56)
        assert np.all(np.abs(seq) == 1.0)

    def test_deterministic(self):
        np.testing.assert_array_equal(ltf_sequence(56), ltf_sequence(56))

    def test_distinct_lengths_distinct_sequences(self):
        assert not np.array_equal(ltf_sequence(56)[:40], ltf_sequence(40))

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            ltf_sequence(0)


class TestEstimation:
    @pytest.mark.parametrize("n_tx", [1, 2, 3, 4])
    def test_noiseless_estimation_exact(self, n_tx):
        channel = random_channel(n_sc=8, n_rx=2, n_tx=n_tx, seed=n_tx)
        observation = transmit_ndp(channel, snr_db=300.0, rng=0)
        estimate = estimate_channel(observation)
        np.testing.assert_allclose(estimate, channel, atol=1e-10)

    def test_nmse_scales_inversely_with_snr(self):
        channel = random_channel(n_sc=64, n_rx=2, n_tx=2, seed=1)
        nmse = {}
        for snr_db in (10.0, 20.0):
            observation = transmit_ndp(channel, snr_db=snr_db, rng=2)
            nmse[snr_db] = estimation_nmse(channel, estimate_channel(observation))
        ratio = nmse[10.0] / nmse[20.0]
        assert 5.0 < ratio < 20.0  # ~10x per 10 dB

    def test_ltf_averaging_gain(self):
        """4-stream estimation averages 4 LTFs: per-entry error variance
        matches N0 / n_ltf within statistical tolerance."""
        channel = random_channel(n_sc=128, n_rx=1, n_tx=4, seed=3)
        observation = transmit_ndp(channel, snr_db=10.0, rng=4)
        estimate = estimate_channel(observation)
        error_var = float(np.mean(np.abs(estimate - channel) ** 2))
        expected = observation.noise_power / 4.0
        assert error_var == pytest.approx(expected, rel=0.25)

    def test_estimate_shape(self):
        channel = random_channel(n_sc=8, n_rx=3, n_tx=2, seed=5)
        estimate = estimate_channel(transmit_ndp(channel, rng=6))
        assert estimate.shape == channel.shape

    def test_inconsistent_observation_rejected(self):
        bad = NdpObservation(
            received=np.zeros((3, 8, 2), dtype=np.complex128),
            n_streams=2,  # 2 streams need exactly 2 LTFs, not 3
            noise_power=0.1,
        )
        with pytest.raises(ShapeError):
            estimate_channel(bad)

    def test_bad_channel_shape_rejected(self):
        with pytest.raises(ShapeError):
            transmit_ndp(np.zeros((4, 4)), snr_db=20.0)


class TestNmse:
    def test_zero_for_identical(self):
        h = random_channel(seed=7)
        assert estimation_nmse(h, h) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            estimation_nmse(np.zeros((2, 2, 2)), np.zeros((2, 2, 3)))

    def test_zero_channel_infinite(self):
        assert estimation_nmse(
            np.zeros((2, 2, 2)), np.ones((2, 2, 2))
        ) == float("inf")
