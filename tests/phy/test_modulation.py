"""Tests for Gray-mapped QAM modulation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.phy.modulation import QamModem

ORDERS = (2, 4, 16, 64, 256)


@pytest.mark.parametrize("order", ORDERS)
class TestPerOrder:
    def test_unit_average_energy(self, order):
        modem = QamModem(order)
        energy = np.mean(np.abs(modem.constellation) ** 2)
        assert energy == pytest.approx(1.0, rel=1e-12)

    def test_round_trip_all_labels(self, order):
        modem = QamModem(order)
        bits_per = modem.bits_per_symbol
        labels = np.arange(order)
        bits = ((labels[:, None] >> np.arange(bits_per - 1, -1, -1)) & 1).reshape(-1)
        symbols = modem.modulate(bits)
        assert np.array_equal(modem.demodulate(symbols), bits)

    def test_constellation_points_distinct(self, order):
        modem = QamModem(order)
        points = modem.constellation
        distances = np.abs(points[:, None] - points[None, :])
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 1e-6

    def test_gray_mapping_single_bit_neighbours(self, order):
        """Nearest constellation neighbours differ in exactly one bit."""
        if order == 2:
            pytest.skip("BPSK has a single pair")
        modem = QamModem(order)
        points = modem.constellation
        distances = np.abs(points[:, None] - points[None, :])
        np.fill_diagonal(distances, np.inf)
        min_distance = distances.min()
        close = np.argwhere(np.isclose(distances, min_distance))
        for a, b in close:
            assert bin(int(a) ^ int(b)).count("1") == 1

    def test_small_noise_does_not_flip(self, order, rng):
        modem = QamModem(order)
        bits = rng.integers(0, 2, 48 * modem.bits_per_symbol)
        symbols = modem.modulate(bits)
        min_dist = np.inf
        points = modem.constellation
        for i in range(len(points)):
            others = np.delete(points, i)
            min_dist = min(min_dist, np.min(np.abs(points[i] - others)))
        noisy = symbols + (min_dist / 4) * np.exp(1j * rng.uniform(0, 2 * np.pi, symbols.shape))
        assert np.array_equal(modem.demodulate(noisy), bits)


@given(
    order=st.sampled_from(ORDERS),
    data=st.data(),
)
def test_round_trip_random_bits(order, data):
    modem = QamModem(order)
    n_symbols = data.draw(st.integers(min_value=1, max_value=64))
    bits = data.draw(
        st.lists(
            st.integers(0, 1),
            min_size=n_symbols * modem.bits_per_symbol,
            max_size=n_symbols * modem.bits_per_symbol,
        )
    )
    bits = np.asarray(bits)
    assert np.array_equal(modem.demodulate(modem.modulate(bits)), bits)


def test_invalid_order():
    with pytest.raises(ConfigurationError):
        QamModem(8)  # non-square, unsupported


def test_partial_symbol_rejected():
    with pytest.raises(ShapeError):
        QamModem(16).modulate(np.zeros(3))


def test_non_binary_bits_rejected():
    with pytest.raises(ShapeError):
        QamModem(4).modulate(np.array([0, 2]))


def test_symbol_count():
    assert QamModem(16).symbol_count(64) == 16
    with pytest.raises(ShapeError):
        QamModem(16).symbol_count(63)
