"""Tests for the 802.11 scrambler and BCC block interleaver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.phy.interleaver import BlockInterleaver
from repro.phy.scrambler import Scrambler, descramble, scramble


class TestScrambler:
    def test_sequence_has_full_period(self):
        """The 7-bit LFSR with x^7+x^4+1 is maximal length: period 127."""
        seq = Scrambler(seed=1).sequence
        assert seq.size == 127
        # A maximal-length sequence has 64 ones and 63 zeros.
        assert int(seq.sum()) == 64

    def test_involution(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=500)
        scrambler = Scrambler(seed=0b1011101)
        np.testing.assert_array_equal(
            scrambler.descramble(scrambler.scramble(bits)), bits
        )

    def test_different_seeds_differ(self):
        bits = np.zeros(127, dtype=np.int64)
        assert not np.array_equal(
            Scrambler(seed=1).scramble(bits), Scrambler(seed=2).scramble(bits)
        )

    def test_scrambling_whitens_constant_input(self):
        """An all-zero payload becomes the scrambling sequence itself."""
        out = Scrambler(seed=0b1011101).scramble(np.zeros(127, dtype=np.int64))
        assert 50 <= int(out.sum()) <= 77

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Scrambler(seed=0)

    def test_wide_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Scrambler(seed=128)

    def test_non_binary_rejected(self):
        with pytest.raises(ShapeError):
            Scrambler().scramble(np.array([0, 2]))

    def test_empty_input(self):
        assert Scrambler().scramble(np.array([], dtype=np.int64)).size == 0

    def test_functional_api_roundtrip(self):
        bits = np.random.default_rng(3).integers(0, 2, size=64)
        np.testing.assert_array_equal(descramble(scramble(bits, 5), 5), bits)

    @given(
        seed=st.integers(min_value=1, max_value=127),
        n=st.integers(min_value=0, max_value=400),
    )
    def test_involution_property(self, seed, n):
        bits = np.random.default_rng(n).integers(0, 2, size=n)
        np.testing.assert_array_equal(
            scramble(descramble(bits, seed), seed), bits
        )


class TestInterleaver:
    def test_permutation_is_bijection(self):
        il = BlockInterleaver(n_cbps=224, n_bpsc=4)
        assert np.unique(il.permutation).size == 224

    def test_roundtrip_identity(self):
        il = BlockInterleaver(n_cbps=224, n_bpsc=4)
        bits = np.random.default_rng(0).integers(0, 2, size=224 * 3)
        np.testing.assert_array_equal(il.deinterleave(il.interleave(bits)), bits)

    def test_interleave_actually_permutes(self):
        il = BlockInterleaver(n_cbps=224, n_bpsc=4)
        bits = np.arange(224)
        assert not np.array_equal(il.interleave(bits), bits)

    def test_adjacent_bits_spread_across_tones(self):
        """Consecutive coded bits land >= n_cbps/16 - s positions apart."""
        il = BlockInterleaver(n_cbps=224, n_bpsc=4)
        out_positions = il.permutation
        gaps = np.abs(np.diff(out_positions[:16]))
        assert np.min(gaps) >= 224 // 16 - 2

    def test_burst_spread_beats_identity(self):
        il = BlockInterleaver(n_cbps=224, n_bpsc=4)
        # An un-interleaved stream has burst spread 1 by definition.
        assert il.burst_spread(4) > 1

    def test_for_symbol_paper_bands(self):
        """All three paper tone counts get a usable geometry."""
        for n_sc, expected_cols in [(56, 16), (114, 12), (242, 11)]:
            il = BlockInterleaver.for_symbol(n_sc, 4)
            assert il.n_cbps == n_sc * 4
            assert il.n_columns == expected_cols

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaver(n_cbps=225, n_bpsc=4)
        with pytest.raises(ConfigurationError):
            BlockInterleaver(n_cbps=224, n_bpsc=0)
        with pytest.raises(ConfigurationError):
            BlockInterleaver(n_cbps=224, n_bpsc=4, n_columns=1)

    def test_partial_block_rejected(self):
        il = BlockInterleaver(n_cbps=224, n_bpsc=4)
        with pytest.raises(ShapeError):
            il.interleave(np.zeros(100))
        with pytest.raises(ShapeError):
            il.deinterleave(np.zeros(100))

    @given(
        n_bpsc=st.sampled_from([1, 2, 4, 6, 8]),
        n_blocks=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_roundtrip_property(self, n_bpsc, n_blocks, seed):
        il = BlockInterleaver(n_cbps=16 * n_bpsc * 3, n_bpsc=n_bpsc)
        bits = np.random.default_rng(seed).integers(
            0, 2, size=il.n_cbps * n_blocks
        )
        np.testing.assert_array_equal(il.deinterleave(il.interleave(bits)), bits)
        np.testing.assert_array_equal(il.interleave(il.deinterleave(bits)), bits)
