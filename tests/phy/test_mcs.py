"""Tests for the 802.11ac MCS table and rate selection."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.phy.mcs import MCS_TABLE, data_rate_bps, mcs_entry, select_mcs


class TestTable:
    def test_ten_entries_ordered(self):
        assert len(MCS_TABLE) == 10
        assert [e.index for e in MCS_TABLE] == list(range(10))

    def test_rates_monotone_in_index(self):
        rates = [data_rate_bps(i, 80) for i in range(10)]
        assert rates == sorted(rates)

    def test_thresholds_monotone(self):
        thresholds = [e.min_snr_db for e in MCS_TABLE]
        assert thresholds == sorted(thresholds)

    def test_bits_per_symbol(self):
        assert mcs_entry(0).bits_per_symbol == 1
        assert mcs_entry(4).bits_per_symbol == 4
        assert mcs_entry(9).bits_per_symbol == 8

    def test_bad_index(self):
        with pytest.raises(ConfigurationError):
            mcs_entry(10)
        with pytest.raises(ConfigurationError):
            mcs_entry(-1)


class TestDataRate:
    def test_known_value(self):
        # MCS 4 @ 20 MHz, 1 stream: 56 tones * 4 bits * 3/4 / 4 us = 42 Mbit/s.
        assert data_rate_bps(4, 20) == pytest.approx(42e6)

    def test_short_gi_speedup(self):
        long_gi = data_rate_bps(7, 40)
        short_gi = data_rate_bps(7, 40, short_gi=True)
        assert short_gi == pytest.approx(long_gi * 4.0 / 3.6)

    def test_scales_with_streams(self):
        assert data_rate_bps(5, 80, n_streams=2) == pytest.approx(
            2 * data_rate_bps(5, 80)
        )

    def test_scales_with_bandwidth_tones(self):
        # 80 MHz has 242 tones vs 56 at 20 MHz.
        ratio = data_rate_bps(3, 80) / data_rate_bps(3, 20)
        assert ratio == pytest.approx(242 / 56)

    def test_invalid_streams(self):
        with pytest.raises(ConfigurationError):
            data_rate_bps(0, 20, n_streams=0)


class TestSelectMcs:
    def test_low_sinr_falls_back_to_mcs0(self):
        assert select_mcs(-5.0).index == 0

    def test_high_sinr_gets_top_mcs(self):
        assert select_mcs(40.0).index == 9

    def test_threshold_boundaries(self):
        assert select_mcs(15.0).index == 4
        assert select_mcs(14.9).index == 3

    def test_backoff_is_conservative(self):
        assert select_mcs(21.0).index == 6
        assert select_mcs(21.0, backoff_db=3.0).index == 5

    def test_negative_backoff_rejected(self):
        with pytest.raises(ConfigurationError):
            select_mcs(20.0, backoff_db=-1.0)

    @given(sinr=st.floats(min_value=-20, max_value=60))
    def test_selection_monotone(self, sinr):
        lower = select_mcs(sinr)
        higher = select_mcs(sinr + 5.0)
        assert higher.index >= lower.index
        # The chosen MCS never exceeds its own threshold requirement,
        # except for the MCS-0 floor.
        if lower.index > 0:
            assert sinr >= lower.min_snr_db
