"""Tests for SVD beamforming and zero-forcing precoding."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.phy.precoding import (
    interference_leakage,
    normalize_columns,
    zero_forcing,
)
from repro.phy.svd import (
    beamforming_matrices,
    beamforming_matrix,
    dominant_left_singular_vectors,
    effective_channel,
)


def random_channel(rng, *shape):
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)


class TestBeamformingMatrix:
    def test_columns_orthonormal(self, rng):
        h = random_channel(rng, 3, 4)
        v = beamforming_matrix(h, n_streams=2)
        assert np.allclose(v.conj().T @ v, np.eye(2), atol=1e-10)

    def test_maximizes_channel_gain(self, rng):
        """The dominant right singular vector beats random directions."""
        h = random_channel(rng, 2, 4)
        v = beamforming_matrix(h, n_streams=1)
        gain = np.linalg.norm(h @ v)
        for _ in range(50):
            w = random_channel(rng, 4, 1)
            w /= np.linalg.norm(w)
            assert np.linalg.norm(h @ w) <= gain + 1e-9

    def test_gauge_fix_applied(self, rng):
        h = random_channel(rng, 2, 3)
        v = beamforming_matrix(h, n_streams=1)
        assert abs(v[-1, 0].imag) < 1e-12
        assert v[-1, 0].real >= 0

    def test_no_gauge_fix(self, rng):
        h = random_channel(rng, 2, 3)
        v = beamforming_matrix(h, n_streams=1, gauge_fix=False)
        # Still a valid singular vector even without the gauge.
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_batched_matches_single(self, rng):
        h = random_channel(rng, 5, 7, 2, 3)
        batched = beamforming_matrices(h, n_streams=1)
        single = beamforming_matrix(h[2, 4], n_streams=1)
        assert np.allclose(batched[2, 4], single)

    def test_invalid_streams(self, rng):
        with pytest.raises(ShapeError):
            beamforming_matrix(random_channel(rng, 2, 3), n_streams=3)

    def test_svd_identity_reconstruction(self, rng):
        """U * S * Z† must reproduce H (Eq. (2) sanity)."""
        h = random_channel(rng, 3, 3)
        u, s, vh = np.linalg.svd(h)
        assert np.allclose(u @ np.diag(s) @ vh, h)


class TestCombiners:
    def test_combiner_is_unit_norm(self, rng):
        h = random_channel(rng, 4, 2, 3)
        u = dominant_left_singular_vectors(h)
        assert np.allclose(np.linalg.norm(u, axis=-1), 1.0)

    def test_combiner_gain_equals_top_singular_value(self, rng):
        h = random_channel(rng, 2, 4)
        u1 = dominant_left_singular_vectors(h)
        v1 = beamforming_matrix(h, n_streams=1, gauge_fix=False)[:, 0]
        gain = np.abs(u1.conj() @ h @ v1)
        assert gain == pytest.approx(np.linalg.svd(h)[1][0], rel=1e-10)


class TestEffectiveChannel:
    def test_stacks_columns(self, rng):
        v1 = random_channel(rng, 4, 1)
        v2 = random_channel(rng, 4)
        h_eq = effective_channel([v1, v2])
        assert h_eq.shape == (4, 2)
        assert np.allclose(h_eq[:, 0], v1[:, 0])
        assert np.allclose(h_eq[:, 1], v2)

    def test_nt_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            effective_channel([random_channel(rng, 4, 1), random_channel(rng, 3, 1)])


class TestZeroForcing:
    def test_zero_inter_user_interference(self, rng):
        h_eq = random_channel(rng, 4, 3)
        w = zero_forcing(h_eq)
        response = h_eq.conj().T @ w
        off_diag = response - np.diag(np.diag(response))
        assert np.allclose(off_diag, 0.0, atol=1e-9)

    def test_diagonal_is_identity_before_normalization(self, rng):
        h_eq = random_channel(rng, 4, 2)
        w = zero_forcing(h_eq)
        response = h_eq.conj().T @ w
        assert np.allclose(np.diag(response), 1.0, atol=1e-9)

    def test_column_normalization_preserves_nulls(self, rng):
        h_eq = random_channel(rng, 4, 3)
        w = normalize_columns(zero_forcing(h_eq))
        assert np.allclose(np.linalg.norm(w, axis=0), 1.0)
        response = h_eq.conj().T @ w
        off_diag = response - np.diag(np.diag(response))
        assert np.allclose(off_diag, 0.0, atol=1e-9)

    def test_too_many_streams_rejected(self, rng):
        with pytest.raises(ShapeError):
            zero_forcing(random_channel(rng, 2, 3))

    def test_ridge_handles_collinear_users(self, rng):
        v = random_channel(rng, 4, 1)
        h_eq = np.concatenate([v, v + 1e-9 * random_channel(rng, 4, 1)], axis=1)
        w = zero_forcing(h_eq, ridge=1e-6)
        assert np.all(np.isfinite(w))


class TestInterferenceLeakage:
    def test_zero_for_perfect_zf(self, rng):
        h_eq = random_channel(rng, 4, 3)
        w = zero_forcing(h_eq)
        assert interference_leakage(h_eq, w) < 1e-18

    def test_positive_for_mismatched_precoder(self, rng):
        h_eq = random_channel(rng, 4, 3)
        wrong = zero_forcing(random_channel(rng, 4, 3))
        assert interference_leakage(h_eq, wrong) > 1e-3
