"""Tests for band plans, AWGN utilities, and rate/airtime models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.noise import awgn, noise_power, snr_db_to_linear, snr_linear_to_db
from repro.phy.ofdm import BANDWIDTHS_MHZ, SUBCARRIERS, band_plan
from repro.phy.rates import frame_airtime_s, phy_rate_bps


class TestBandPlans:
    def test_paper_subcarrier_counts(self):
        # Table I / Sec. 5.2.1 of the paper.
        assert band_plan(20).n_subcarriers == 56
        assert band_plan(40).n_subcarriers == 114
        assert band_plan(80).n_subcarriers == 242
        assert band_plan(160).n_subcarriers == 484
        assert band_plan(320).n_subcarriers == 996

    def test_unknown_bandwidth_raises(self):
        with pytest.raises(ConfigurationError):
            band_plan(30)

    def test_tone_grid_symmetric_and_spaced(self):
        plan = band_plan(20)
        tones = plan.tone_frequencies_hz()
        assert len(tones) == 56
        assert tones.sum() == pytest.approx(0.0, abs=1e-3)
        assert np.allclose(np.diff(tones), plan.subcarrier_spacing_hz)

    def test_symbol_duration_includes_guard(self):
        plan = band_plan(20)
        assert plan.symbol_duration_s == pytest.approx(4.0e-6)

    def test_all_bandwidths_have_plans(self):
        for bw in BANDWIDTHS_MHZ:
            assert band_plan(bw).n_subcarriers == SUBCARRIERS[bw]


class TestNoise:
    def test_snr_conversions_inverse(self):
        assert snr_linear_to_db(snr_db_to_linear(17.3)) == pytest.approx(17.3)

    def test_noise_power(self):
        assert noise_power(2.0, 3.0) == pytest.approx(2.0 / 10 ** 0.3)

    def test_awgn_power_and_circularity(self):
        noise = awgn((200_000,), power=0.5, rng=0)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.5, rel=0.02)
        assert np.mean(noise.real * noise.imag) == pytest.approx(0.0, abs=0.01)

    def test_awgn_zero_power(self):
        assert not np.any(awgn((10,), power=0.0, rng=0))

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            awgn((4,), power=-1.0)

    def test_invalid_linear_snr(self):
        with pytest.raises(ConfigurationError):
            snr_linear_to_db(0.0)


class TestRates:
    def test_rate_scales_with_bandwidth(self):
        r20 = phy_rate_bps(20)
        r80 = phy_rate_bps(80)
        assert r80 / r20 == pytest.approx(242 / 56, rel=1e-9)

    def test_rate_scales_with_modulation_and_code(self):
        base = phy_rate_bps(20, bits_per_symbol=2, code_rate=0.5)
        fancy = phy_rate_bps(20, bits_per_symbol=6, code_rate=0.75)
        assert fancy / base == pytest.approx((6 * 0.75) / (2 * 0.5))

    def test_airtime_has_preamble_floor(self):
        assert frame_airtime_s(0, 20) == pytest.approx(36e-6)

    def test_airtime_rounds_to_whole_symbols(self):
        plan_symbol = band_plan(20).symbol_duration_s
        one_bit = frame_airtime_s(1, 20)
        assert one_bit == pytest.approx(36e-6 + plan_symbol)
        # Filling the symbol exactly costs the same as one bit.
        per_symbol_bits = int(56 * 2 * 0.5)
        assert frame_airtime_s(per_symbol_bits, 20) == pytest.approx(one_bit)

    def test_larger_payload_never_faster(self):
        airtimes = [frame_airtime_s(b, 40) for b in range(0, 5000, 97)]
        assert all(b >= a for a, b in zip(airtimes, airtimes[1:]))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            phy_rate_bps(20, bits_per_symbol=0)
        with pytest.raises(ConfigurationError):
            phy_rate_bps(20, code_rate=0.0)
        with pytest.raises(ConfigurationError):
            frame_airtime_s(-1, 20)
