"""Tests for the SINR/leakage/sum-rate/EVM link metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.phy.metrics import (
    LinkMetrics,
    compute_link_metrics,
    evm_rms,
    leakage_ratio,
    sinr_per_user,
    sum_rate_bps_per_hz,
)


def diagonal_gains(n_sc: int, n_users: int, gain: float = 1.0) -> np.ndarray:
    """Perfectly interference-free gains."""
    return np.broadcast_to(
        gain * np.eye(n_users, dtype=np.complex128), (n_sc, n_users, n_users)
    ).copy()


class TestSinr:
    def test_interference_free_equals_snr(self):
        gains = diagonal_gains(4, 2)
        sinr = sinr_per_user(gains, noise_power=0.01)
        np.testing.assert_allclose(sinr, 100.0)

    def test_interference_lowers_sinr(self):
        gains = diagonal_gains(1, 2)
        gains[0, 0, 1] = 0.5  # user 0 hears user 1's stream
        sinr = sinr_per_user(gains, noise_power=0.01)
        assert sinr[0, 0] == pytest.approx(1.0 / (0.25 + 0.01))
        assert sinr[0, 1] == pytest.approx(100.0)

    def test_zero_noise_interference_limited(self):
        gains = diagonal_gains(1, 2)
        gains[0, 0, 1] = 0.1
        sinr = sinr_per_user(gains, noise_power=0.0)
        assert sinr[0, 0] == pytest.approx(100.0)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            sinr_per_user(np.zeros((4, 2, 3)), 0.1)
        with pytest.raises(ShapeError):
            sinr_per_user(np.zeros((2, 2)), 0.1)
        with pytest.raises(ShapeError):
            sinr_per_user(diagonal_gains(1, 2), -1.0)


class TestLeakage:
    def test_perfect_zf_has_zero_leakage(self):
        assert leakage_ratio(diagonal_gains(8, 3)) == 0.0

    def test_leakage_scales_with_off_diagonal_power(self):
        gains = diagonal_gains(1, 2)
        gains[0, 0, 1] = 1.0
        # one off-diagonal unit against two diagonal units.
        assert leakage_ratio(gains) == pytest.approx(0.5)

    def test_zero_signal_is_infinite(self):
        assert leakage_ratio(np.zeros((1, 2, 2))) == float("inf")


class TestSumRate:
    def test_matches_shannon_for_diagonal(self):
        gains = diagonal_gains(4, 2)
        rate = sum_rate_bps_per_hz(gains, noise_power=1.0)
        assert rate == pytest.approx(2 * np.log2(2.0))

    def test_interference_reduces_rate(self):
        clean = diagonal_gains(4, 2)
        dirty = clean.copy()
        dirty[:, 0, 1] = 0.7
        n0 = 0.1
        assert sum_rate_bps_per_hz(dirty, n0) < sum_rate_bps_per_hz(clean, n0)

    @given(
        snr_db=st.floats(min_value=-10, max_value=40),
        n_users=st.integers(min_value=1, max_value=4),
    )
    def test_rate_positive_and_monotone_in_snr(self, snr_db, n_users):
        gains = diagonal_gains(2, n_users)
        n0 = 10 ** (-snr_db / 10)
        low = sum_rate_bps_per_hz(gains, n0 * 2)
        high = sum_rate_bps_per_hz(gains, n0)
        assert 0 < low < high


class TestEvm:
    def test_identical_symbols_zero_evm(self):
        tx = np.array([1 + 1j, -1 - 1j]) / np.sqrt(2)
        assert evm_rms(tx, tx) == 0.0

    def test_known_offset(self):
        tx = np.ones(8, dtype=np.complex128)
        rx = tx + 0.1
        assert evm_rms(tx, rx) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            evm_rms(np.ones(3), np.ones(4))

    def test_zero_reference_is_infinite(self):
        assert evm_rms(np.zeros(4), np.ones(4)) == float("inf")


class TestBundle:
    def test_compute_link_metrics_fields(self):
        gains = diagonal_gains(4, 2)
        metrics = compute_link_metrics(gains, noise_power=0.01)
        assert isinstance(metrics, LinkMetrics)
        assert metrics.mean_sinr_db == pytest.approx(20.0)
        assert metrics.min_sinr_db == pytest.approx(20.0)
        assert metrics.leakage == 0.0
        assert metrics.sum_rate_bps_per_hz > 0
        assert len(metrics.as_row()) == 4
