"""Tests for the BCC convolutional code and Viterbi decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.phy.coding import ConvolutionalCode, bcc_rate_half


class TestEncoder:
    def test_known_vector_k3(self):
        # Classic (7,5) K=3 code: input 1011 (zero-terminated).
        code = ConvolutionalCode(polynomials=(0o7, 0o5), constraint_length=3)
        out = code.encode(np.array([1, 0, 1, 1]))
        # Hand-computed: out1 = b ^ s1 ^ s2, out2 = b ^ s2, zero tail.
        expected = [1, 1, 1, 0, 0, 0, 0, 1, 0, 1, 1, 1]
        assert np.array_equal(out, expected)

    def test_encoded_length(self):
        code = bcc_rate_half()
        assert code.encoded_length(100) == (100 + 6) * 2
        assert code.encode(np.zeros(100, dtype=int)).size == 212

    def test_rate(self):
        assert bcc_rate_half().rate == pytest.approx(0.5)

    def test_zero_input_gives_zero_output(self):
        code = bcc_rate_half()
        assert not np.any(code.encode(np.zeros(32, dtype=int)))

    def test_non_binary_rejected(self):
        with pytest.raises(ShapeError):
            bcc_rate_half().encode(np.array([0, 1, 2]))


class TestViterbi:
    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=80),
    )
    @settings(max_examples=20)
    def test_noiseless_round_trip(self, bits):
        code = bcc_rate_half()
        bits = np.asarray(bits)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    def test_corrects_scattered_errors(self, rng):
        """Rate-1/2 K=7 corrects isolated channel errors (d_free = 10)."""
        code = bcc_rate_half()
        bits = rng.integers(0, 2, 120)
        coded = code.encode(bits)
        corrupted = coded.copy()
        # Flip 4 well-separated bits: within the code's correction power.
        for position in (10, 70, 130, 190):
            corrupted[position] ^= 1
        assert np.array_equal(code.decode(corrupted), bits)

    def test_fails_gracefully_under_heavy_noise(self, rng):
        code = bcc_rate_half()
        bits = rng.integers(0, 2, 64)
        coded = code.encode(bits)
        noisy = coded ^ rng.integers(0, 2, coded.size)  # 50% flips
        decoded = code.decode(noisy)
        assert decoded.shape == bits.shape
        assert set(np.unique(decoded)).issubset({0, 1})

    def test_decode_batch(self, rng):
        code = bcc_rate_half()
        words = []
        infos = []
        for _ in range(3):
            bits = rng.integers(0, 2, 40)
            infos.append(bits)
            words.append(code.encode(bits))
        decoded = code.decode_batch(np.stack(words), 40)
        assert np.array_equal(decoded, np.stack(infos))

    def test_wrong_length_rejected(self):
        with pytest.raises(ShapeError):
            bcc_rate_half().decode(np.zeros(7, dtype=int))

    def test_too_short_rejected(self):
        with pytest.raises(ShapeError):
            bcc_rate_half().decode(np.zeros(4, dtype=int))


class TestConstruction:
    def test_invalid_constraint_length(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalCode(constraint_length=1)

    def test_polynomial_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalCode(polynomials=(0o777, 0o171), constraint_length=7)

    def test_single_polynomial_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalCode(polynomials=(0o133,), constraint_length=7)

    def test_trellis_shapes(self):
        code = bcc_rate_half()
        assert code.n_states == 64
        assert code._next_state.shape == (64, 2)
        assert code._output_table.shape == (64, 2, 2)

    def test_performance_beats_uncoded_at_moderate_error_rate(self, rng):
        """End-to-end sanity: coded BER < raw BER at 3% flip probability."""
        code = bcc_rate_half()
        bits = rng.integers(0, 2, 2000)
        coded = code.encode(bits)
        flips = rng.random(coded.size) < 0.03
        decoded = code.decode(coded ^ flips.astype(int))
        coded_ber = np.mean(decoded != bits)
        assert coded_ber < 0.03 / 3
