"""Batched LinkSimulator vs the frozen per-sample reference path.

``measure_ber`` draws its randomness in the reference implementation's
generator order and pins the singular-vector phase gauge to the
standard's convention, so the two paths must report identical error
counts for equal seeds — across precoders, coding options, antenna
shapes, and QAM orders.  The fast linear-algebra kernels feeding the
batched path are checked against their LAPACK twins here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.link import BerResult, LinkConfig, LinkSimulator
from repro.phy.svd import (
    beamforming_matrices,
    dominant_left_singular_vectors,
    dominant_right_singular_pair,
    dominant_singular_pair,
    jacobi_hermitian_eig,
)
from repro.utils.complexmat import (
    batched_small_inverse,
    hermitian_inverse_diagonal,
)


def random_link(rng, n, users, n_sc, n_rx, n_tx, perturb=0.05):
    shape = (n, users, n_sc, n_rx, n_tx)
    channels = (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ) / np.sqrt(2.0)
    bf = beamforming_matrices(channels, n_streams=1)[..., 0]
    bf = bf + perturb * (
        rng.standard_normal(bf.shape) + 1j * rng.standard_normal(bf.shape)
    )
    return channels, bf


class TestMeasureBerEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            LinkConfig(),
            LinkConfig(precoder="rzf"),
            LinkConfig(qam_order=64),
            LinkConfig(n_ofdm_symbols=2),
            LinkConfig(use_coding=True, n_ofdm_symbols=4),
            LinkConfig(
                use_coding=True,
                use_scrambler=True,
                use_interleaver=True,
                n_ofdm_symbols=4,
            ),
            LinkConfig(
                use_coding=True,
                soft_decoding=True,
                qam_order=4,
                n_ofdm_symbols=4,
            ),
        ],
    )
    def test_counts_match_reference(self, rng, config):
        channels, bf = random_link(rng, 3, 2, 16, 2, 3)
        simulator = LinkSimulator(config)
        fast = simulator.measure_ber(channels, bf, rng=123)
        seed = simulator.measure_ber_reference(channels, bf, rng=123)
        assert fast.bit_errors == seed.bit_errors
        assert fast.total_bits == seed.total_bits
        assert np.array_equal(fast.per_user_ber, seed.per_user_ber)

    @pytest.mark.parametrize(
        "users,n_sc,n_rx,n_tx",
        [(1, 8, 1, 2), (2, 16, 1, 3), (3, 12, 3, 3), (2, 10, 4, 4)],
    )
    def test_shapes_match_reference(self, rng, users, n_sc, n_rx, n_tx):
        channels, bf = random_link(rng, 4, users, n_sc, n_rx, n_tx)
        simulator = LinkSimulator(LinkConfig())
        fast = simulator.measure_ber(channels, bf, rng=7)
        seed = simulator.measure_ber_reference(channels, bf, rng=7)
        assert fast.bit_errors == seed.bit_errors
        assert np.array_equal(fast.per_user_ber, seed.per_user_ber)

    def test_empty_batch(self):
        simulator = LinkSimulator(LinkConfig())
        channels = np.zeros((0, 2, 8, 1, 2), dtype=np.complex128)
        bf = np.zeros((0, 2, 8, 2), dtype=np.complex128)
        result = simulator.measure_ber(channels, bf)
        assert isinstance(result, BerResult)
        assert result.total_bits == 0
        assert result.ber == 0.0

    def test_metrics_match_reference_gains(self, rng):
        from repro.phy.metrics import compute_link_metrics

        channels, bf = random_link(rng, 3, 2, 12, 2, 3)
        simulator = LinkSimulator(LinkConfig())
        batched = simulator.measure_metrics(channels, bf)
        per_sample = [
            compute_link_metrics(*simulator.compute_gains(channels[j], bf[j]))
            for j in range(channels.shape[0])
        ]
        assert batched.mean_sinr_db == pytest.approx(
            float(np.mean([m.mean_sinr_db for m in per_sample])), rel=1e-9
        )
        assert batched.sum_rate_bps_per_hz == pytest.approx(
            float(np.mean([m.sum_rate_bps_per_hz for m in per_sample])),
            rel=1e-9,
        )


class TestFastKernels:
    @pytest.mark.parametrize(
        "n_rx,n_tx", [(1, 2), (1, 4), (2, 2), (2, 3), (3, 2), (3, 3), (4, 4)]
    )
    def test_dominant_singular_pair_matches_lapack(self, rng, n_rx, n_tx):
        shape = (500, n_rx, n_tx)
        channels = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        u1, v1 = dominant_singular_pair(channels)
        np.testing.assert_allclose(
            u1, dominant_left_singular_vectors(channels), atol=1e-10
        )
        np.testing.assert_allclose(
            v1,
            beamforming_matrices(channels, n_streams=1)[..., 0],
            atol=1e-10,
        )

    def test_dominant_right_pair_sigma(self, rng):
        channels = rng.standard_normal((300, 3, 3)) + 1j * rng.standard_normal(
            (300, 3, 3)
        )
        _, sigma = dominant_right_singular_pair(channels)
        reference = np.linalg.svd(channels, compute_uv=False)[..., 0]
        np.testing.assert_allclose(sigma, reference, rtol=1e-10)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_jacobi_matches_eigh(self, rng, n):
        raw = rng.standard_normal((200, n, n)) + 1j * rng.standard_normal(
            (200, n, n)
        )
        gram = raw @ raw.conj().swapaxes(-1, -2)
        values, vectors, converged = jacobi_hermitian_eig(gram)
        assert converged
        reference = np.sort(np.linalg.eigvalsh(gram), axis=-1)
        np.testing.assert_allclose(
            np.sort(values, axis=-1), reference, rtol=1e-9, atol=1e-9
        )
        # Columns diagonalize the gram.
        rebuilt = np.einsum(
            "...ij,...j,...kj->...ik", vectors, values, vectors.conj()
        )
        np.testing.assert_allclose(rebuilt, gram, atol=1e-9)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_batched_small_inverse(self, rng, n):
        raw = rng.standard_normal((300, n, n)) + 1j * rng.standard_normal(
            (300, n, n)
        )
        matrices = raw @ raw.conj().swapaxes(-1, -2) + 0.5 * np.eye(n)
        inverse = batched_small_inverse(matrices)
        np.testing.assert_allclose(
            inverse @ matrices, np.broadcast_to(np.eye(n), matrices.shape),
            atol=1e-9,
        )
        np.testing.assert_allclose(
            hermitian_inverse_diagonal(matrices),
            np.diagonal(inverse, axis1=-2, axis2=-1).real,
            rtol=1e-9,
            atol=1e-12,
        )

    def test_rank_one_channel_with_zero_last_entry(self):
        # angle(0) = 0 means gauge phase 1, not a zero scale.
        channels = np.array([[[1.0 + 0.0j, 0.0 + 0.0j]]])
        u1, v1 = dominant_singular_pair(channels)
        np.testing.assert_allclose(v1, [[1.0, 0.0]], atol=1e-12)
        np.testing.assert_allclose(
            v1, beamforming_matrices(channels, n_streams=1)[..., 0], atol=1e-12
        )
        np.testing.assert_allclose(np.abs(u1), [[1.0]], atol=1e-12)

    def test_singular_matrices_fall_back_to_pinv(self):
        singular = np.zeros((4, 3, 3), dtype=np.complex128)
        singular[:, 0, 0] = 1.0  # rank one
        inverse = batched_small_inverse(singular)
        np.testing.assert_allclose(inverse, np.linalg.pinv(singular), atol=1e-12)
