"""Tests for the model zoo and the runtime QoS selection/adaptation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveCompressionController,
    QosProfile,
    SelectionOutcome,
    select_model,
)
from repro.core.costs import StaCostModel
from repro.core.model import SplitBeamNet, three_layer_widths
from repro.core.zoo import ModelZoo, NetworkConfiguration, ZooEntry
from repro.errors import ConfigurationError, DatasetError


CONFIG = NetworkConfiguration(n_tx=2, n_rx=1, bandwidth_mhz=20)


def make_entry(
    compression: float,
    ber: float,
    config: NetworkConfiguration = CONFIG,
    quantizer_bits: int | None = 16,
    seed: int = 0,
) -> ZooEntry:
    widths = three_layer_widths(config.input_dim, compression)
    return ZooEntry(
        config=config,
        model=SplitBeamNet(widths, rng=seed),
        quantizer_bits=quantizer_bits,
        measured_ber=ber,
    )


def ladder(bers: dict[float, float]) -> list[ZooEntry]:
    """Entries for K -> BER pairs."""
    return [make_entry(k, ber) for k, ber in bers.items()]


class TestNetworkConfiguration:
    def test_input_dim(self):
        # 2 * Nt * Nr * S = 2 * 2 * 1 * 56 = 224 (Table II's 20 MHz D).
        assert CONFIG.input_dim == 224

    def test_label_roundtrip(self):
        assert NetworkConfiguration.from_label(CONFIG.label()) == CONFIG

    def test_malformed_label(self):
        with pytest.raises(ConfigurationError):
            NetworkConfiguration.from_label("2by1at20")

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetworkConfiguration(n_tx=2, n_rx=1, bandwidth_mhz=30)

    def test_invalid_antennas(self):
        with pytest.raises(ConfigurationError):
            NetworkConfiguration(n_tx=0, n_rx=1, bandwidth_mhz=20)


class TestZooEntry:
    def test_model_dim_validated_against_config(self):
        wrong = NetworkConfiguration(n_tx=3, n_rx=1, bandwidth_mhz=20)
        model_for_2x1 = SplitBeamNet(three_layer_widths(CONFIG.input_dim, 1 / 8))
        with pytest.raises(ConfigurationError):
            ZooEntry(
                config=wrong,
                model=model_for_2x1,
                quantizer_bits=16,
                measured_ber=0.01,
            )

    def test_cost_properties(self):
        entry = make_entry(1 / 8, 0.01)
        assert entry.compression == pytest.approx(1 / 8, abs=0.01)
        assert entry.head_flops == 2 * 224 * 28
        assert entry.feedback_bits == 28 * 16

    def test_feedback_bits_without_quantizer(self):
        entry = make_entry(1 / 8, 0.01, quantizer_bits=None)
        assert entry.feedback_bits == 28 * 16  # 16-bit default convention

    def test_ber_range_validated(self):
        with pytest.raises(ConfigurationError):
            make_entry(1 / 8, 1.5)


class TestModelZoo:
    def test_register_and_candidates_sorted(self):
        zoo = ModelZoo()
        for k in (1 / 4, 1 / 32, 1 / 8):
            zoo.register(make_entry(k, 0.01))
        compressions = [e.compression for e in zoo.candidates(CONFIG)]
        assert compressions == sorted(compressions)
        assert len(zoo) == 3

    def test_duplicate_architecture_rejected(self):
        zoo = ModelZoo()
        zoo.register(make_entry(1 / 8, 0.01))
        with pytest.raises(ConfigurationError):
            zoo.register(make_entry(1 / 8, 0.02))

    def test_on_ndp_returns_least_compressed(self):
        zoo = ModelZoo()
        for k in (1 / 32, 1 / 4):
            zoo.register(make_entry(k, 0.01))
        assert zoo.on_ndp(CONFIG).compression == pytest.approx(1 / 4, abs=0.01)

    def test_on_ndp_unknown_config_raises(self):
        zoo = ModelZoo()
        with pytest.raises(ConfigurationError):
            zoo.on_ndp(CONFIG)

    def test_contains_and_configurations(self):
        zoo = ModelZoo()
        assert CONFIG not in zoo
        zoo.register(make_entry(1 / 8, 0.01))
        assert CONFIG in zoo
        assert zoo.configurations() == [CONFIG]

    def test_save_load_roundtrip(self, tmp_path):
        zoo = ModelZoo()
        zoo.register(make_entry(1 / 8, 0.013, seed=1))
        zoo.register(make_entry(1 / 4, 0.007, seed=2))
        zoo.save(str(tmp_path))
        loaded = ModelZoo.load(str(tmp_path))
        assert len(loaded) == 2
        original = zoo.candidates(CONFIG)[0]
        restored = loaded.candidates(CONFIG)[0]
        assert restored.measured_ber == original.measured_ber
        assert restored.model.widths == original.model.widths
        # Weights restored bit-exactly: same forward output.
        x = np.random.default_rng(0).standard_normal((3, CONFIG.input_dim))
        np.testing.assert_allclose(
            restored.model.forward(x), original.model.forward(x)
        )

    def test_save_removes_unreferenced_npz(self, tmp_path):
        # Saving a shrunk/re-keyed zoo over an old directory must not
        # leave orphaned weight files behind the new manifest.
        big = ModelZoo()
        big.register(make_entry(1 / 8, 0.013, seed=1))
        big.register(make_entry(1 / 4, 0.007, seed=2))
        big.save(str(tmp_path))
        npz_before = {p.name for p in tmp_path.glob("*.npz")}
        assert len(npz_before) == 2

        small = ModelZoo()
        small.register(make_entry(1 / 8, 0.02, seed=3))
        small.save(str(tmp_path))
        npz_after = {p.name for p in tmp_path.glob("*.npz")}
        assert len(npz_after) == 1
        # Round trip: the reloaded zoo is exactly the new one, and the
        # old K=1/4 weights are gone from disk.
        loaded = ModelZoo.load(str(tmp_path))
        assert len(loaded) == 1
        assert loaded.candidates(CONFIG)[0].measured_ber == 0.02
        assert not (npz_after - {p.name for p in tmp_path.glob("*.npz")})

    def test_save_keeps_unrelated_files(self, tmp_path):
        # Only weights the previous manifest referenced are cleaned;
        # unrelated files — even .npz ones the zoo never wrote — survive.
        readme = tmp_path / "README.txt"
        readme.write_text("not a weight file")
        foreign = tmp_path / "my_experiment.npz"
        foreign.write_bytes(b"someone else's arrays")
        old = ModelZoo()
        old.register(make_entry(1 / 4, 0.01, seed=4))
        old.save(str(tmp_path))
        new = ModelZoo()
        new.register(make_entry(1 / 8, 0.01))
        new.save(str(tmp_path))
        assert readme.exists()
        assert foreign.exists()
        # ... while the superseded zoo weight file is gone.
        assert len(list(tmp_path.glob("*.npz"))) == 2  # foreign + new model

    def test_save_interrupted_cleanup_keeps_zoo_loadable(
        self, tmp_path, monkeypatch
    ):
        # The new manifest commits before superseded weights are
        # removed, so a crash during the cleanup never strands a
        # manifest that references missing files.
        old = ModelZoo()
        old.register(make_entry(1 / 4, 0.01, seed=4))
        old.save(str(tmp_path))
        new = ModelZoo()
        new.register(make_entry(1 / 8, 0.02))

        def exploding_remove(path):
            raise OSError("simulated crash during orphan cleanup")

        monkeypatch.setattr("repro.core.zoo.os.remove", exploding_remove)
        with pytest.raises(OSError, match="simulated crash"):
            new.save(str(tmp_path))
        monkeypatch.undo()
        loaded = ModelZoo.load(str(tmp_path))
        assert len(loaded) == 1
        assert loaded.candidates(CONFIG)[0].measured_ber == 0.02

    def test_save_crash_before_manifest_keeps_old_zoo_intact(
        self, tmp_path, monkeypatch
    ):
        # Retrained weights get content-addressed (new) filenames, so a
        # crash before the new manifest commits leaves the OLD manifest
        # paired with the OLD weights — never old metadata over new
        # parameters.
        old = ModelZoo()
        old.register(make_entry(1 / 8, 0.01, seed=1))
        old.save(str(tmp_path))
        retrained = ModelZoo()
        retrained.register(make_entry(1 / 8, 0.02, seed=2))

        def exploding_dump(*args, **kwargs):
            raise OSError("simulated crash before manifest commit")

        monkeypatch.setattr("repro.core.zoo.json.dump", exploding_dump)
        with pytest.raises(OSError, match="simulated crash"):
            retrained.save(str(tmp_path))
        monkeypatch.undo()
        loaded = ModelZoo.load(str(tmp_path))
        restored = loaded.candidates(CONFIG)[0]
        assert restored.measured_ber == 0.01  # the OLD zoo, consistently
        x = np.random.default_rng(0).standard_normal((2, CONFIG.input_dim))
        np.testing.assert_allclose(
            restored.model.forward(x),
            old.candidates(CONFIG)[0].model.forward(x),
        )

    def test_save_sweeps_aged_crash_leftovers(self, tmp_path):
        # A crash mid-save strands '<weights>.npz.tmp.<pid>.npz' /
        # 'zoo_manifest.json.tmp.<pid>' files; the next save removes
        # them once aged (young ones might belong to a concurrent
        # save), leaving unrelated tmp files alone.
        import os
        import time

        stale_weight = tmp_path / (
            "2x1_20MHz_224-28-28-224_0123456789ab.npz.tmp.4242.npz"
        )
        stale_weight.write_bytes(b"torn")
        stale_manifest = tmp_path / "zoo_manifest.json.tmp.4242"
        stale_manifest.write_text("{torn")
        fresh = tmp_path / (
            "2x1_20MHz_224-14-14-224_ba9876543210.npz.tmp.4243.npz"
        )
        fresh.write_bytes(b"in flight")
        unrelated = tmp_path / "notes.txt.tmp.4242"
        unrelated.write_text("not ours")
        old = time.time() - 7200.0
        for path in (stale_weight, stale_manifest, unrelated):
            os.utime(path, (old, old))

        zoo = ModelZoo()
        zoo.register(make_entry(1 / 8, 0.01))
        zoo.save(str(tmp_path))
        assert not stale_weight.exists()
        assert not stale_manifest.exists()
        assert fresh.exists()  # young: possibly a concurrent save
        assert unrelated.exists()  # not the zoo's naming

    def test_save_writes_weights_atomically(self, tmp_path):
        # Re-saving over the same directory reuses filenames; weights go
        # through tmp+rename (no in-place truncation) and leave no
        # write-temp residue behind.
        zoo = ModelZoo()
        zoo.register(make_entry(1 / 8, 0.01, seed=1))
        zoo.save(str(tmp_path))
        again = ModelZoo()
        again.register(make_entry(1 / 8, 0.02, seed=2))
        again.save(str(tmp_path))
        assert not list(tmp_path.glob("*.tmp.*"))
        loaded = ModelZoo.load(str(tmp_path))
        assert loaded.candidates(CONFIG)[0].measured_ber == 0.02

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            ModelZoo.load(str(tmp_path))


class TestQosProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QosProfile(max_ber=0.0)
        with pytest.raises(ConfigurationError):
            QosProfile(max_delay_s=0.0)
        with pytest.raises(ConfigurationError):
            QosProfile(mu=1.0)


class TestSelectModel:
    def make_zoo(self) -> ModelZoo:
        zoo = ModelZoo()
        # BER rises as compression tightens, like Fig. 9.
        for k, ber in [(1 / 32, 0.08), (1 / 16, 0.04), (1 / 8, 0.02), (1 / 4, 0.01)]:
            zoo.register(make_entry(k, ber))
        return zoo

    def test_picks_cheapest_feasible(self):
        zoo = self.make_zoo()
        outcome = select_model(zoo, CONFIG, QosProfile(max_ber=0.05))
        assert outcome.selected is not None
        # K=1/16 (BER 0.04) satisfies gamma=0.05 and costs least.
        assert outcome.selected.compression == pytest.approx(1 / 16, abs=0.01)
        assert not outcome.fell_back

    def test_tight_ber_forces_bigger_bottleneck(self):
        zoo = self.make_zoo()
        outcome = select_model(zoo, CONFIG, QosProfile(max_ber=0.015))
        assert outcome.selected.compression == pytest.approx(1 / 4, abs=0.01)
        assert len(outcome.rejected) == 3

    def test_impossible_ber_falls_back(self):
        zoo = self.make_zoo()
        outcome = select_model(zoo, CONFIG, QosProfile(max_ber=0.001))
        assert outcome.fell_back
        assert "fall back" in outcome.explain()

    def test_delay_constraint_excludes_slow_models(self):
        zoo = self.make_zoo()
        # A cost model so slow nothing meets a 10 ms budget.
        glacial = StaCostModel(sta_flops_per_s=1e3, ap_flops_per_s=1e3)
        outcome = select_model(
            zoo, CONFIG, QosProfile(max_ber=0.5), cost_model=glacial
        )
        assert outcome.fell_back
        assert all("delay" in reason for _, reason in outcome.rejected)

    def test_mu_shifts_choice_documented_in_explain(self):
        zoo = self.make_zoo()
        outcome = select_model(zoo, CONFIG, QosProfile(max_ber=0.05, mu=0.9))
        assert "selected" in outcome.explain()

    def test_empty_config_falls_back(self):
        outcome = select_model(ModelZoo(), CONFIG, QosProfile())
        assert outcome.fell_back

    def test_ber_boundary_exactly_gamma_is_feasible(self):
        # Eq. (7c) is "<= gamma": a model measuring exactly the ceiling
        # must not be rejected.
        zoo = ModelZoo()
        zoo.register(make_entry(1 / 8, 0.05))
        outcome = select_model(zoo, CONFIG, QosProfile(max_ber=0.05))
        assert not outcome.fell_back
        assert outcome.rejected == []

    def test_delay_boundary_exactly_tau_is_feasible(self):
        # Eq. (7d) is "<= tau", mirroring the BER boundary: a model
        # whose end-to-end delay lands exactly on the deadline is
        # feasible, not rejected.
        zoo = ModelZoo()
        entry = make_entry(1 / 8, 0.01)
        zoo.register(entry)
        costs = StaCostModel()
        exact = costs.end_to_end_delay_s(
            entry.head_flops, entry.tail_flops, entry.feedback_bits
        )
        outcome = select_model(
            zoo,
            CONFIG,
            QosProfile(max_ber=0.05, max_delay_s=exact),
            cost_model=costs,
        )
        assert not outcome.fell_back
        assert outcome.rejected == []
        # ... while any deadline strictly below it still rejects.
        tighter = select_model(
            zoo,
            CONFIG,
            QosProfile(max_ber=0.05, max_delay_s=exact * (1 - 1e-9)),
            cost_model=costs,
        )
        assert tighter.fell_back
        assert all("delay" in reason for _, reason in tighter.rejected)


class TestAdaptiveController:
    def make_controller(self, **kwargs) -> AdaptiveCompressionController:
        entries = ladder({1 / 32: 0.08, 1 / 8: 0.02, 1 / 4: 0.01})
        return AdaptiveCompressionController(
            entries, QosProfile(max_ber=0.05), **kwargs
        )

    def test_starts_safest(self):
        controller = self.make_controller()
        assert controller.current.compression == pytest.approx(1 / 4, abs=0.01)

    def test_initial_entry_sets_the_starting_rung(self):
        entries = ladder({1 / 32: 0.08, 1 / 8: 0.02, 1 / 4: 0.01})
        controller = AdaptiveCompressionController(
            entries, QosProfile(max_ber=0.05), initial=entries[1]
        )
        assert controller.current is entries[1]
        # Adaptation still walks the full ladder from there.
        controller.observe(0.2)
        assert controller.current.compression == pytest.approx(1 / 4, abs=0.01)

    def test_initial_entry_must_be_a_candidate(self):
        entries = ladder({1 / 8: 0.02, 1 / 4: 0.01})
        stranger = make_entry(1 / 16, 0.03)
        with pytest.raises(ConfigurationError, match="candidates"):
            AdaptiveCompressionController(
                entries, QosProfile(), initial=stranger
            )

    def test_steps_up_after_patience_good_rounds(self):
        controller = self.make_controller(patience=3)
        for _ in range(2):
            controller.observe(0.001)
            assert controller.current.compression == pytest.approx(1 / 4, abs=0.01)
        controller.observe(0.001)
        # Third consecutive good round: move to the next rung (K=1/8).
        assert controller.current.compression == pytest.approx(1 / 8, abs=0.01)

    def test_steps_down_immediately_on_violation(self):
        controller = self.make_controller(patience=1)
        controller.observe(0.001)  # step up to K=1/8
        assert controller.current.compression == pytest.approx(1 / 8, abs=0.01)
        controller.observe(0.2)  # violation: back off at once
        assert controller.current.compression == pytest.approx(1 / 4, abs=0.01)

    def test_saturates_at_ladder_ends(self):
        controller = self.make_controller(patience=1)
        for _ in range(10):
            controller.observe(0.0)
        assert controller.current.compression == pytest.approx(1 / 32, abs=0.01)
        for _ in range(10):
            controller.observe(0.5)
        assert controller.current.compression == pytest.approx(1 / 4, abs=0.01)

    def test_moderate_ber_resets_streak(self):
        controller = self.make_controller(patience=2)
        controller.observe(0.001)
        controller.observe(0.04)  # inside [margin*γ, γ]: hold, reset streak
        controller.observe(0.001)
        assert controller.current.compression == pytest.approx(1 / 4, abs=0.01)

    def test_history_records_actions(self):
        controller = self.make_controller(patience=1)
        controller.observe(0.001)
        controller.observe(0.2)
        actions = [a for _, a in controller.history]
        assert actions == ["step-up", "step-down"]

    def test_violation_at_safest_rung_recorded_as_saturated(self):
        # A BER violation with no safer rung left is a hard QoS
        # failure; history must distinguish it from an in-band hold so
        # campaign post-mortems can count it.
        controller = self.make_controller()
        controller.observe(0.2)  # starts at the safest rung
        assert controller.history == [(0.2, "saturated")]
        assert controller.saturated_count == 1
        # An in-band measurement is still a plain hold.
        controller.observe(0.04)
        assert controller.history[-1] == (0.04, "hold")
        assert controller.saturated_count == 1

    def test_saturated_repeats_while_violating(self):
        controller = self.make_controller()
        for _ in range(3):
            controller.observe(0.5)
        assert [a for _, a in controller.history] == ["saturated"] * 3
        assert controller.saturated_count == 3

    def test_airtime_savings_grow_with_compression(self):
        controller = self.make_controller(patience=1)
        assert controller.airtime_savings == 0.0
        controller.observe(0.0)
        assert controller.airtime_savings > 0.0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            AdaptiveCompressionController([], QosProfile())
        entries = ladder({1 / 8: 0.01})
        with pytest.raises(ConfigurationError):
            AdaptiveCompressionController(entries, QosProfile(), patience=0)
        with pytest.raises(ConfigurationError):
            AdaptiveCompressionController(
                entries, QosProfile(), step_up_margin=1.0
            )

    def test_invalid_observation(self):
        controller = self.make_controller()
        with pytest.raises(ConfigurationError):
            controller.observe(-0.1)
