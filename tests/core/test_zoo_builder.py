"""Tests for parallel zoo training through the runtime engine.

The PR's acceptance properties live here at smoke scale: a training
grid executes through ``repro.runtime`` with bit-identical
manifests/weights for any worker count, and a warm checkpoint store
rebuilds the zoo with zero training epochs executed (asserted through
both builder statistics and the ``@profiled`` trainer registry).
"""

from __future__ import annotations

import json

import pytest

from repro.config import SMOKE
from repro.core.zoo_builder import (
    ZooBuilder,
    checkpoint_spec,
    plan_training_grid,
    train_zoo,
)
from repro.errors import ConfigurationError
from repro.perf import profile_summary, reset_profiles
from repro.runtime import (
    CheckpointStore,
    TrainingGrid,
    fidelity_to_dict,
    get_training_grid,
    training_grid_names,
    zoo_entry,
)


def _grid(entries, name="unit-zoo"):
    return TrainingGrid(
        name=name,
        title="zoo builder unit grid",
        fidelity=fidelity_to_dict(SMOKE),
        entries=tuple(entries),
    )


@pytest.fixture(scope="module")
def grid():
    return _grid(
        (
            zoo_entry("D1 K=1/16", "D1", compression=1 / 16, ber_samples=6),
            zoo_entry("D1 K=1/8", "D1", compression=1 / 8, ber_samples=6),
        )
    )


@pytest.fixture(scope="module")
def cold_result(grid):
    return train_zoo(grid, n_workers=1)


class TestGridSpec:
    def test_registered_presets(self):
        names = training_grid_names()
        for preset in ("compression-ladder", "table2-architectures", "cross-env"):
            assert preset in names

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            get_training_grid("no-such-grid")

    def test_presets_build_valid_grids(self):
        ladder = get_training_grid("compression-ladder")
        assert ladder.n_entries == 3
        table2 = get_training_grid("table2-architectures")
        assert [e["model"]["widths"] for e in table2.entries] == [
            [224, 28, 28, 224],
            [224, 896, 1792, 896, 224],
            [224, 896, 896, 448, 448, 224],
        ]
        cross = get_training_grid("cross-env")
        # 2 configs x 2 bandwidths x 2 envs x 1 compression.
        assert cross.n_entries == 8

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError, match="duplicate label"):
            _grid(
                (
                    zoo_entry("same", "D1", compression=1 / 8),
                    zoo_entry("same", "D1", compression=1 / 4),
                )
            )
        with pytest.raises(ConfigurationError, match="no entries"):
            _grid(())
        bad = dict(zoo_entry("x", "D1"))
        bad["model"] = {**bad["model"], "widths": None, "compression": None}
        with pytest.raises(ConfigurationError, match="widths or compression"):
            _grid((bad,))

    def test_checkpoint_keys_ignore_labels_and_notes(self, grid):
        relabelled = _grid(
            (
                {**grid.entries[0], "label": "renamed", "notes": "other words"},
                grid.entries[1],
            ),
            name="unit-zoo-relabelled",
        )
        original = plan_training_grid(grid, version="v0")
        renamed = plan_training_grid(relabelled, version="v0")
        assert [e.key for e in original] == [e.key for e in renamed]

    def test_compression_and_explicit_widths_share_a_key(self, grid):
        explicit = _grid(
            (
                zoo_entry(
                    "explicit",
                    "D1",
                    widths=(224, 14, 14, 224),
                    ber_samples=6,
                ),
            ),
            name="unit-zoo-explicit",
        )
        sugar = plan_training_grid(grid, version="v0")[0]  # K=1/16 -> 14
        resolved = plan_training_grid(explicit, version="v0")[0]
        assert sugar.key == resolved.key

    def test_checkpoint_spec_hashes_training_recipe(self, grid):
        spec = plan_training_grid(grid, version="v0")[0].spec
        hashable = checkpoint_spec(spec)
        assert hashable["train"]["epochs"] == SMOKE.epochs
        assert hashable["train"]["optimizer"] == "adam"
        assert "name" not in hashable["fidelity"]
        assert "label" not in hashable and "notes" not in hashable


class TestZooBuild:
    def test_cold_build_trains_everything(self, grid, cold_result):
        assert cold_result.n_entries == 2
        assert cold_result.n_trained == 2 and cold_result.n_cached == 0
        assert cold_result.labels() == ["D1 K=1/16", "D1 K=1/8"]
        zoo = cold_result.zoo()
        assert len(zoo) == 2
        config = zoo.configurations()[0]
        # Most compressed first, as the BOP heuristic expects.
        assert [e.model.bottleneck_dim for e in zoo.candidates(config)] == [
            14,
            28,
        ]
        for row in cold_result.entries:
            assert 0.0 <= row["measured_ber"] <= 1.0
            assert row["history"]["n_epochs"] == SMOKE.epochs
            assert not row["cached"]

    def test_worker_count_does_not_change_a_byte(self, grid, cold_result, tmp_path):
        pooled = train_zoo(grid, n_workers=4)
        assert json.dumps(
            cold_result.to_dict(), sort_keys=True
        ) == json.dumps(pooled.to_dict(), sort_keys=True)
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        cold_result.zoo().save(str(serial_dir))
        pooled.zoo().save(str(pooled_dir))
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        assert serial_files == sorted(p.name for p in pooled_dir.iterdir())
        for name in serial_files:  # manifest JSON and every .npz weight file
            assert (serial_dir / name).read_bytes() == (
                pooled_dir / name
            ).read_bytes(), name

    def test_warm_store_trains_zero_epochs(self, grid, cold_result, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        cold = train_zoo(grid, store=store, n_workers=1)
        assert cold.n_trained == 2 and len(store) == 2
        reset_profiles()
        warm = train_zoo(grid, store=store, n_workers=1)
        assert warm.n_trained == 0 and warm.n_cached == 2
        assert all(row["cached"] for row in warm.entries)
        # Zero training epochs (and zero fits) ran: the profiled
        # trainer registry saw nothing.
        profiled_names = {entry.name for entry in profile_summary()}
        assert "trainer.fit" not in profiled_names
        assert "trainer.epoch" not in profiled_names
        # The manifest (keys, weights digests, measured BERs) is
        # byte-identical to the cold build's.
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            cold.to_dict(), sort_keys=True
        )
        warm_dir = tmp_path / "warm-zoo"
        cold_dir = tmp_path / "cold-zoo"
        warm.zoo().save(str(warm_dir))
        cold.zoo().save(str(cold_dir))
        for path in sorted(cold_dir.iterdir()):
            assert path.read_bytes() == (warm_dir / path.name).read_bytes()

    def test_interrupted_build_resumes(self, grid, tmp_path):
        # Checkpoints persist as each training finishes, so a build that
        # dies midway retrains only the missing entries.
        import repro.runtime.tasks as tasks_module

        store = CheckpointStore(tmp_path / "ckpt")
        original = tasks_module.train_zoo_entry
        calls = {"n": 0}

        def dies_on_second(params):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("simulated crash")
            return original(params)

        tasks_module.train_zoo_entry = dies_on_second
        try:
            with pytest.raises(Exception, match="simulated crash"):
                train_zoo(grid, store=store, n_workers=1)
        finally:
            tasks_module.train_zoo_entry = original
        assert len(store) == 1
        resumed = train_zoo(grid, store=store, n_workers=1)
        assert resumed.n_cached == 1 and resumed.n_trained == 1

    def test_entry_lookup(self, cold_result):
        entry = cold_result.entry("D1 K=1/8")
        assert entry.model.bottleneck_dim == 28
        assert entry.quantizer_bits == 16
        with pytest.raises(ConfigurationError):
            cold_result.entry("missing")

    def test_manifest_is_deterministic_json(self, grid, cold_result, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        cold_result.write_json(path_a)
        train_zoo(grid, n_workers=1).write_json(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
        payload = json.loads(path_a.read_text())
        assert payload["schema_version"] == 1
        assert [e["label"] for e in payload["entries"]] == cold_result.labels()
        for row in payload["entries"]:
            assert "cached" not in row  # transient, never in the artifact
            assert len(row["state_sha256"]) == 64
        assert "wall_s" not in payload

    def test_colliding_grid_needs_label_subset(self, tmp_path):
        # Two models with the same (configuration, architecture) — a
        # seed study — cannot share one deployment zoo; a label subset
        # splits them.
        seeds = _grid(
            (
                zoo_entry(
                    "seed 0", "D1", compression=1 / 16, train_seed=0,
                    ber_samples=6,
                ),
                zoo_entry(
                    "seed 1", "D1", compression=1 / 16, train_seed=1,
                    ber_samples=6,
                ),
            ),
            name="unit-zoo-seeds",
        )
        result = train_zoo(seeds, n_workers=1)
        with pytest.raises(ConfigurationError, match="already has a model"):
            result.zoo()
        assert len(result.zoo(["seed 0"])) == 1
        assert len(result.zoo(["seed 1"])) == 1
        # Different seeds, different weights.
        rows = {row["label"]: row for row in result.entries}
        assert rows["seed 0"]["state_sha256"] != rows["seed 1"]["state_sha256"]

    def test_zoo_drives_a_network_session(self, cold_result, smoke_dataset_2x2):
        from repro.core.session import NetworkSession

        report = NetworkSession(
            smoke_dataset_2x2,
            zoo=cold_result.zoo(),
            samples_per_round=4,
            seed=2,
        ).run(2)
        assert report.n_rounds == 2
        assert all(r.scheme != "802.11" for r in report.rounds)

    def test_train_zoo_accepts_preset_names(self, tmp_path):
        with pytest.raises(ConfigurationError):
            train_zoo("no-such-grid")
        # Overrides only make sense for named presets.
        with pytest.raises(ConfigurationError, match="named grids"):
            train_zoo(
                _grid((zoo_entry("x", "D1"),), name="unit-zoo-override"),
                fidelity=SMOKE,
            )
