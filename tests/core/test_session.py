"""Tests for the full-network session simulator."""

from __future__ import annotations

import pytest

from repro.config import SMOKE
from repro.core.adaptive import QosProfile
from repro.core.session import NetworkSession, SessionReport
from repro.core.training import train_splitbeam
from repro.core.zoo import ModelZoo
from repro.errors import ConfigurationError
from repro.phy.link import LinkConfig


@pytest.fixture(scope="module")
def dataset(smoke_dataset_2x2):
    return smoke_dataset_2x2


@pytest.fixture(scope="module")
def splitbeam_setup(dataset):
    """A one-model zoo plus its trained-model lookup."""
    zoo = ModelZoo()
    trained = train_splitbeam(
        dataset, compression=1 / 8, fidelity=SMOKE, seed=0
    )
    entry = zoo.register_trained(trained, measured_ber=0.02)
    return zoo, {entry.model.bottleneck_dim: trained}


class TestConstruction:
    def test_zoo_without_models_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            NetworkSession(dataset, zoo=ModelZoo(), trained_models={})

    def test_models_override_requires_zoo(self, dataset, splitbeam_setup):
        _, models = splitbeam_setup
        with pytest.raises(ConfigurationError):
            NetworkSession(dataset, zoo=None, trained_models=models)

    def test_partial_models_override_rejected(self, dataset, splitbeam_setup):
        # The controller can walk the whole ladder; a partial override
        # must fail at construction, not as a KeyError rounds later.
        zoo, _ = splitbeam_setup
        with pytest.raises(ConfigurationError, match="missing"):
            NetworkSession(dataset, zoo=zoo, trained_models={})

    def test_zoo_alone_is_enough(self, dataset, splitbeam_setup):
        # The zoo entries carry model + quantizer width, so a session
        # needs no separate trained-model lookup.
        zoo, _ = splitbeam_setup
        report = NetworkSession(
            dataset, zoo=zoo, samples_per_round=4, seed=3
        ).run(2)
        assert all(r.scheme != "802.11" for r in report.rounds)

    def test_zoo_only_matches_trained_models(self, dataset, splitbeam_setup):
        # Deploying from zoo entries must reproduce the trained-model
        # override exactly (same models, same quantizer width).
        zoo, models = splitbeam_setup
        from_zoo = NetworkSession(
            dataset, zoo=zoo, samples_per_round=4, seed=7
        ).run(3)
        overridden = NetworkSession(
            dataset, zoo=zoo, trained_models=models, samples_per_round=4, seed=7
        ).run(3)
        assert [r.__dict__ for r in from_zoo.rounds] == [
            r.__dict__ for r in overridden.rounds
        ]

    def test_invalid_samples_per_round(self, dataset):
        with pytest.raises(ConfigurationError):
            NetworkSession(dataset, samples_per_round=0)


class TestDot11Session:
    def test_runs_and_reports(self, dataset):
        session = NetworkSession(
            dataset,
            link_config=LinkConfig(snr_db=20.0),
            samples_per_round=4,
            seed=1,
        )
        report = session.run(3)
        assert report.n_rounds == 3
        assert all(r.scheme == "802.11" for r in report.rounds)
        assert all(r.controller_action == "n/a" for r in report.rounds)
        assert 0.0 <= report.mean_ber < 0.2
        assert report.mean_goodput_bps > 0
        assert 0.0 < report.mean_occupancy < 1.0

    def test_zero_rounds_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            NetworkSession(dataset).run(0)

    def test_rows_render(self, dataset):
        report = NetworkSession(dataset, samples_per_round=2, seed=2).run(2)
        rows = report.rows()
        assert len(rows) == 2
        assert rows[0][0] == 1  # 1-based round numbering

    def test_empty_report_aggregates(self):
        report = SessionReport()
        assert report.mean_ber == 0.0
        assert report.mean_goodput_bps == 0.0
        assert report.mean_occupancy == 0.0

    def test_workers_do_not_change_records(self, dataset):
        serial = NetworkSession(dataset, samples_per_round=4, seed=9).run(3)
        pooled = NetworkSession(
            dataset, samples_per_round=4, seed=9, n_workers=2
        ).run(3)
        assert [r.__dict__ for r in serial.rounds] == [
            r.__dict__ for r in pooled.rounds
        ]


class TestSplitBeamSession:
    def test_splitbeam_lowers_occupancy(self, dataset, splitbeam_setup):
        zoo, models = splitbeam_setup
        dot11 = NetworkSession(dataset, samples_per_round=4, seed=3).run(3)
        split = NetworkSession(
            dataset,
            zoo=zoo,
            trained_models=models,
            samples_per_round=4,
            seed=3,
        ).run(3)
        assert split.mean_occupancy < dot11.mean_occupancy
        # The SplitBeam session reports the model label, not "802.11".
        assert all(r.scheme != "802.11" for r in split.rounds)

    def test_controller_reacts_in_session(self, dataset, splitbeam_setup):
        zoo, models = splitbeam_setup
        # Absurdly tight QoS: every round violates while the one-rung
        # ladder is already at its safest model, so every round is a
        # hard QoS failure — recorded as "saturated", never as an
        # in-band "hold".
        session = NetworkSession(
            dataset,
            zoo=zoo,
            trained_models=models,
            qos=QosProfile(max_ber=1e-6),
            samples_per_round=4,
            seed=4,
        )
        report = session.run(3)
        assert all(
            r.controller_action == "saturated" for r in report.rounds
        )

    def test_controller_trajectory_worker_invariant(
        self, dataset, splitbeam_setup
    ):
        # The controller chain resolves round by round in the
        # coordinator, so a worker pool must reproduce the serial
        # trajectory (actions and measurements) exactly.
        zoo, models = splitbeam_setup

        def build(n_workers):
            return NetworkSession(
                dataset,
                zoo=zoo,
                trained_models=models,
                samples_per_round=4,
                seed=6,
                n_workers=n_workers,
            ).run(3)

        serial = build(1)
        pooled = build(2)
        assert [r.__dict__ for r in serial.rounds] == [
            r.__dict__ for r in pooled.rounds
        ]

    def test_goodput_accounting_positive(self, dataset, splitbeam_setup):
        zoo, models = splitbeam_setup
        report = NetworkSession(
            dataset, zoo=zoo, trained_models=models, samples_per_round=4, seed=5
        ).run(2)
        for record in report.rounds:
            assert record.goodput_bps > 0
            assert 0 <= record.mcs_index <= 9
