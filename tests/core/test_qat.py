"""Tests for quantization-aware training of the bottleneck."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SMOKE
from repro.core.split import BottleneckQuantizer, QuantizationNoise, SplitExecutor
from repro.core.training import train_splitbeam
from repro.errors import ConfigurationError


class TestQuantizationNoise:
    def test_eval_mode_is_identity(self):
        layer = QuantizationNoise(bits=4, rng=0).eval()
        x = np.random.default_rng(0).normal(size=(5, 8))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_training_noise_bounded_by_half_step(self):
        layer = QuantizationNoise(bits=4, rng=1)
        x = np.random.default_rng(1).normal(size=(64, 16))
        perturbed = layer.forward(x)
        span = x.max(axis=1) - x.min(axis=1)
        half_step = span / (2**4 - 1) / 2.0
        assert np.all(np.abs(perturbed - x) <= half_step[:, None] + 1e-12)
        # And the noise is actually non-trivial.
        assert np.any(perturbed != x)

    def test_noise_scales_with_bits(self):
        x = np.random.default_rng(2).normal(size=(32, 16))
        coarse = QuantizationNoise(bits=2, rng=3).forward(x) - x
        fine = QuantizationNoise(bits=8, rng=3).forward(x) - x
        assert np.abs(coarse).mean() > 10 * np.abs(fine).mean()

    def test_straight_through_gradient(self):
        layer = QuantizationNoise(bits=4, rng=4)
        grad = np.random.default_rng(4).normal(size=(3, 8))
        np.testing.assert_array_equal(layer.backward(grad), grad)

    def test_no_parameters(self):
        assert list(QuantizationNoise(bits=4).parameters()) == []

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            QuantizationNoise(bits=1)
        with pytest.raises(ConfigurationError):
            QuantizationNoise(bits=64)


class TestQatTraining:
    def test_qat_model_trains_and_deploys(self, smoke_dataset_2x2):
        trained = train_splitbeam(
            smoke_dataset_2x2,
            compression=1 / 8,
            fidelity=SMOKE,
            quantizer_bits=4,
            qat_bits=4,
            seed=0,
        )
        # The noise layer rides inside the network ...
        kinds = [type(m).__name__ for m in trained.model.network.layers]
        assert "QuantizationNoise" in kinds
        # ... but deployment (eval) output is deterministic.
        x, _ = smoke_dataset_2x2.model_arrays(smoke_dataset_2x2.splits.test[:4])
        trained.model.eval()
        np.testing.assert_array_equal(
            trained.model.forward(x), trained.model.forward(x)
        )

    def test_qat_head_tail_split_unchanged(self, smoke_dataset_2x2):
        """The head stays a single Linear; the noise layer goes to the
        tail side of the split (it models the air interface)."""
        trained = train_splitbeam(
            smoke_dataset_2x2,
            compression=1 / 8,
            fidelity=SMOKE,
            qat_bits=6,
            seed=1,
        )
        head = trained.model.head_network()
        assert len(head) == 1
        executor = SplitExecutor(trained.model, BottleneckQuantizer(6))
        x, _ = smoke_dataset_2x2.model_arrays(smoke_dataset_2x2.splits.test[:2])
        out = executor.run(x)
        assert out.shape == x.shape

    def test_history_records_training(self, smoke_dataset_2x2):
        trained = train_splitbeam(
            smoke_dataset_2x2,
            compression=1 / 8,
            fidelity=SMOKE,
            qat_bits=4,
            seed=2,
        )
        assert trained.history.train_loss[-1] < trained.history.train_loss[0]
