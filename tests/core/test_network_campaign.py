"""Tests for the heterogeneous multi-STA network campaign."""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.config import SMOKE
from repro.core.network import (
    NetworkCampaign,
    campaign_round_spec,
    run_campaign,
)
from repro.errors import ConfigurationError
from repro.perf import profile_summary, reset_profiles
from repro.runtime import (
    CheckpointStore,
    NetworkCampaignSpec,
    ResultCache,
    RetryPolicy,
    mobility_episode,
    parse_plan,
    sta_profile,
)
from repro.runtime.tasks import clear_memos

SMOKE_FIDELITY = asdict(SMOKE)

N_STAS = 16
N_ROUNDS = 3


def sixteen_sta_spec() -> NetworkCampaignSpec:
    """The acceptance workload: 16 STAs, heterogeneous in every axis.

    Two bandwidths (D1 @ 20 MHz, D5 @ 40 MHz), SplitBeam ladders and
    802.11 baselines, one STA whose γ no trained model can meet (the
    802.11 fallback path), three device tiers, three Doppler spreads,
    and a mid-campaign mobility burst.
    """
    tiers = ({"sta_flops_per_s": 0.5e9}, {}, {"sta_flops_per_s": 8e9})
    stas = []
    for i in range(N_STAS):
        dataset_id = "D1" if i % 2 == 0 else "D5"
        if i % 4 == 3:
            stas.append(
                sta_profile(
                    f"sta{i:03d}",
                    dataset_id,
                    scheme="dot11",
                    cost=tiers[i % 3],
                    doppler_hz=(0.0, 2.0, 6.0)[i % 3],
                    samples_per_round=2,
                    seed=i,
                )
            )
            continue
        stas.append(
            sta_profile(
                f"sta{i:03d}",
                dataset_id,
                compressions=(1 / 16, 1 / 8) if dataset_id == "D1" else (1 / 8,),
                # SMOKE-fidelity models are rough; γ=0.5 keeps them
                # selectable except for the deliberately impossible STA.
                max_ber=1e-9 if i == 5 else 0.5,
                mu=0.2 + 0.05 * i,
                cost=tiers[i % 3],
                doppler_hz=(0.0, 2.0, 6.0)[i % 3],
                samples_per_round=2,
                seed=i,
            )
        )
    return NetworkCampaignSpec(
        name="test-16sta",
        title="16 heterogeneous STAs",
        fidelity=SMOKE_FIDELITY,
        stas=tuple(stas),
        n_rounds=N_ROUNDS,
        episodes=(
            mobility_episode(0),
            mobility_episode(2, doppler_scale=25.0, snr_offset_db=-6.0),
        ),
    )


@pytest.fixture(scope="module")
def campaign_runs(tmp_path_factory):
    """Cold 1-worker, cold 4-worker, and warm re-runs of the 16-STA spec."""
    root = tmp_path_factory.mktemp("campaign")
    spec = sixteen_sta_spec()
    store = CheckpointStore(root / "store")
    cache_serial = ResultCache(root / "cache-serial")
    cache_pool = ResultCache(root / "cache-pool")

    clear_memos()
    cold_serial = NetworkCampaign(
        spec, cache=cache_serial, store=store, n_workers=1
    ).run()
    clear_memos()
    cold_pool = NetworkCampaign(
        spec, cache=cache_pool, store=store, n_workers=4
    ).run()
    clear_memos()
    reset_profiles()
    warm = NetworkCampaign(
        spec, cache=cache_serial, store=store, n_workers=1
    ).run()
    warm_profiles = {entry.name for entry in profile_summary()}
    return {
        "spec": spec,
        "store": store,
        "cold_serial": cold_serial,
        "cold_pool": cold_pool,
        "warm": warm,
        "warm_profiles": warm_profiles,
    }


class TestDeterminism:
    def test_worker_count_does_not_change_a_byte(self, campaign_runs):
        serial = json.dumps(
            campaign_runs["cold_serial"].to_dict(), sort_keys=True
        )
        pooled = json.dumps(
            campaign_runs["cold_pool"].to_dict(), sort_keys=True
        )
        assert serial == pooled

    def test_warm_rerun_is_byte_identical(self, campaign_runs):
        cold = json.dumps(
            campaign_runs["cold_serial"].to_dict(), sort_keys=True
        )
        warm = json.dumps(campaign_runs["warm"].to_dict(), sort_keys=True)
        assert cold == warm

    def test_warm_rerun_executes_zero_link_simulations(self, campaign_runs):
        warm = campaign_runs["warm"]
        assert warm.n_executed_rounds == 0
        assert warm.n_cached_rounds == N_STAS * N_ROUNDS
        assert warm.zoo_trained == 0
        # The @profiled registry confirms no link simulator ran — and no
        # CSI dataset was even sampled (rounds replay from the store;
        # datasets build lazily only for rounds that execute).
        assert "link.measure_ber" not in campaign_runs["warm_profiles"]
        assert "sampler.collect_session" not in campaign_runs["warm_profiles"]

    def test_cold_runs_executed_everything(self, campaign_runs):
        cold = campaign_runs["cold_serial"]
        assert cold.n_executed_rounds == N_STAS * N_ROUNDS
        assert cold.n_cached_rounds == 0
        assert cold.zoo_trained == 3  # D1 K=1/16, D1 K=1/8, D5 K=1/8

    def test_second_cold_run_loads_zoo_from_store(self, campaign_runs):
        assert campaign_runs["cold_pool"].zoo_trained == 0
        assert campaign_runs["cold_pool"].zoo_cached == 3


class TestHeterogeneity:
    def test_modes_cover_all_three_paths(self, campaign_runs):
        modes = campaign_runs["cold_serial"].summary["modes"]
        assert modes["splitbeam"] >= 8
        assert modes["802.11"] == 4  # every fourth STA
        assert modes["802.11-fallback"] == 1  # the γ=1e-9 STA

    def test_fallback_sta_records_selection_and_uses_dot11(
        self, campaign_runs
    ):
        row = campaign_runs["cold_serial"].sta("sta005")
        assert row["mode"] == "802.11-fallback"
        assert row["selection"]["selected"] is None
        assert row["selection"]["rejected"]  # every rung explained
        assert all(r["scheme"] == "802.11" for r in row["rounds"])
        assert all(r["action"] == "n/a" for r in row["rounds"])

    def test_splitbeam_sta_deploys_its_ladder(self, campaign_runs):
        row = campaign_runs["cold_serial"].sta("sta000")
        assert row["mode"] == "splitbeam"
        assert row["selection"]["selected"] is not None
        assert all(r["scheme"] != "802.11" for r in row["rounds"])
        # SplitBeam reports are far smaller than the 802.11 BMR.
        dot11_row = campaign_runs["cold_serial"].sta("sta003")
        assert (
            row["summary"]["mean_feedback_bits"]
            < dot11_row["summary"]["mean_feedback_bits"]
        )

    def test_round_zero_deploys_the_selected_model(self, campaign_runs):
        # The Fig. 1 flow: the Eq. (7) winner is what the STA deploys;
        # the controller adapts *from* it rather than from an unvetted
        # safest rung that selection may have rejected on delay.
        for row in campaign_runs["cold_serial"].stas:
            if row["mode"] == "splitbeam":
                assert (
                    row["rounds"][0]["scheme"]
                    == row["selection"]["selected"]
                )

    def test_mobility_burst_degrades_operating_snr(self, campaign_runs):
        # sta001 (2 Hz Doppler): the round-2 episode scales Doppler by
        # 25x and subtracts 6 dB, so its effective SNR must collapse.
        row = campaign_runs["cold_serial"].sta("sta001")
        calm = row["rounds"][0]["effective_snr_db"]
        burst = row["rounds"][2]["effective_snr_db"]
        assert burst < calm - 6.0

    def test_static_sta_unaffected_by_doppler_scaling(self, campaign_runs):
        # sta000 has zero Doppler: scaling 0 by 25 is still 0, so only
        # the -6 dB offset moves its operating point.
        row = campaign_runs["cold_serial"].sta("sta000")
        calm = row["rounds"][0]["effective_snr_db"]
        burst = row["rounds"][2]["effective_snr_db"]
        assert burst == pytest.approx(calm - 6.0, abs=0.2)

    def test_every_sta_reports_every_round(self, campaign_runs):
        for row in campaign_runs["cold_serial"].stas:
            assert [r["round"] for r in row["rounds"]] == list(range(N_ROUNDS))


class TestAggregation:
    def test_round_rows_sum_sta_feedback_bits(self, campaign_runs):
        result = campaign_runs["cold_serial"]
        for round_row in result.rounds:
            expected = sum(
                row["rounds"][round_row["round"]]["feedback_bits"]
                for row in result.stas
            )
            assert round_row["feedback_bits_total"] == expected

    def test_occupancy_ratio_at_least_occupancy(self, campaign_runs):
        for round_row in campaign_runs["cold_serial"].rounds:
            assert round_row["occupancy_ratio"] >= round_row["occupancy"]
            assert 0.0 < round_row["occupancy"] <= 1.0

    def test_infeasible_rounds_report_zero_goodput(self, campaign_runs):
        for round_row in campaign_runs["cold_serial"].rounds:
            if not round_row["feasible"]:
                assert round_row["goodput_bps"] == 0.0
            else:
                assert round_row["goodput_bps"] > 0.0

    def test_summary_counts_are_consistent(self, campaign_runs):
        result = campaign_runs["cold_serial"]
        assert result.summary["n_stas"] == N_STAS
        assert result.summary["n_rounds"] == N_ROUNDS
        assert sum(result.summary["modes"].values()) == N_STAS
        assert result.summary["hard_qos_failures"] == sum(
            row["summary"]["saturated"] for row in result.stas
        )

    def test_sixteen_stas_tax_the_interval(self, campaign_runs):
        # 16 STAs' sounding within 10 ms eats a substantial airtime
        # fraction even with compressed reports (~26% here) — the
        # paper's scaling argument in campaign form.
        assert campaign_runs["cold_serial"].summary["max_occupancy_ratio"] > 0.2

    def test_manifest_round_trips_through_json(self, campaign_runs, tmp_path):
        path = tmp_path / "manifest.json"
        campaign_runs["cold_serial"].write_json(path)
        payload = json.loads(path.read_text())
        assert payload == campaign_runs["cold_serial"].to_dict()

    def test_unknown_sta_rejected(self, campaign_runs):
        with pytest.raises(ConfigurationError):
            campaign_runs["cold_serial"].sta("nope")


class TestCacheSemantics:
    def test_longer_campaign_reuses_shorter_prefix(self, tmp_path):
        # Round keys exclude n_rounds, so extending a campaign re-uses
        # every cached round and only the new tail executes.
        def spec(n_rounds):
            return NetworkCampaignSpec(
                name="prefix-test",
                title="prefix",
                fidelity=SMOKE_FIDELITY,
                stas=(
                    sta_profile(
                        "a",
                        "D1",
                        compressions=(1 / 8,),
                        max_ber=0.5,
                        samples_per_round=2,
                        seed=0,
                    ),
                    sta_profile(
                        "b", "D1", scheme="dot11", samples_per_round=2, seed=1
                    ),
                ),
                n_rounds=n_rounds,
            )

        cache = ResultCache(tmp_path / "cache")
        store = CheckpointStore(tmp_path / "store")
        clear_memos()
        short = NetworkCampaign(spec(2), cache=cache, store=store).run()
        assert short.n_executed_rounds == 4
        longer = NetworkCampaign(spec(3), cache=cache, store=store).run()
        assert longer.n_cached_rounds == 4
        assert longer.n_executed_rounds == 2
        # The shared prefix is bit-identical between the two runs.
        for name in ("a", "b"):
            assert longer.sta(name)["rounds"][:2] == short.sta(name)["rounds"]

    def test_round_spec_excludes_cosmetic_names(self):
        spec = sixteen_sta_spec()
        payload = campaign_round_spec(spec, spec.stas[0], 1)
        assert "name" not in payload["sta"]
        assert "name" not in payload["campaign"]["fidelity"]
        assert payload["round"] == 1
        # Canonically JSON-able (the cache-key requirement).
        json.dumps(payload, sort_keys=True)

    def test_round_spec_ignores_future_episodes(self):
        # A round's measurement never consults episodes that start
        # later, so neither may its cache key: a campaign whose episode
        # schedule shifted with its length (e.g. mobility-episodes
        # placing its burst at n_rounds // 3) still shares the calm
        # prefix with the shorter run.
        def spec(episodes):
            return NetworkCampaignSpec(
                name="episode-key",
                title="x",
                fidelity=SMOKE_FIDELITY,
                stas=(sta_profile("a", "D1"),),
                n_rounds=8,
                episodes=episodes,
            )

        short = spec((mobility_episode(0), mobility_episode(4, doppler_scale=9.0)))
        longer = spec((mobility_episode(0), mobility_episode(5, doppler_scale=9.0)))
        for round_index in range(4):  # before either burst: shared keys
            assert campaign_round_spec(
                short, short.stas[0], round_index
            ) == campaign_round_spec(longer, longer.stas[0], round_index)
        # From the earlier burst onward the environments diverge.
        assert campaign_round_spec(
            short, short.stas[0], 4
        ) != campaign_round_spec(longer, longer.stas[0], 4)


class TestSpecValidation:
    def test_duplicate_sta_names_rejected(self):
        sta = sta_profile("dup", "D1")
        with pytest.raises(ConfigurationError, match="duplicate"):
            NetworkCampaignSpec(
                name="x",
                title="x",
                fidelity=SMOKE_FIDELITY,
                stas=(sta, dict(sta)),
                n_rounds=1,
            )

    def test_unordered_episodes_rejected(self):
        with pytest.raises(ConfigurationError, match="ordered"):
            NetworkCampaignSpec(
                name="x",
                title="x",
                fidelity=SMOKE_FIDELITY,
                stas=(sta_profile("a", "D1"),),
                n_rounds=2,
                episodes=(mobility_episode(1), mobility_episode(0)),
            )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="scheme"):
            sta_profile("a", "D1", scheme="carrier-pigeon")

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError, match="compression"):
            sta_profile("a", "D1", compressions=())

    def test_no_stas_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkCampaignSpec(
                name="x",
                title="x",
                fidelity=SMOKE_FIDELITY,
                stas=(),
                n_rounds=1,
            )

    def test_zero_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkCampaignSpec(
                name="x",
                title="x",
                fidelity=SMOKE_FIDELITY,
                stas=(sta_profile("a", "D1"),),
                n_rounds=0,
            )

    def test_override_kwargs_require_named_campaign(self):
        spec = NetworkCampaignSpec(
            name="x",
            title="x",
            fidelity=SMOKE_FIDELITY,
            stas=(sta_profile("a", "D1"),),
            n_rounds=1,
        )
        with pytest.raises(ConfigurationError, match="named campaigns"):
            run_campaign(spec, n_stas=4)


class TestChaosCampaign:
    """The robustness acceptance gate: chaos costs retries, never bytes."""

    @pytest.fixture(scope="class")
    def chaos_run(self, campaign_runs, tmp_path_factory):
        # One worker hard-crash, a 50% first-attempt error rate on the
        # middle round, a scheduling delay, and torn writes on half the
        # cache entries — all seeded, all recoverable within the
        # default retry budget.
        plan = parse_plan(
            "crash,sta004/round-0000,count=1;"
            "error,*/round-0001,rate=0.5,count=1;"
            "delay,sta002/round-0002,count=1,delay_s=0.01;"
            "torn,cache:*,rate=0.5"
        )
        cache = ResultCache(tmp_path_factory.mktemp("chaos") / "cache")
        clear_memos()
        result = NetworkCampaign(
            campaign_runs["spec"],
            cache=cache,
            store=campaign_runs["store"],
            n_workers=2,
            faults=plan,
        ).run()
        return {"result": result, "cache": cache}

    def test_chaotic_run_is_byte_identical_to_clean(
        self, campaign_runs, chaos_run
    ):
        clean = json.dumps(
            campaign_runs["cold_serial"].to_dict(), sort_keys=True
        )
        chaotic = json.dumps(
            chaos_run["result"].to_dict(), sort_keys=True
        )
        assert chaotic == clean

    def test_chaos_is_visible_in_health_not_manifest(self, chaos_run):
        result = chaos_run["result"]
        executor = result.health["executor"]
        assert executor["worker_crashes"] >= 1
        assert executor["pool_rebuilds"] >= 1
        assert executor["task_errors"] >= 1
        assert executor["injected_faults"] >= 1
        assert executor["serial_fallbacks"] == 0
        assert executor["failed"] == []
        assert "health" not in result.to_dict()
        assert (
            result.to_dict(include_health=True)["health"] == result.health
        )

    def test_warm_rerun_quarantines_torn_entries_and_matches(
        self, campaign_runs, chaos_run
    ):
        # The chaotic run committed torn cache entries. A warm, fault-
        # free re-run must quarantine them, recompute those rounds, and
        # still produce the clean bytes.
        clear_memos()
        warm = NetworkCampaign(
            campaign_runs["spec"],
            cache=chaos_run["cache"],
            store=campaign_runs["store"],
            n_workers=1,
        ).run()
        assert json.dumps(warm.to_dict(), sort_keys=True) == json.dumps(
            campaign_runs["cold_serial"].to_dict(), sort_keys=True
        )
        assert warm.health["cache"]["quarantined"] >= 1
        # Every quarantined entry forces a recompute; chained STAs also
        # recompute the tail of rounds behind a torn one.
        assert warm.n_executed_rounds >= warm.health["cache"]["quarantined"]
        assert (
            warm.n_executed_rounds + warm.n_cached_rounds
            == N_STAS * N_ROUNDS
        )


class TestGracefulDegradation:
    """A STA whose round exhausts retries degrades alone."""

    def _spec(self):
        return NetworkCampaignSpec(
            name="degrade-test",
            title="degradation",
            fidelity=SMOKE_FIDELITY,
            stas=(
                sta_profile(
                    "a",
                    "D1",
                    compressions=(1 / 8,),
                    max_ber=0.5,
                    samples_per_round=2,
                    seed=0,
                ),
                sta_profile(
                    "b", "D1", scheme="dot11", samples_per_round=2, seed=1
                ),
            ),
            n_rounds=3,
        )

    @pytest.fixture(scope="class")
    def degraded_runs(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("degrade")
        spec = self._spec()
        store = CheckpointStore(root / "store")
        clear_memos()
        clean = NetworkCampaign(
            spec, cache=ResultCache(root / "cache-clean"), store=store
        ).run()
        # STA "a" is chained (splitbeam): its round 1 fails beyond the
        # retry budget, so round 2 (which depends on it) is skipped.
        plan = parse_plan("error,a/round-0001,count=99")
        clear_memos()
        degraded = NetworkCampaign(
            spec,
            cache=ResultCache(root / "cache-chaos"),
            store=store,
            policy=RetryPolicy(retries=1, backoff_s=0.0),
            faults=plan,
        ).run()
        return {"clean": clean, "degraded": degraded}

    def test_campaign_completes_with_partial_coverage(self, degraded_runs):
        result = degraded_runs["degraded"]
        assert result.summary["degraded_stas"] == ["a"]
        assert result.summary["partial_coverage"] is True
        assert degraded_runs["clean"].summary["degraded_stas"] == []
        assert degraded_runs["clean"].summary["partial_coverage"] is False

    def test_degraded_sta_reports_failed_and_skipped_rounds(
        self, degraded_runs
    ):
        row = degraded_runs["degraded"].sta("a")
        assert [r["round"] for r in row["rounds"]] == [0]
        assert row["degraded"]["n_reported"] == 1
        assert [f["round"] for f in row["degraded"]["failed_rounds"]] == [1]
        assert "InjectedFaultError" in (
            row["degraded"]["failed_rounds"][0]["error"]
        )
        assert row["degraded"]["skipped_rounds"] == [2]

    def test_healthy_sta_is_untouched(self, degraded_runs):
        assert degraded_runs["degraded"].sta("b") == degraded_runs[
            "clean"
        ].sta("b")

    def test_accounting_reflects_completed_rounds_only(self, degraded_runs):
        result = degraded_runs["degraded"]
        assert result.n_executed_rounds == 4  # 6 tasks - 1 failed - 1 skipped
        executor = result.health["executor"]
        assert [row["task"] for row in executor["failed"]] == [
            "a/round-0001"
        ]
        assert executor["skipped"] == ["a/round-0002"]

    def test_aggregates_cover_reporting_stas_only(self, degraded_runs):
        result = degraded_runs["degraded"]
        # Rounds 1 and 2 aggregate over STA "b" alone.
        by_round = {row["round"]: row for row in result.rounds}
        assert set(by_round) == {0, 1, 2}
        b_rounds = {r["round"]: r for r in result.sta("b")["rounds"]}
        for idx in (1, 2):
            assert (
                by_round[idx]["feedback_bits_total"]
                == b_rounds[idx]["feedback_bits"]
            )

    def test_degraded_manifest_round_trips_through_json(
        self, degraded_runs, tmp_path
    ):
        path = tmp_path / "degraded.json"
        degraded_runs["degraded"].write_json(path)
        assert json.loads(path.read_text()) == degraded_runs[
            "degraded"
        ].to_dict()


class TestPresetExecution:
    def test_heterogeneous_qos_preset_runs_by_name(self, tmp_path):
        clear_memos()
        result = run_campaign(
            "heterogeneous-qos",
            fidelity=SMOKE,
            cache=ResultCache(tmp_path / "cache"),
            store=CheckpointStore(tmp_path / "store"),
            n_stas=3,
            n_rounds=2,
        )
        assert result.campaign == "heterogeneous-qos"
        assert result.summary["n_stas"] == 3
        # The strictest-γ STA cannot be served by SMOKE-grade models.
        assert result.summary["modes"].get("802.11-fallback", 0) >= 1
        assert result.n_executed_rounds == 6
