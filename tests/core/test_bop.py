"""Tests for the BOP heuristic (Sec. IV-C)."""

import pytest

from repro.config import SMOKE
from repro.errors import ConfigurationError, ConstraintViolation
from repro.core.bop import BopConstraints, solve_bop


def evaluator_from_table(table):
    """Build an evaluator returning canned BERs keyed by (depth, K)."""
    calls = []

    def evaluate(widths, compression):
        calls.append(list(widths))
        depth = len(widths) - 2  # extra layers after the bottleneck
        return table[(depth, round(1 / compression))], None

    evaluate.calls = calls
    return evaluate


class TestHeuristic:
    def test_prefers_highest_feasible_compression(self, smoke_dataset_2x2):
        table = {(1, 32): 0.5, (1, 16): 0.04, (1, 8): 0.02, (1, 4): 0.01}
        result = solve_bop(
            smoke_dataset_2x2,
            BopConstraints(max_ber=0.05),
            evaluator=evaluator_from_table(table),
            max_extra_layers=0,
        )
        # 1/32 fails, 1/16 passes -> selected without trying 1/8 or 1/4.
        assert result.selected.compression == pytest.approx(1 / 16)
        assert result.n_trials == 2

    def test_search_order_smallest_bottleneck_first(self, smoke_dataset_2x2):
        table = {(1, 32): 0.01, (1, 16): 0.01, (1, 8): 0.01, (1, 4): 0.01}
        evaluator = evaluator_from_table(table)
        result = solve_bop(
            smoke_dataset_2x2,
            BopConstraints(max_ber=0.05),
            evaluator=evaluator,
            max_extra_layers=0,
        )
        assert result.selected.compression == pytest.approx(1 / 32)
        assert result.n_trials == 1

    def test_deepens_when_ladder_fails(self, smoke_dataset_2x2):
        table = {
            (1, 32): 0.5, (1, 16): 0.5, (1, 8): 0.5, (1, 4): 0.5,
            (2, 32): 0.5, (2, 16): 0.03, (2, 8): 0.02, (2, 4): 0.01,
        }
        result = solve_bop(
            smoke_dataset_2x2,
            BopConstraints(max_ber=0.05),
            evaluator=evaluator_from_table(table),
            max_extra_layers=1,
        )
        # Selected the deeper model: [D, B, B, D].
        assert len(result.selected.widths) == 4
        assert result.selected.compression == pytest.approx(1 / 16)
        assert result.n_trials == 4 + 2

    def test_infeasible_raises_with_trace(self, smoke_dataset_2x2):
        table = {(d, k): 0.9 for d in (1, 2) for k in (32, 16, 8, 4)}
        with pytest.raises(ConstraintViolation) as excinfo:
            solve_bop(
                smoke_dataset_2x2,
                BopConstraints(max_ber=0.001),
                evaluator=evaluator_from_table(table),
                max_extra_layers=1,
            )
        assert len(excinfo.value.trials) == 8

    def test_delay_constraint_enforced(self, smoke_dataset_2x2):
        table = {(1, 32): 0.01, (1, 16): 0.01, (1, 8): 0.01, (1, 4): 0.01}
        with pytest.raises(ConstraintViolation):
            solve_bop(
                smoke_dataset_2x2,
                BopConstraints(max_ber=0.05, max_delay_s=1e-9),
                evaluator=evaluator_from_table(table),
                max_extra_layers=0,
            )

    def test_trials_record_costs(self, smoke_dataset_2x2):
        table = {(1, 32): 0.01}
        result = solve_bop(
            smoke_dataset_2x2,
            BopConstraints(max_ber=0.05),
            evaluator=evaluator_from_table(table),
            max_extra_layers=0,
        )
        trial = result.selected
        assert trial.delay_s > 0
        assert trial.objective > 0
        assert trial.satisfied

    def test_real_training_end_to_end(self, smoke_dataset_2x2):
        """Full heuristic with real (smoke-budget) training."""
        result = solve_bop(
            smoke_dataset_2x2,
            BopConstraints(max_ber=0.45, max_delay_s=10e-3),
            compressions=(1 / 8, 1 / 4),
            fidelity=SMOKE,
            max_extra_layers=0,
            seed=0,
        )
        assert result.selected.trained is not None
        assert result.selected.ber <= 0.45


class TestConstraints:
    def test_mu_bounds(self):
        with pytest.raises(ConfigurationError):
            BopConstraints(mu=0.0)
        with pytest.raises(ConfigurationError):
            BopConstraints(mu=1.0)

    def test_positive_ceilings(self):
        with pytest.raises(ConfigurationError):
            BopConstraints(max_ber=0.0)

    def test_empty_ladder_rejected(self, smoke_dataset_2x2):
        with pytest.raises(ConfigurationError):
            solve_bop(
                smoke_dataset_2x2,
                BopConstraints(),
                compressions=(),
                evaluator=lambda w, k: (0.0, None),
            )
