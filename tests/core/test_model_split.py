"""Tests for the SplitBeam architecture and head/tail split execution."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FeedbackError
from repro.core.model import SplitBeamNet, three_layer_widths
from repro.core.split import (
    BottleneckQuantizer,
    HeadModel,
    SplitExecutor,
    TailModel,
)


class TestWidths:
    def test_table2_2x2_20mhz(self):
        # Table II highlighted row: 224-28-28-224 at K = 1/8.
        assert three_layer_widths(224, 1 / 8) == [224, 28, 28, 224]

    def test_table2_40_and_80mhz(self):
        assert three_layer_widths(456, 1 / 8) == [456, 57, 57, 456]
        assert three_layer_widths(968, 1 / 8) == [968, 121, 121, 968]

    def test_minimum_bottleneck_of_one(self):
        assert three_layer_widths(10, 0.01)[1] == 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            three_layer_widths(224, 0.0)
        with pytest.raises(ConfigurationError):
            three_layer_widths(1, 0.5)


class TestSplitBeamNet:
    def test_architecture_introspection(self):
        net = SplitBeamNet([224, 28, 28, 224], rng=0)
        assert net.input_dim == 224
        assert net.output_dim == 224
        assert net.bottleneck_dim == 28
        assert net.compression == pytest.approx(1 / 8)
        assert net.n_weight_layers == 3
        assert net.label() == "224-28-28-224"

    def test_mac_counts(self):
        net = SplitBeamNet([224, 28, 28, 224], rng=0)
        assert net.head_macs() == 224 * 28
        assert net.tail_macs() == 28 * 28 + 28 * 224

    def test_table3_mac_calibration(self):
        """The [D, D/4, D] model's MACs match the Table III fit."""
        net = SplitBeamNet([224, 56, 224], rng=0)
        assert net.head_macs() + net.tail_macs() == 2 * 224 * 56

    def test_forward_shape(self, rng):
        net = SplitBeamNet([10, 4, 10], rng=0)
        assert net.forward(rng.normal(size=(3, 10))).shape == (3, 10)

    def test_head_tail_composition_equals_full(self, rng):
        net = SplitBeamNet([16, 4, 4, 16], rng=0)
        net.eval()
        x = rng.normal(size=(5, 16))
        full = net.forward(x)
        composed = net.tail_network().forward(net.head_network().forward(x))
        assert np.allclose(full, composed)

    def test_head_is_single_linear(self):
        net = SplitBeamNet([16, 4, 16], rng=0)
        assert len(net.head_network()) == 1

    def test_trainable_end_to_end(self, rng):
        from repro.nn import MSELoss, Trainer, TrainingConfig

        net = SplitBeamNet([8, 4, 8], rng=0)
        x = rng.normal(size=(64, 8))
        trainer = Trainer(
            net, loss=MSELoss(), config=TrainingConfig(epochs=10, seed=0)
        )
        history = trainer.fit(x, x)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_activation_options(self):
        for act in ("relu", "leaky_relu", "tanh", "linear"):
            SplitBeamNet([8, 2, 8], activation=act, rng=0)
        with pytest.raises(ConfigurationError):
            SplitBeamNet([8, 2, 8], activation="gelu", rng=0)

    def test_too_few_widths(self):
        with pytest.raises(ConfigurationError):
            SplitBeamNet([8, 8], rng=0)


class TestQuantizer:
    def test_round_trip_error_bounded(self, rng):
        quantizer = BottleneckQuantizer(bits=8)
        values = rng.normal(size=(10, 32)) * 5.0
        feedback = quantizer.quantize(values)
        restored = quantizer.dequantize(feedback)
        span = values.max(axis=1) - values.min(axis=1)
        step = span / (2**8 - 1)
        assert np.all(np.abs(restored - values) <= step[:, None] / 2 + 1e-12)

    def test_more_bits_less_error(self, rng):
        values = rng.normal(size=(4, 64))
        errors = {}
        for bits in (4, 8, 16):
            q = BottleneckQuantizer(bits)
            errors[bits] = np.max(np.abs(q.dequantize(q.quantize(values)) - values))
        assert errors[16] < errors[8] < errors[4]

    def test_payload_bits(self, rng):
        q = BottleneckQuantizer(bits=8)
        feedback = q.quantize(rng.normal(size=(1, 28)))
        assert feedback.payload_bits == 28 * 8 + 32

    def test_constant_vector_safe(self):
        q = BottleneckQuantizer(bits=8)
        values = np.full((2, 16), 3.14)
        restored = q.dequantize(q.quantize(values))
        assert np.allclose(restored, values, atol=1e-9)

    def test_bit_width_mismatch_raises(self, rng):
        feedback = BottleneckQuantizer(8).quantize(rng.normal(size=(1, 4)))
        with pytest.raises(FeedbackError):
            BottleneckQuantizer(16).dequantize(feedback)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            BottleneckQuantizer(1)


class TestSplitExecution:
    def test_unquantized_split_is_exact(self, rng):
        net = SplitBeamNet([32, 8, 8, 32], rng=0)
        net.eval()
        x = rng.normal(size=(6, 32))
        assert np.array_equal(SplitExecutor(net, None).run(x), net.forward(x))

    def test_quantized_split_close(self, rng):
        net = SplitBeamNet([32, 8, 32], rng=0)
        net.eval()
        x = rng.normal(size=(6, 32))
        out = SplitExecutor(net, BottleneckQuantizer(16)).run(x)
        assert np.allclose(out, net.forward(x), atol=1e-3)

    def test_head_produces_feedback_object(self, rng):
        net = SplitBeamNet([32, 8, 32], rng=0)
        head = HeadModel(net, BottleneckQuantizer(8))
        feedback = head.compress(rng.normal(size=(2, 32)))
        assert feedback.codes.shape == (2, 8)

    def test_tail_requires_quantizer_for_codes(self, rng):
        net = SplitBeamNet([32, 8, 32], rng=0)
        feedback = HeadModel(net, BottleneckQuantizer(8)).compress(
            rng.normal(size=(1, 32))
        )
        with pytest.raises(FeedbackError):
            TailModel(net, None).reconstruct(feedback)

    def test_feedback_bits(self):
        net = SplitBeamNet([224, 28, 224], rng=0)
        executor = SplitExecutor(net, BottleneckQuantizer(16))
        assert executor.feedback_bits() == 28 * 16 + 32

    def test_split_shares_trained_parameters(self, rng):
        net = SplitBeamNet([16, 4, 16], rng=0)
        executor = SplitExecutor(net, None)
        x = rng.normal(size=(2, 16))
        before = executor.run(x)
        for param in net.parameters():
            param.data += 1.0
        after = executor.run(x)
        assert not np.allclose(before, after)
