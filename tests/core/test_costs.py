"""Tests for the Sec. IV-B/IV-E cost models."""

import pytest

from repro.errors import ConfigurationError
from repro.core.costs import (
    StaCostModel,
    analytical_splitbeam_flops,
    comp_load_ratio,
    feedback_size_ratio,
    splitbeam_feedback_bits,
    splitbeam_head_flops,
)
from repro.core.model import SplitBeamNet


class TestExactCosts:
    def test_head_flops_is_2x_macs(self):
        net = SplitBeamNet([224, 28, 224], rng=0)
        assert splitbeam_head_flops(net) == 2 * 224 * 28

    def test_feedback_bits(self):
        assert splitbeam_feedback_bits(28) == 28 * 16
        assert splitbeam_feedback_bits(28, bits_per_element=8) == 224
        with pytest.raises(ConfigurationError):
            splitbeam_feedback_bits(0)


class TestAnalyticalRatios:
    def test_paper_calibration_point(self):
        """Sec. IV-E1: K=1/8 at 80 MHz cuts 75% of the 4x4 STA load."""
        ratio = comp_load_ratio(1 / 8, 4, 4, 80)
        assert ratio == pytest.approx(0.25, rel=0.01)

    def test_paper_8x8_claim(self):
        """Sec. IV-E1: ... and 87% in 8x8 systems (ratio ~ 0.13)."""
        ratio = comp_load_ratio(1 / 8, 8, 8, 80)
        assert ratio < 0.15

    def test_ratio_linear_in_k(self):
        low = comp_load_ratio(1 / 32, 4, 4, 40)
        high = comp_load_ratio(1 / 8, 4, 4, 40)
        assert high / low == pytest.approx(4.0, rel=1e-9)

    def test_ratio_improves_with_antennas(self):
        assert comp_load_ratio(1 / 8, 8, 8, 80) < comp_load_ratio(1 / 8, 4, 4, 80)

    def test_fig7_headline(self):
        """Sec. IV-E2: 91%/93% feedback reduction at 80 MHz (K=1/32)."""
        assert feedback_size_ratio(1 / 32, 4, 4, 80) == pytest.approx(
            0.09, abs=0.02
        )
        assert feedback_size_ratio(1 / 32, 8, 8, 80) == pytest.approx(
            0.07, abs=0.02
        )

    def test_splitbeam_size_constant_in_bandwidth(self):
        """Sec. IV-E2: SplitBeam's compression rate K does not grow with
        the channel matrix — the ratio only moves because the 802.11
        report's fixed per-report overhead amortizes."""
        r20 = feedback_size_ratio(1 / 8, 4, 4, 20)
        r80 = feedback_size_ratio(1 / 8, 4, 4, 80)
        assert r20 == pytest.approx(r80, rel=0.05)

    def test_invalid_compression(self):
        with pytest.raises(ConfigurationError):
            analytical_splitbeam_flops(0.0, 2, 2, 56)


class TestStaCostModel:
    def test_times_scale_with_flops(self):
        model = StaCostModel()
        assert model.head_time_s(2e9) == pytest.approx(1.0)
        assert model.tail_time_s(50e9) == pytest.approx(1.0)

    def test_airtime_uses_frame_model(self):
        model = StaCostModel(feedback_bandwidth_mhz=20)
        assert model.airtime_s(0) == pytest.approx(36e-6)
        assert model.airtime_s(10_000) > model.airtime_s(100)

    def test_objective_weighting(self):
        model = StaCostModel()
        head, tail, bits = 1e6, 1e6, 1000
        sta_heavy = model.bop_objective(head, tail, bits, mu=0.9)
        air_heavy = model.bop_objective(head, tail, bits, mu=0.1)
        # With mu = 0.9 the (large) STA energy term dominates.
        assert sta_heavy != air_heavy

    def test_objective_scales_with_users(self):
        model = StaCostModel()
        one = model.bop_objective(1e6, 1e6, 1000, mu=0.5, n_users=1)
        three = model.bop_objective(1e6, 1e6, 1000, mu=0.5, n_users=3)
        assert three == pytest.approx(3 * one)

    def test_mu_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            StaCostModel().bop_objective(1e6, 1e6, 100, mu=1.0)

    def test_end_to_end_delay_sums_terms(self):
        model = StaCostModel()
        delay = model.end_to_end_delay_s(2e9, 50e9, 0)
        assert delay == pytest.approx(1.0 + 36e-6 + 1.0)
