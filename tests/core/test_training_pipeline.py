"""Tests for SplitBeam training, BF prediction, and scheme evaluation."""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.errors import TrainingError
from repro.baselines import Dot11Feedback, IdealSvdFeedback
from repro.core.pipeline import (
    SplitBeamFeedback,
    compare_schemes,
    evaluate_scheme,
)
from repro.core.training import ber_of_model, predict_bf, train_splitbeam
from repro.phy.link import LinkConfig


@pytest.fixture(scope="module")
def trained(smoke_dataset_2x2):
    return train_splitbeam(
        smoke_dataset_2x2, compression=1 / 4, fidelity=SMOKE, seed=0
    )


class TestTraining:
    def test_loss_decreases(self, trained):
        history = trained.history
        assert history.train_loss[-1] < history.train_loss[0]

    def test_architecture_from_compression(self, trained):
        assert trained.model.widths == [224, 56, 56, 224]
        assert trained.compression == pytest.approx(1 / 4)

    def test_explicit_widths(self, smoke_dataset_2x2):
        result = train_splitbeam(
            smoke_dataset_2x2,
            widths=[224, 16, 224],
            fidelity=SMOKE,
            seed=0,
        )
        assert result.model.widths == [224, 16, 224]

    def test_wrong_widths_rejected(self, smoke_dataset_2x2):
        with pytest.raises(TrainingError):
            train_splitbeam(
                smoke_dataset_2x2, widths=[100, 10, 224], fidelity=SMOKE
            )

    def test_invalid_checkpoint_metric(self, smoke_dataset_2x2):
        with pytest.raises(TrainingError):
            train_splitbeam(
                smoke_dataset_2x2, fidelity=SMOKE, checkpoint_on="accuracy"
            )

    def test_training_config_uses_adam(self):
        # Documented deviation from Sec. IV-D: Adam everywhere (plain
        # SGD diverges/under-trains on the wide 160 MHz models here).
        from repro.core.training import splitbeam_training_config

        config = splitbeam_training_config(SMOKE, seed=0)
        assert config.optimizer == "adam"

    def test_ber_checkpointing_runs(self, smoke_dataset_2x2):
        result = train_splitbeam(
            smoke_dataset_2x2,
            compression=1 / 4,
            fidelity=SMOKE,
            checkpoint_on="ber",
            seed=0,
        )
        assert len(result.history.val_metric) == SMOKE.epochs
        assert all(0 <= m <= 1 for m in result.history.val_metric)


class TestPrediction:
    def test_predict_bf_shape(self, trained, smoke_dataset_2x2):
        indices = smoke_dataset_2x2.splits.test[:5]
        bf = predict_bf(trained.model, smoke_dataset_2x2, indices)
        assert bf.shape == (5, 2, 56, 2)
        assert np.iscomplexobj(bf)

    def test_predictions_near_targets(self, trained, smoke_dataset_2x2):
        indices = smoke_dataset_2x2.splits.test[:5]
        bf = predict_bf(trained.model, smoke_dataset_2x2, indices)
        truth = smoke_dataset_2x2.link_bf(indices)
        corr = np.abs(np.sum(bf.conj() * truth, axis=-1)) / np.maximum(
            np.linalg.norm(bf, axis=-1) * np.linalg.norm(truth, axis=-1), 1e-12
        )
        assert np.mean(corr) > 0.7  # SMOKE budget: loosely learned

    def test_quantized_prediction_close_to_raw(self, trained, smoke_dataset_2x2):
        indices = smoke_dataset_2x2.splits.test[:3]
        raw = predict_bf(trained.model, smoke_dataset_2x2, indices)
        quantized = predict_bf(
            trained.model, smoke_dataset_2x2, indices, quantizer=trained.quantizer
        )
        assert np.allclose(raw, quantized, atol=1e-2)

    def test_ber_of_model_in_range(self, trained, smoke_dataset_2x2):
        result = ber_of_model(
            trained.model,
            smoke_dataset_2x2,
            smoke_dataset_2x2.splits.test[:4],
            link_config=LinkConfig(snr_db=20),
        )
        assert 0.0 <= result.ber <= 1.0


class TestSchemeEvaluation:
    def test_compare_schemes_ordering(self, trained, smoke_dataset_2x2):
        link = LinkConfig(snr_db=20)
        evaluations = compare_schemes(
            [IdealSvdFeedback(), Dot11Feedback(), SplitBeamFeedback(trained)],
            smoke_dataset_2x2,
            indices=smoke_dataset_2x2.splits.test[:6],
            link_config=link,
        )
        ideal, dot11, splitbeam = evaluations
        # The genie can't be (meaningfully) beaten by its quantized version.
        assert ideal.ber <= dot11.ber + 0.01
        # SplitBeam's structural wins: fewer STA FLOPs, smaller feedback.
        assert splitbeam.sta_flops < dot11.sta_flops
        assert splitbeam.feedback_bits < dot11.feedback_bits

    def test_evaluation_row(self, trained, smoke_dataset_2x2):
        evaluation = evaluate_scheme(
            SplitBeamFeedback(trained),
            smoke_dataset_2x2,
            indices=smoke_dataset_2x2.splits.test[:3],
            link_config=LinkConfig(snr_db=20),
        )
        row = evaluation.as_row()
        assert row[0].startswith("SplitBeam")
        assert len(row) == 4

    def test_cross_dataset_evaluation(self, trained, smoke_dataset_2x2):
        from repro.datasets import build_dataset, dataset_spec

        other = build_dataset(dataset_spec("D3"), fidelity=SMOKE, seed=9)
        evaluation = evaluate_scheme(
            SplitBeamFeedback(trained),
            smoke_dataset_2x2,
            link_config=LinkConfig(snr_db=20),
            eval_dataset=other,
        )
        assert 0.0 <= evaluation.ber <= 1.0
