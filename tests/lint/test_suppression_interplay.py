"""Interplay cases: multi-rule lines, duplicate-line fingerprints, and
``--write-baseline`` idempotency."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import Baseline, LintConfig, load_project, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

# One mutation line that trips BOTH concurrency rules: the module
# declares a lock (REP-UNLOCKED-GLOBAL territory) and the mutating
# function is registered as a done-callback (REP-THREAD-ESCAPE).
DOUBLE_TROUBLE = """\
    import threading

    _STATE = {}
    _LOCK = threading.Lock()


    def handler(future):
        _STATE["last"] = future{SUPPRESS}


    def wire(future):
        future.add_done_callback(handler)
"""

BOTH_RULES = ["REP-THREAD-ESCAPE", "REP-UNLOCKED-GLOBAL"]


def build(make_project, suppress=""):
    source = DOUBLE_TROUBLE.replace("{SUPPRESS}", suppress)
    return make_project({"app/__init__.py": "", "app/state.py": source})


class TestOneLineTwoRules:
    def test_both_rules_fire_on_the_same_line(self, make_project):
        project = build(make_project)
        result = run_lint(project=project, rules=BOTH_RULES)
        assert sorted(f.rule for f in result.active) == BOTH_RULES
        lines = {f.line for f in result.active}
        assert len(lines) == 1

    def test_single_code_allow_suppresses_only_that_rule(self, make_project):
        project = build(
            make_project, suppress="  # repro: allow[REP-UNLOCKED-GLOBAL]"
        )
        result = run_lint(project=project, rules=BOTH_RULES)
        assert [f.rule for f in result.active] == ["REP-THREAD-ESCAPE"]
        assert result.n_suppressed == 1

    def test_comma_list_suppresses_both(self, make_project):
        project = build(
            make_project,
            suppress="  # repro: allow[REP-UNLOCKED-GLOBAL,REP-THREAD-ESCAPE]",
        )
        result = run_lint(project=project, rules=BOTH_RULES)
        assert result.active == []
        assert result.n_suppressed == 2

    def test_star_suppresses_both(self, make_project):
        project = build(make_project, suppress="  # repro: allow[*]")
        result = run_lint(project=project, rules=BOTH_RULES)
        assert result.active == []
        assert result.n_suppressed == 2

    def test_baselining_one_rule_leaves_the_other_active(
        self, make_project, tmp_path
    ):
        project = build(make_project)
        first = run_lint(project=project, rules=["REP-UNLOCKED-GLOBAL"])
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, first.findings)
        result = run_lint(
            project=project,
            rules=BOTH_RULES,
            baseline=Baseline.load(baseline_path),
        )
        assert [f.rule for f in result.active] == ["REP-THREAD-ESCAPE"]
        assert result.n_baselined == 1


class TestDuplicateLineFingerprints:
    FILES = {
        "app/__init__.py": "",
        "app/tasks.py": """\
            import time

            __all__ = ["alpha", "beta"]


            def alpha(spec):
                return time.time()


            def beta(spec):
                return time.time()
        """,
    }

    CONFIG = LintConfig(task_root_modules=("app.tasks",))

    def test_identical_lines_get_distinct_fingerprints(self, make_project):
        project = make_project(self.FILES)
        result = run_lint(
            project=project, config=self.CONFIG, rules=["REP-NONDET"]
        )
        texts = [f.line_text for f in result.active]
        prints = {f.fingerprint for f in result.active}
        assert len(result.active) == 2
        assert texts[0] == texts[1]  # same source text...
        assert len(prints) == 2  # ...still separately identified

    def test_baseline_covers_each_occurrence_separately(
        self, make_project, tmp_path
    ):
        project = make_project(self.FILES)
        result = run_lint(
            project=project, config=self.CONFIG, rules=["REP-NONDET"]
        )
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, result.findings)
        rerun = run_lint(
            project=project,
            config=self.CONFIG,
            rules=["REP-NONDET"],
            baseline=Baseline.load(baseline_path),
        )
        assert rerun.active == []
        assert rerun.n_baselined == 2


class TestWriteBaselineIdempotency:
    def run_cli(self, *args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    def test_second_write_is_byte_identical(self, tmp_path):
        pkg = tmp_path / "app"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "config.py").write_text(
            textwrap.dedent(
                """\
                import os


                def root():
                    return os.environ.get("APP_ROOT")
                """
            ),
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        first = self.run_cli(
            "app", "--baseline", str(baseline), "--write-baseline",
            cwd=tmp_path,
        )
        assert first.returncode == 0, first.stdout + first.stderr
        blob_one = baseline.read_bytes()
        second = self.run_cli(
            "app", "--baseline", str(baseline), "--write-baseline",
            cwd=tmp_path,
        )
        assert second.returncode == 0
        assert baseline.read_bytes() == blob_one

    def test_write_then_lint_is_green(self, tmp_path):
        pkg = tmp_path / "app"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "config.py").write_text(
            "import os\n\n\ndef root():\n"
            "    return os.environ.get('APP_ROOT')\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        wrote = self.run_cli(
            "app", "--baseline", str(baseline), "--write-baseline",
            cwd=tmp_path,
        )
        assert wrote.returncode == 0
        gated = self.run_cli("app", "--baseline", str(baseline), cwd=tmp_path)
        assert gated.returncode == 0
