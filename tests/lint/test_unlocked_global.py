"""REP-UNLOCKED-GLOBAL: unguarded module-level state mutation."""

from __future__ import annotations

PKG = {"app/__init__.py": ""}


class TestUnlockedGlobalPositive:
    def test_item_assignment_outside_lock(self, lint):
        files = dict(PKG)
        files["app/registry.py"] = """\
            import threading

            _LOCK = threading.Lock()
            _REGISTRY = {}


            def record(name, value):
                _REGISTRY[name] = value
        """
        result = lint(files, "REP-UNLOCKED-GLOBAL")
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.line == 8
        assert "_REGISTRY" in finding.message
        assert "record" in finding.message

    def test_mutator_method_outside_lock(self, lint):
        files = dict(PKG)
        files["app/registry.py"] = """\
            import threading

            _LOCK = threading.Lock()
            _SEEN = set()


            def mark(name):
                _SEEN.add(name)
        """
        result = lint(files, "REP-UNLOCKED-GLOBAL")
        assert len(result.active) == 1
        assert ".add() mutation" in result.active[0].message

    def test_global_rebind_outside_lock(self, lint):
        files = dict(PKG)
        files["app/registry.py"] = """\
            import threading

            _LOCK = threading.Lock()
            _STATE = {}
            _COUNT = 0


            def bump():
                global _COUNT
                _COUNT = _COUNT + 1
        """
        result = lint(files, "REP-UNLOCKED-GLOBAL")
        assert len(result.active) == 1
        assert "rebinding" in result.active[0].message

    def test_concurrent_module_config_without_lock(self, lint):
        files = dict(PKG)
        files["app/state.py"] = """\
            _CACHE = {}


            def put(key, value):
                _CACHE[key] = value
        """
        result = lint(
            files, "REP-UNLOCKED-GLOBAL", concurrent_modules=("app.state",)
        )
        assert len(result.active) == 1


class TestUnlockedGlobalNegative:
    def test_mutation_under_lock_clean(self, lint):
        files = dict(PKG)
        files["app/registry.py"] = """\
            import threading

            _LOCK = threading.Lock()
            _REGISTRY = {}


            def record(name, value):
                with _LOCK:
                    _REGISTRY[name] = value
        """
        result = lint(files, "REP-UNLOCKED-GLOBAL")
        assert result.active == []

    def test_unexposed_module_clean(self, lint):
        files = dict(PKG)
        files["app/plain.py"] = """\
            _MEMO = {}


            def remember(key, value):
                _MEMO[key] = value
        """
        # No lock declared and not configured concurrent: single-threaded.
        result = lint(files, "REP-UNLOCKED-GLOBAL", concurrent_modules=())
        assert result.active == []

    def test_local_variable_mutation_clean(self, lint):
        files = dict(PKG)
        files["app/registry.py"] = """\
            import threading

            _LOCK = threading.Lock()
            _REGISTRY = {}


            def build():
                scratch = {}
                scratch["x"] = 1
                scratch.update({"y": 2})
                return scratch
        """
        result = lint(files, "REP-UNLOCKED-GLOBAL")
        assert result.active == []
