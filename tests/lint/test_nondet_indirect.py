"""REP-NONDET regression fixtures: *indirect* nondeterminism.

Earlier versions only saw direct call expressions, so a banned callable
smuggled through ``functools.partial``, a lambda wrapper, or a method
reference handed to a callback slipped through.  The call graph now
records bare function references as indirect call sites, closing the
false negatives pinned down here.
"""

from __future__ import annotations

PKG = {"app/__init__.py": ""}
CONFIG = dict(task_root_modules=("app.tasks",))


class TestIndirectNondet:
    def test_partial_wrapped_wall_clock(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import functools
            import time

            __all__ = ["run"]


            def run(spec):
                stamp = functools.partial(time.time)
                return {"t": stamp()}
        """
        result = lint(files, "REP-NONDET", **CONFIG)
        assert len(result.active) == 1
        assert "time.time" in result.active[0].message

    def test_lambda_wrapping_banned_call(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import random

            __all__ = ["run"]


            def run(spec):
                draw = lambda: random.random()
                return apply(draw)


            def apply(fn):
                return fn()
        """
        result = lint(files, "REP-NONDET", **CONFIG)
        assert len(result.active) == 1
        assert "random.random" in result.active[0].message

    def test_method_reference_as_callback(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import uuid

            __all__ = ["run"]


            def fresh_id():
                return uuid.uuid4().hex


            def run(spec):
                return build(factory=fresh_id)


            def build(factory):
                return {"id": factory()}
        """
        result = lint(files, "REP-NONDET", **CONFIG)
        # once via the direct call in fresh_id (reachable through the
        # indirect reference edge), exactly one active finding survives
        # dedup-free reporting at the uuid.uuid4() site
        assert any("uuid.uuid4" in f.message for f in result.active)

    def test_banned_callable_referenced_directly(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import time

            __all__ = ["run"]


            def run(spec):
                return sample(clock=time.time)


            def sample(clock):
                return clock()
        """
        result = lint(files, "REP-NONDET", **CONFIG)
        assert len(result.active) == 1
        assert "time.time" in result.active[0].message

    def test_local_variable_shadowing_is_not_a_reference(self, lint):
        # a local named like a module-level function must not resolve
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                time = spec["time"]
                return consume(time)


            def consume(value):
                return value
        """
        result = lint(files, "REP-NONDET", **CONFIG)
        assert result.active == []

    def test_seeded_generator_reference_still_allowed(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import numpy as np

            __all__ = ["run"]


            def run(spec):
                return make(np.random.default_rng)


            def make(factory):
                return factory(0).normal(size=2)
        """
        result = lint(files, "REP-NONDET", **CONFIG)
        assert result.active == []
