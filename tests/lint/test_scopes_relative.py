"""Resolver coverage: relative imports and ``__init__`` re-export chains.

The interprocedural rules are only as good as name resolution — a
relative import that fails to resolve silently drops call-graph edges
and widens read-set summaries.  These tests pin down ``from . import
x`` / ``from ..pkg import y`` resolution, re-export chains through
``__init__.py`` files, and mixes of the two, including the committed
repro layout itself.
"""

from __future__ import annotations

import pytest

from repro.lint import load_project
from repro.lint.callgraph import CallGraph
from repro.lint.scopes import ScopeTable

from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def tables(make_project):
    def build(files):
        project = make_project(files)
        scopes = ScopeTable(project)
        return scopes, CallGraph(scopes)

    return build


class TestRelativeImports:
    def test_single_dot_sibling_module(self, tables):
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/util.py": """\
                    def helper(x):
                        return x
                """,
                "app/main.py": """\
                    from .util import helper


                    def run(spec):
                        return helper(spec)
                """,
            }
        )
        assert graph.edges["app.main.run"] == {"app.util.helper"}

    def test_single_dot_import_of_module_object(self, tables):
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/util.py": """\
                    def helper(x):
                        return x
                """,
                "app/main.py": """\
                    from . import util


                    def run(spec):
                        return util.helper(spec)
                """,
            }
        )
        assert graph.edges["app.main.run"] == {"app.util.helper"}

    def test_double_dot_from_nested_package(self, tables):
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/core/__init__.py": "",
                "app/core/lib.py": """\
                    def compute(x):
                        return x
                """,
                "app/sub/__init__.py": "",
                "app/sub/entry.py": """\
                    from ..core.lib import compute


                    def run(spec):
                        return compute(spec)
                """,
            }
        )
        assert graph.edges["app.sub.entry.run"] == {"app.core.lib.compute"}

    def test_relative_import_inside_package_init(self, tables):
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/pkg/__init__.py": "from .impl import work\n",
                "app/pkg/impl.py": """\
                    def work(x):
                        return x
                """,
                "app/main.py": """\
                    from app.pkg import work


                    def run(spec):
                        return work(spec)
                """,
            }
        )
        assert graph.edges["app.main.run"] == {"app.pkg.impl.work"}


class TestReExportChains:
    def test_absolute_reexport_then_relative_hop(self, tables):
        # __init__ re-exports absolutely; the inner module imported the
        # symbol relatively — the chain mixes both styles
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/pkg/__init__.py": "from app.pkg.api import work\n",
                "app/pkg/api.py": "from .impl import work\n",
                "app/pkg/impl.py": """\
                    def work(x):
                        return x
                """,
                "app/main.py": """\
                    from app.pkg import work


                    def run(spec):
                        return work(spec)
                """,
            }
        )
        assert graph.edges["app.main.run"] == {"app.pkg.impl.work"}

    def test_relative_reexport_then_absolute_hop(self, tables):
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/pkg/__init__.py": "from .api import work\n",
                "app/pkg/api.py": "from app.pkg.impl import work\n",
                "app/pkg/impl.py": """\
                    def work(x):
                        return x
                """,
                "app/main.py": """\
                    from app.pkg import work


                    def run(spec):
                        return work(spec)
                """,
            }
        )
        assert graph.edges["app.main.run"] == {"app.pkg.impl.work"}

    def test_aliased_relative_reexport(self, tables):
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/pkg/__init__.py": "from .impl import _work as work\n",
                "app/pkg/impl.py": """\
                    def _work(x):
                        return x
                """,
                "app/main.py": """\
                    from app.pkg import work


                    def run(spec):
                        return work(spec)
                """,
            }
        )
        assert graph.edges["app.main.run"] == {"app.pkg.impl._work"}

    def test_cyclic_reexport_resolves_to_none_not_hang(self, tables):
        scopes, graph = tables(
            {
                "app/__init__.py": "",
                "app/a.py": "from app.b import thing\n",
                "app/b.py": "from app.a import thing\n",
                "app/main.py": """\
                    from app.a import thing


                    def run(spec):
                        return thing(spec)
                """,
            }
        )
        assert graph.edges["app.main.run"] == set()


class TestRealRepoLayout:
    """Resolution over the committed tree: the layout the linter gates."""

    @pytest.fixture(scope="class")
    def repo_scopes(self):
        project = load_project([REPO_SRC])
        return ScopeTable(project)

    def test_package_reexport_of_task_key(self, repo_scopes):
        fn = repo_scopes.resolve_function("repro.runtime.task_key")
        assert fn is not None
        assert fn.fq == "repro.runtime.hashing.task_key"

    def test_toplevel_reexport_chain(self, repo_scopes):
        # repro/__init__.py -> repro/runtime/__init__.py -> hashing.py
        fn = repo_scopes.resolve_function("repro.task_key")
        if fn is None:
            pytest.skip("repro/__init__.py does not re-export task_key")
        assert fn.fq == "repro.runtime.hashing.task_key"

    def test_task_roots_resolve_in_committed_tree(self, repo_scopes):
        scope = repo_scopes.scopes["repro.runtime.tasks"]
        for name in scope.dunder_all:
            assert repo_scopes.resolve_function(
                f"repro.runtime.tasks.{name}"
            ) is not None, name
