"""REP-REDUCTION-ORDER: float accumulation over unordered iteration."""

from __future__ import annotations

PKG = {"app/__init__.py": ""}
CONFIG = dict(task_root_modules=("app.tasks",))


class TestReductionOrderPositive:
    def test_sum_over_set_comprehension(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return sum({v * 0.5 for v in spec["values"]})
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert len(result.active) == 1
        finding = result.active[0]
        assert "a set" in finding.message
        assert "not associative" in finding.message

    def test_accumulator_loop_over_listdir(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import os

            __all__ = ["run"]


            def run(spec):
                total = 0.0
                for name in os.listdir(spec["root"]):
                    total += score(name)
                return total


            def score(name):
                return 0.5
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert len(result.active) == 1
        assert "os.listdir()" in result.active[0].message

    def test_unordered_source_through_local_alias(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                names = set(spec["names"])
                weights = [w(n) for n in names]
                return sum(weights)


            def w(name):
                return 0.25
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert len(result.active) == 1

    def test_reachable_helper_is_flagged_with_chain(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            from app.stats import total

            __all__ = ["run"]


            def run(spec):
                return total(spec["values"])
        """
        files["app/stats.py"] = """\
            def total(values):
                return sum(v / 3.0 for v in set(values))
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert len(result.active) == 1
        assert result.active[0].chain == (
            "app.tasks.run",
            "app.stats.total",
        )


class TestReductionOrderNegative:
    def test_sorted_iteration_is_clean(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return sum(v * 0.5 for v in sorted(set(spec["values"])))
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert result.active == []

    def test_integral_accumulation_is_clean(self, lint):
        # integer addition is associative: counting over a set is fine
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return sum(len(v) for v in {tuple(x) for x in spec["rows"]})
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert result.active == []

    def test_math_fsum_is_order_safe(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import math

            __all__ = ["run"]


            def run(spec):
                return math.fsum({v * 0.5 for v in spec["values"]})
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert result.active == []

    def test_sum_over_plain_list_is_clean(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return sum(v * 0.5 for v in spec["values"])
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert result.active == []

    def test_unreachable_function_is_not_flagged(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return spec["x"]
        """
        files["app/elsewhere.py"] = """\
            def loose(values):
                return sum(v * 0.5 for v in set(values))
        """
        result = lint(files, "REP-REDUCTION-ORDER", **CONFIG)
        assert result.active == []
