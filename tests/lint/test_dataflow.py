"""Unit tests for the interprocedural dataflow engine itself.

These exercise :mod:`repro.lint.dataflow` (intraprocedural field-
sensitive reads) and :mod:`repro.lint.readsets` (transitive summaries
over the call graph) directly, independent of any rule.
"""

from __future__ import annotations

import pytest

from repro.lint import LintConfig
from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import analyze_function
from repro.lint.readsets import ReadSetAnalysis
from repro.lint.scopes import ScopeTable

PKG = {"app/__init__.py": ""}


@pytest.fixture
def build(make_project):
    def _build(files):
        project = make_project({**PKG, **files})
        scopes = ScopeTable(project)
        return scopes, CallGraph(scopes)

    return _build


def read_paths(analysis, fn, param):
    summary = analysis.summary(fn)
    return sorted(event.path for event in summary.events(param))


class TestIntraprocedural:
    def test_field_reads_are_path_sensitive(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def f(spec):
                        a = spec["model"]
                        return a["width"] + spec.fidelity
                """
            }
        )
        fa = analyze_function(graph.functions["app.m.f"])
        paths = sorted(event.path for event in fa.reads)
        assert paths == [("fidelity",), ("model", "width")]

    def test_alias_and_dict_copy_followed(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def f(spec):
                        alias = spec
                        copied = dict(alias)
                        return copied.get("seed", 0)
                """
            }
        )
        fa = analyze_function(graph.functions["app.m.f"])
        assert [event.path for event in fa.reads] == [("seed",)]

    def test_whole_value_use_is_star_read(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def f(spec):
                        sub = spec["link"]
                        return [*sub]
                """
            }
        )
        fa = analyze_function(graph.functions["app.m.f"])
        assert [event.path for event in fa.reads] == [("link",)]

    def test_builtin_call_flow_widens_in_summary(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def f(spec):
                        return list(spec["link"])
                """
            }
        )
        fa = analyze_function(graph.functions["app.m.f"])
        assert fa.reads == []  # a flow into list(), not yet a read
        analysis = ReadSetAnalysis(graph)
        assert read_paths(analysis, graph.functions["app.m.f"], "spec") == [
            ("link",)
        ]

    def test_call_flow_recorded_not_read(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def helper(x):
                        return x

                    def f(spec):
                        return helper(spec["train"])
                """
            }
        )
        fa = analyze_function(graph.functions["app.m.f"])
        assert fa.reads == []
        assert [(flow.path, flow.arg_index) for flow in fa.flows] == [
            (("train",), 0)
        ]


class TestTransitiveSummaries:
    def test_reads_reroot_through_callee(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def leaf(cfg):
                        return cfg["seed"]

                    def f(spec):
                        return leaf(spec["train"])
                """
            }
        )
        analysis = ReadSetAnalysis(graph)
        assert read_paths(analysis, graph.functions["app.m.f"], "spec") == [
            ("train", "seed")
        ]

    def test_witness_location_is_the_deep_read(self, build):
        scopes, graph = build(
            {
                "app/helpers.py": """\
                    def leaf(cfg):
                        return cfg["seed"]
                """,
                "app/m.py": """\
                    from app.helpers import leaf

                    def f(spec):
                        return leaf(spec["train"])
                """,
            }
        )
        analysis = ReadSetAnalysis(graph)
        summary = analysis.summary(graph.functions["app.m.f"])
        (event,) = summary.events("spec")
        assert event.module == "app.helpers"
        assert event.fn_fq == "app.helpers.leaf"

    def test_unknown_callee_widens_to_flow_path(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    import json

                    def f(spec):
                        return json.dumps(spec["train"])
                """
            }
        )
        analysis = ReadSetAnalysis(graph)
        # json.dumps is external: assume it reads the whole subtree
        assert read_paths(analysis, graph.functions["app.m.f"], "spec") == [
            ("train",)
        ]

    def test_keyword_argument_maps_to_callee_param(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def leaf(unused, cfg=None):
                        return cfg["lr"]

                    def f(spec):
                        return leaf(1, cfg=spec["train"])
                """
            }
        )
        analysis = ReadSetAnalysis(graph)
        assert read_paths(analysis, graph.functions["app.m.f"], "spec") == [
            ("train", "lr")
        ]

    def test_recursion_terminates_with_widening(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def f(spec):
                        if spec.get("again"):
                            return f(spec["inner"])
                        return 0
                """
            }
        )
        analysis = ReadSetAnalysis(graph)
        paths = read_paths(analysis, graph.functions["app.m.f"], "spec")
        assert ("again",) in paths
        assert ("inner",) in paths  # the recursive flow widened, not hung

    def test_prefix_reads_dedupe(self, build):
        scopes, graph = build(
            {
                "app/m.py": """\
                    def f(spec):
                        whole = list(spec["model"])
                        return spec["model"]["width"], whole
                """
            }
        )
        analysis = ReadSetAnalysis(graph)
        # the subtree read at ("model",) subsumes ("model", "width")
        assert read_paths(analysis, graph.functions["app.m.f"], "spec") == [
            ("model",)
        ]
