"""REP-HASH-INPUT: cosmetic fields must not reach key construction."""

from __future__ import annotations

KEYS = """\
    import hashlib
    import json


    def task_key(spec):
        blob = json.dumps(spec, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()
"""

PKG = {"app/__init__.py": "", "app/keys.py": KEYS}
CONFIG = {"key_functions": ("app.keys.task_key",)}


class TestHashInputPositive:
    def test_literal_spec_with_cosmetic_key(self, lint):
        files = dict(PKG)
        files["app/run.py"] = """\
            from app.keys import task_key


            def address(x):
                return task_key({"name": "sweep-1", "x": x})
        """
        result = lint(files, "REP-HASH-INPUT", **CONFIG)
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.line == 5
        assert "'name'" in finding.message
        assert "task_key" in finding.message

    def test_local_variable_dataflow(self, lint):
        files = dict(PKG)
        files["app/run.py"] = """\
            from app.keys import task_key


            def address(x):
                spec = {"label": "pretty", "x": x}
                return task_key(spec)
        """
        result = lint(files, "REP-HASH-INPUT", **CONFIG)
        assert len(result.active) == 1
        assert "'label'" in result.active[0].message

    def test_nested_dict_and_dict_call(self, lint):
        files = dict(PKG)
        files["app/run.py"] = """\
            from app.keys import task_key


            def address(x):
                return task_key({"inner": dict(title="t", x=x)})
        """
        result = lint(files, "REP-HASH-INPUT", **CONFIG)
        assert len(result.active) == 1
        assert "'title'" in result.active[0].message

    def test_spec_keyword_argument(self, lint):
        files = dict(PKG)
        files["app/run.py"] = """\
            from app.keys import task_key


            def address(x):
                return task_key(spec={"description": "d", "x": x})
        """
        result = lint(files, "REP-HASH-INPUT", **CONFIG)
        assert len(result.active) == 1


class TestHashInputNegative:
    def test_clean_spec(self, lint):
        files = dict(PKG)
        files["app/run.py"] = """\
            from app.keys import task_key


            def address(x, seed):
                return task_key({"x": x, "seed": seed})
        """
        result = lint(files, "REP-HASH-INPUT", **CONFIG)
        assert result.active == []

    def test_cosmetic_key_to_unregistered_function_clean(self, lint):
        files = dict(PKG)
        files["app/run.py"] = """\
            def describe(x):
                return {"name": "sweep-1", "x": x}
        """
        result = lint(files, "REP-HASH-INPUT", **CONFIG)
        assert result.active == []
