"""REP-NONDET: nondeterminism reachable from task roots."""

from __future__ import annotations

PKG = {"app/__init__.py": ""}


class TestNondetPositive:
    def test_direct_wall_clock_in_task_body(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import time

            __all__ = ["run"]


            def run(spec):
                return {"t": time.time()}
        """
        result = lint(files, "REP-NONDET", task_root_modules=("app.tasks",))
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.module == "app.tasks"
        assert finding.path.endswith("app/tasks.py")
        assert finding.line == 7  # the time.time() call line
        assert "time.time" in finding.message
        assert finding.chain == ("app.tasks.run",)

    def test_transitive_reach_through_helper_module(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            from app.helpers import measure

            __all__ = ["run"]


            def run(spec):
                return measure(spec)
        """
        files["app/helpers.py"] = """\
            import time


            def measure(spec):
                started = time.time()
                return started
        """
        result = lint(files, "REP-NONDET", task_root_modules=("app.tasks",))
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.module == "app.helpers"
        assert finding.line == 5
        assert finding.chain == ("app.tasks.run", "app.helpers.measure")
        assert "reachable from task root 'run'" in finding.message

    def test_global_numpy_rng_flagged(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import numpy as np

            __all__ = ["run"]


            def run(spec):
                return np.random.normal(size=3)
        """
        result = lint(files, "REP-NONDET", task_root_modules=("app.tasks",))
        assert len(result.active) == 1
        assert "numpy.random.normal" in result.active[0].message

    def test_id_and_hash_builtins_flagged(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return {"a": id(spec), "b": hash(str(spec))}
        """
        result = lint(files, "REP-NONDET", task_root_modules=("app.tasks",))
        assert len(result.active) == 2

    def test_explicit_root_function_config(self, lint):
        files = dict(PKG)
        files["app/work.py"] = """\
            import os


            def entry(spec):
                return os.urandom(4)
        """
        result = lint(
            files, "REP-NONDET", task_root_functions=("app.work.entry",)
        )
        assert len(result.active) == 1
        assert "os.urandom" in result.active[0].message


class TestNondetNegative:
    def test_seeded_generator_allowed(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import numpy as np

            __all__ = ["run"]


            def run(spec):
                rng = np.random.default_rng(spec["seed"])
                return rng.normal(size=3)
        """
        result = lint(files, "REP-NONDET", task_root_modules=("app.tasks",))
        assert result.active == []

    def test_perf_counter_allowed(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            import time

            __all__ = ["run"]


            def run(spec):
                started = time.perf_counter()
                return time.perf_counter() - started
        """
        result = lint(files, "REP-NONDET", task_root_modules=("app.tasks",))
        assert result.active == []

    def test_unreachable_nondeterminism_not_flagged(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return spec
        """
        files["app/debug.py"] = """\
            import time


            def stamp():
                return time.time()
        """
        result = lint(files, "REP-NONDET", task_root_modules=("app.tasks",))
        assert result.active == []
