"""REP-ENV-READ: os.environ access outside the sanctioned knobs module."""

from __future__ import annotations

PKG = {"app/__init__.py": ""}


class TestEnvReadPositive:
    def test_environ_get_flagged_exactly_once(self, lint):
        files = dict(PKG)
        files["app/config.py"] = """\
            import os


            def workers():
                return int(os.environ.get("APP_WORKERS", "1"))
        """
        result = lint(
            files, "REP-ENV-READ", sanctioned_env_modules=("app.knobs",)
        )
        # The attribute chain os.environ.get must not double-count.
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.line == 5
        assert "os.environ" in finding.message
        assert "app.knobs" in finding.message

    def test_getenv_flagged(self, lint):
        files = dict(PKG)
        files["app/config.py"] = """\
            import os


            def root():
                return os.getenv("APP_ROOT")
        """
        result = lint(
            files, "REP-ENV-READ", sanctioned_env_modules=("app.knobs",)
        )
        assert len(result.active) == 1

    def test_aliased_import_still_caught(self, lint):
        files = dict(PKG)
        files["app/config.py"] = """\
            from os import environ


            def root():
                return environ.get("APP_ROOT")
        """
        result = lint(
            files, "REP-ENV-READ", sanctioned_env_modules=("app.knobs",)
        )
        assert len(result.active) == 1


class TestEnvReadNegative:
    def test_sanctioned_module_clean(self, lint):
        files = dict(PKG)
        files["app/knobs.py"] = """\
            import os


            def read_knob(name, default=None):
                return os.environ.get(name, default)
        """
        result = lint(
            files, "REP-ENV-READ", sanctioned_env_modules=("app.knobs",)
        )
        assert result.active == []

    def test_unrelated_os_usage_clean(self, lint):
        files = dict(PKG)
        files["app/paths.py"] = """\
            import os


            def join(a, b):
                return os.path.join(a, b)
        """
        result = lint(
            files, "REP-ENV-READ", sanctioned_env_modules=("app.knobs",)
        )
        assert result.active == []
