"""REP-KEY-COVERAGE: task read-set vs cache-key coverage."""

from __future__ import annotations

PKG = {"app/__init__.py": ""}

HASHING = {
    "app/hashing.py": """\
        import hashlib
        import json


        def task_key(spec, version="v1"):
            blob = json.dumps(spec, sort_keys=True)
            return hashlib.sha256(blob.encode()).hexdigest()
    """
}

CONFIG = dict(
    key_functions=("app.hashing.task_key",),
    task_constructors=("app.executor.Task",),
    task_root_modules=("app.tasks",),
)

EXECUTOR = {
    "app/executor.py": """\
        from dataclasses import dataclass


        @dataclass
        class Task:
            fn: str
            params: dict
            key: str = ""
    """
}


def base_files(tasks_src: str, planner_src: str) -> dict:
    files = dict(PKG)
    files.update(HASHING)
    files.update(EXECUTOR)
    files["app/tasks.py"] = tasks_src
    files["app/planner.py"] = planner_src
    return files


INCLUSION_PLANNER = """\
    from app.executor import Task
    from app.hashing import task_key


    def key_spec(spec):
        return {
            "dataset": spec["dataset"],
            "seed": spec["train"]["seed"],
        }


    def plan(spec):
        key = task_key(key_spec(spec))
        return Task(fn="app.tasks:run", params=spec, key=key)
"""


class TestInclusionBuilder:
    def test_read_but_unhashed_field_is_an_error(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                knob = params["secret_knob"]
                return {"seed": params["train"]["seed"], "knob": knob}
            """,
            INCLUSION_PLANNER,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        errors = [f for f in result.active if f.severity == "error"]
        assert len(errors) == 1
        finding = errors[0]
        assert finding.module == "app.tasks"
        assert "'run'" in finding.message
        assert "'secret_knob'" in finding.message
        assert "never hashes" in finding.message
        # the unhashed 'dataset' key was not read either -> info, not error
        infos = [f for f in result.active if f.severity == "info"]
        assert any("'dataset'" in f.message for f in infos)

    def test_deep_read_through_helper_is_attributed(self, lint):
        files = base_files(
            """\
            from app.helpers import pick

            __all__ = ["run"]


            def run(params):
                return pick(params)
            """,
            INCLUSION_PLANNER,
        )
        files["app/helpers.py"] = """\
            def pick(cfg):
                return cfg["train"]["lr"]
        """
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        errors = [f for f in result.active if f.severity == "error"]
        assert len(errors) == 1
        assert errors[0].module == "app.helpers"
        assert "'train.lr'" in errors[0].message
        assert errors[0].chain[0] == "app.tasks.run"

    def test_fully_covered_task_is_clean(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return {
                    "d": params["dataset"],
                    "s": params["train"]["seed"],
                }
            """,
            INCLUSION_PLANNER,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        assert result.active == []
        assert result.exit_code == 0

    def test_whole_mapping_read_of_partially_hashed_field_is_info(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return dict(params["train"])
            """,
            INCLUSION_PLANNER,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        assert result.exit_code == 0
        infos = [f for f in result.active if f.severity == "info"]
        assert any("train.seed" in f.message for f in infos)


EXCLUSION_PLANNER = """\
    from app.executor import Task
    from app.hashing import task_key


    def key_spec(spec):
        return {k: v for k, v in spec.items() if k != "label"}


    def plan(spec):
        key = task_key(key_spec(spec))
        return Task(fn="app.tasks:run", params=spec, key=key)
"""


class TestExclusionBuilder:
    def test_reading_the_excluded_field_is_an_error(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return {"label": params["label"]}
            """,
            EXCLUSION_PLANNER,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        errors = [f for f in result.active if f.severity == "error"]
        assert len(errors) == 1
        assert "'label'" in errors[0].message

    def test_novel_fields_are_hashed_automatically(self, lint):
        # exclusion model: a field added later is covered without
        # touching the builder, so reading it raises nothing
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return {"k": params["brand_new_field"]}
            """,
            EXCLUSION_PLANNER,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        assert result.active == []

    def test_cosmetic_star_residue_is_silent(self, lint):
        # whole-spec read + an excluded *cosmetic* key: allowed, because
        # cosmetic keys are display-only by project convention
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return dict(params)
            """,
            EXCLUSION_PLANNER,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        assert result.active == []

    def test_noncosmetic_star_residue_is_an_error(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return dict(params)
            """,
            EXCLUSION_PLANNER.replace('"label"', '"threshold"'),
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        errors = [f for f in result.active if f.severity == "error"]
        assert len(errors) == 1
        assert "'threshold'" in errors[0].message
        assert "excludes" in errors[0].message


class TestBindingInference:
    def test_aliased_params_still_bind(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return params["missing"]
            """,
            """\
            from app.executor import Task
            from app.hashing import task_key


            def key_spec(spec):
                return {"dataset": spec["dataset"]}


            def plan(spec):
                key = task_key(key_spec(spec))
                params = {**spec, "derived": True}
                return Task(fn="app.tasks:run", params=params, key=key)
            """,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        errors = [f for f in result.active if f.severity == "error"]
        assert len(errors) == 1
        assert "'missing'" in errors[0].message

    def test_unrelated_task_key_call_does_not_bind(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return params["whatever"]
            """,
            """\
            from app.executor import Task
            from app.hashing import task_key


            def plan(spec, other):
                key = task_key({"fixed": 1})
                return Task(fn="app.tasks:run", params=other, key=key)
            """,
        )
        result = lint(files, "REP-KEY-COVERAGE", **CONFIG)
        assert result.active == []

    def test_explicit_config_binding(self, lint):
        files = base_files(
            """\
            __all__ = ["run"]


            def run(params):
                return params["missing"]
            """,
            """\
            def key_spec(spec):
                return {"dataset": spec["dataset"]}
            """,
        )
        result = lint(
            files,
            "REP-KEY-COVERAGE",
            key_bindings=(("app.tasks.run", "app.planner.key_spec"),),
            **CONFIG,
        )
        errors = [f for f in result.active if f.severity == "error"]
        assert len(errors) == 1
        assert "'missing'" in errors[0].message
