"""REP-GETSTATE-CACHE: shipped classes must strip transient attrs."""

from __future__ import annotations

BASE = """\
    class Module:
        def __init__(self):
            self.training = True
"""

PKG = {"app/__init__.py": "", "app/base.py": BASE}
SHIPPED = {"shipped_bases": ("app.base.Module",), "shipped_classes": ()}


class TestGetstateCachePositive:
    def test_no_getstate_at_all(self, lint):
        files = dict(PKG)
        files["app/layers.py"] = """\
            from app.base import Module


            class Norm(Module):
                def __init__(self, n):
                    super().__init__()
                    self.n = n
                    self._cache = None

                def forward(self, x):
                    self._cache = x
                    return x
        """
        result = lint(files, "REP-GETSTATE-CACHE", **SHIPPED)
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.line == 8  # first assignment of self._cache
        assert "'_cache'" in finding.message
        assert "no __getstate__" in finding.message

    def test_getstate_missing_one_attr(self, lint):
        files = dict(PKG)
        files["app/layers.py"] = """\
            from app.base import Module


            class Norm(Module):
                def __init__(self, n):
                    super().__init__()
                    self._cached_stats = None
                    self._scratch = {}

                def __getstate__(self):
                    state = dict(self.__dict__)
                    state.pop("_cached_stats", None)
                    return state
        """
        result = lint(files, "REP-GETSTATE-CACHE", **SHIPPED)
        assert len(result.active) == 1
        assert "'_scratch'" in result.active[0].message
        assert "does not strip" in result.active[0].message

    def test_inherited_getstate_prefix_coverage_partial(self, lint):
        files = {"app/__init__.py": ""}
        files["app/base.py"] = """\
            class Module:
                def __getstate__(self):
                    state = {}
                    for key, value in self.__dict__.items():
                        if key.startswith("_cached"):
                            continue
                        state[key] = value
                    return state
        """
        files["app/layers.py"] = """\
            from app.base import Module


            class Good(Module):
                def __init__(self):
                    self._cached_norm = None


            class Bad(Module):
                def __init__(self):
                    self._cache = None
        """
        result = lint(files, "REP-GETSTATE-CACHE", **SHIPPED)
        # '_cached_norm' matches the stripped prefix; '_cache' does not.
        assert len(result.active) == 1
        assert "'_cache'" in result.active[0].message
        assert "Bad" in result.active[0].message

    def test_explicit_shipped_class_listing(self, lint):
        files = {"app/__init__.py": ""}
        files["app/quant.py"] = """\
            class Quantizer:
                def __init__(self):
                    self._memo = {}
        """
        result = lint(
            files,
            "REP-GETSTATE-CACHE",
            shipped_bases=(),
            shipped_classes=("app.quant.Quantizer",),
        )
        assert len(result.active) == 1
        assert "'_memo'" in result.active[0].message


class TestGetstateCacheNegative:
    def test_mask_covered_by_subscript_none(self, lint):
        files = dict(PKG)
        files["app/layers.py"] = """\
            from app.base import Module


            class Drop(Module):
                def __init__(self):
                    super().__init__()
                    self._mask = None

                def __getstate__(self):
                    state = dict(self.__dict__)
                    state["_mask"] = None
                    return state
        """
        result = lint(files, "REP-GETSTATE-CACHE", **SHIPPED)
        assert result.active == []

    def test_non_shipped_class_ignored(self, lint):
        files = dict(PKG)
        files["app/other.py"] = """\
            class Helper:
                def __init__(self):
                    self._cache = {}
        """
        result = lint(files, "REP-GETSTATE-CACHE", **SHIPPED)
        assert result.active == []

    def test_non_transient_attrs_ignored(self, lint):
        files = dict(PKG)
        files["app/layers.py"] = """\
            from app.base import Module


            class Linear(Module):
                def __init__(self, n):
                    super().__init__()
                    self.weight = [0.0] * n
                    self.bias = 0.0
        """
        result = lint(files, "REP-GETSTATE-CACHE", **SHIPPED)
        assert result.active == []
