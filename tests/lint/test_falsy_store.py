"""REP-FALSY-STORE: truthiness on __len__-bearing objects."""

from __future__ import annotations

STORE = """\
    class Store:
        def __init__(self):
            self.items = {}

        def __len__(self):
            return len(self.items)
"""

PKG = {"app/__init__.py": "", "app/store.py": STORE}


class TestFalsyStorePositive:
    def test_local_constructed_store(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            from app.store import Store


            def lookup(key):
                store = Store()
                if store:
                    return store.items.get(key)
                return None
        """
        result = lint(files, "REP-FALSY-STORE")
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.path.endswith("app/use.py")
        assert finding.line == 6
        assert "'store'" in finding.message
        assert "is not None" in finding.message

    def test_annotated_parameter(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            from app.store import Store


            def lookup(store: Store, key):
                if not store:
                    return None
                return store.items.get(key)
        """
        result = lint(files, "REP-FALSY-STORE")
        assert len(result.active) == 1
        assert result.active[0].line == 5

    def test_optional_annotation_still_flagged(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            from app.store import Store


            def lookup(store: "Store | None", key):
                return store.items.get(key) if store else None
        """
        result = lint(files, "REP-FALSY-STORE")
        assert len(result.active) == 1

    def test_self_attribute_bound_in_init(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            from app.store import Store


            class Engine:
                def __init__(self, store=None):
                    self.store = store if store is not None else Store()

                def get(self, key):
                    if self.store:
                        return self.store.items.get(key)
                    return None
        """
        result = lint(files, "REP-FALSY-STORE")
        assert len(result.active) == 1
        assert result.active[0].line == 9
        assert "'self.store'" in result.active[0].message

    def test_boolop_operand(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            from app.store import Store


            def any_cached(key):
                store = Store()
                return store and key in store.items
        """
        result = lint(files, "REP-FALSY-STORE")
        assert len(result.active) == 1


class TestFalsyStoreNegative:
    def test_identity_comparison_clean(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            from app.store import Store


            def lookup(store: Store, key):
                if store is not None:
                    return store.items.get(key)
                return None
        """
        result = lint(files, "REP-FALSY-STORE")
        assert result.active == []

    def test_len_comparison_clean(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            from app.store import Store


            def is_empty(store: Store):
                return len(store) == 0
        """
        result = lint(files, "REP-FALSY-STORE")
        assert result.active == []

    def test_class_with_bool_not_flagged(self, lint):
        files = {"app/__init__.py": ""}
        files["app/store.py"] = """\
            class Flagged:
                def __len__(self):
                    return 0

                def __bool__(self):
                    return True
        """
        files["app/use.py"] = """\
            from app.store import Flagged


            def check():
                flag = Flagged()
                if flag:
                    return 1
                return 0
        """
        result = lint(files, "REP-FALSY-STORE")
        assert result.active == []

    def test_untyped_name_not_flagged(self, lint):
        files = dict(PKG)
        files["app/use.py"] = """\
            def lookup(store, key):
                if store:
                    return store.get(key)
                return None
        """
        result = lint(files, "REP-FALSY-STORE")
        assert result.active == []
