"""REP-THREAD-ESCAPE: inferred callback-shared mutation races.

The acceptance fixture mirrors the runtime's PR 8 ``_SWEPT_ROOTS`` race:
a once-per-process sweep set mutated from a completion callback.  The
rule must re-detect it from inference alone — no lock declaration, no
``concurrent_modules`` listing — and go quiet when the lock is restored.
"""

from __future__ import annotations

PKG = {"app/__init__.py": ""}

# The executor registers a done-callback; the callback stores results
# through the cache, whose first write sweeps crash leftovers exactly
# once per process — bookkept in a module-level set.
EXECUTOR = """\
    from concurrent.futures import ThreadPoolExecutor

    from app.cache import put


    class Runner:
        def __init__(self):
            self.pool = ThreadPoolExecutor(2)

        def _on_done(self, future):
            put("root", future.result())

        def submit(self, task):
            future = self.pool.submit(task)
            future.add_done_callback(self._on_done)
            return future
"""

CACHE_UNLOCKED = """\
    _SWEPT_ROOTS = set()


    def _sweep(root):
        return 0


    def sweep_once(root):
        if root in _SWEPT_ROOTS:
            return 0
        _SWEPT_ROOTS.add(root)
        return _sweep(root)


    def put(root, value):
        sweep_once(root)
        return value
"""

CACHE_LOCKED = """\
    import threading

    _SWEPT_ROOTS = set()
    _SWEPT_LOCK = threading.Lock()


    def _sweep(root):
        return 0


    def sweep_once(root):
        with _SWEPT_LOCK:
            if root in _SWEPT_ROOTS:
                return 0
            _SWEPT_ROOTS.add(root)
        return _sweep(root)


    def put(root, value):
        sweep_once(root)
        return value
"""


class TestSweptRootsRace:
    def test_unlocked_sweep_set_is_detected_by_inference(self, lint):
        files = dict(PKG)
        files["app/executor.py"] = EXECUTOR
        files["app/cache.py"] = CACHE_UNLOCKED
        # note: NO concurrent_modules, NO lock in cache.py — the sharing
        # is inferred from the add_done_callback registration alone
        result = lint(files, "REP-THREAD-ESCAPE")
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.module == "app.cache"
        assert "_SWEPT_ROOTS" in finding.message
        assert "callback thread" in finding.message
        assert finding.chain[0] == "app.executor.Runner._on_done"
        assert finding.chain[-1] == "app.cache.sweep_once"

    def test_restoring_the_lock_silences_it(self, lint):
        files = dict(PKG)
        files["app/executor.py"] = EXECUTOR
        files["app/cache.py"] = CACHE_LOCKED
        result = lint(files, "REP-THREAD-ESCAPE")
        assert result.active == []


class TestSeedInference:
    def test_thread_target_seeds_callback_shared(self, lint):
        files = dict(PKG)
        files["app/spin.py"] = """\
            import threading

            _EVENTS = []


            def watcher():
                _EVENTS.append("tick")


            def start():
                thread = threading.Thread(target=watcher, daemon=True)
                thread.start()
        """
        result = lint(files, "REP-THREAD-ESCAPE")
        assert len(result.active) == 1
        assert "_EVENTS" in result.active[0].message

    def test_partial_wrapped_callback_resolves(self, lint):
        files = dict(PKG)
        files["app/spin.py"] = """\
            import functools

            _SEEN = {}


            def handler(tag, future):
                _SEEN[tag] = future


            def wire(future):
                future.add_done_callback(functools.partial(handler, "x"))
        """
        result = lint(files, "REP-THREAD-ESCAPE")
        assert len(result.active) == 1
        assert "_SEEN" in result.active[0].message

    def test_self_attr_mutation_on_callback_path(self, lint):
        files = dict(PKG)
        files["app/spin.py"] = """\
            class Tracker:
                def __init__(self):
                    self.done = []

                def _on_done(self, future):
                    self.done.append(future)

                def wire(self, future):
                    future.add_done_callback(self._on_done)
        """
        result = lint(files, "REP-THREAD-ESCAPE")
        assert len(result.active) == 1
        assert "'self.done'" in result.active[0].message

    def test_worker_submitted_function_is_not_callback_shared(self, lint):
        # pool.submit targets run worker-local (own process/thread
        # without coordinator-shared module state by default policy)
        files = dict(PKG)
        files["app/spin.py"] = """\
            _CACHE = {}


            def job(key):
                _CACHE[key] = 1
                return key


            def start(pool, key):
                return pool.submit(job, key)
        """
        result = lint(files, "REP-THREAD-ESCAPE")
        assert result.active == []

    def test_coordinator_only_mutation_is_clean(self, lint):
        files = dict(PKG)
        files["app/spin.py"] = """\
            _STATE = {}


            def tick():
                _STATE["n"] = _STATE.get("n", 0) + 1
        """
        result = lint(files, "REP-THREAD-ESCAPE")
        assert result.active == []
