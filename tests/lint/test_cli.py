"""CLI behaviour: exit codes, formats, and the real-tree contract."""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env=env,
    )


def write_fixture(tmp_path, body):
    pkg = tmp_path / "app"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "config.py").write_text(textwrap.dedent(body), encoding="utf-8")
    return tmp_path


DIRTY = """\
    import os


    def root():
        return os.environ.get("APP_ROOT")
"""

CLEAN = """\
    def root():
        return "/data"
"""


class TestExitCodes:
    def test_findings_exit_1(self, tmp_path):
        fixture = write_fixture(tmp_path, DIRTY)
        proc = run_cli(str(fixture), "--no-baseline")
        assert proc.returncode == 1
        assert "REP-ENV-READ" in proc.stdout
        assert "app/config.py:5:" in proc.stdout

    def test_clean_exit_0(self, tmp_path):
        fixture = write_fixture(tmp_path, CLEAN)
        proc = run_cli(str(fixture), "--no-baseline")
        assert proc.returncode == 0
        assert "0 findings" in proc.stdout

    def test_no_paths_exit_2(self):
        proc = run_cli()
        assert proc.returncode == 2
        assert "no paths" in proc.stderr

    def test_unknown_rule_exit_2(self, tmp_path):
        fixture = write_fixture(tmp_path, CLEAN)
        proc = run_cli(str(fixture), "--rules", "REP-BOGUS")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_missing_path_exit_2(self):
        proc = run_cli("/no/such/dir")
        assert proc.returncode == 2


class TestOutputs:
    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in (
            "REP-NONDET",
            "REP-FALSY-STORE",
            "REP-UNLOCKED-GLOBAL",
            "REP-ENV-READ",
            "REP-GETSTATE-CACHE",
            "REP-HASH-INPUT",
        ):
            assert code in proc.stdout

    def test_json_format(self, tmp_path):
        fixture = write_fixture(tmp_path, DIRTY)
        proc = run_cli(str(fixture), "--no-baseline", "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["exit_code"] == 1
        assert payload["summary"]["active"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP-ENV-READ"
        assert finding["fingerprint"]

    def test_rule_selection(self, tmp_path):
        fixture = write_fixture(tmp_path, DIRTY)
        proc = run_cli(
            str(fixture), "--no-baseline", "--rules", "REP-NONDET"
        )
        assert proc.returncode == 0  # env read not in the selected set

    def test_write_baseline_roundtrip(self, tmp_path):
        fixture = write_fixture(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        wrote = run_cli(
            str(fixture), "--baseline", str(baseline), "--write-baseline"
        )
        assert wrote.returncode == 0
        assert baseline.exists()
        rerun = run_cli(str(fixture), "--baseline", str(baseline))
        assert rerun.returncode == 0
        verbose = run_cli(
            str(fixture), "--baseline", str(baseline), "--verbose"
        )
        assert "[baselined]" in verbose.stdout


class TestRealTree:
    def test_committed_tree_is_clean(self):
        proc = run_cli("src/", "--baseline", "lint-baseline.json")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_committed_baseline_is_empty(self):
        payload = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8")
        )
        assert payload["findings"] == []

    def test_injected_wall_clock_fails_the_gate(self, tmp_path):
        """Seeding time.time() into a task body must fail CI's lint job."""
        staged = tmp_path / "src"
        shutil.copytree(SRC, staged, ignore=shutil.ignore_patterns("__pycache__"))
        tasks = staged / "repro" / "runtime" / "tasks.py"
        source = tasks.read_text(encoding="utf-8")
        lines = source.splitlines(keepends=True)
        for index, line in enumerate(lines):
            if line.startswith("def run_point"):
                # Insert a wall-clock read as the first statement.
                lines.insert(index + 1, "    import time\n")
                lines.insert(index + 2, "    _seeded_now = time.time()\n")
                break
        else:
            pytest.fail("run_point not found in runtime/tasks.py")
        tasks.write_text("".join(lines), encoding="utf-8")

        proc = run_cli(str(staged), "--no-baseline")
        assert proc.returncode == 1
        assert "REP-NONDET" in proc.stdout
        assert "time.time" in proc.stdout
        assert "runtime/tasks.py" in proc.stdout

    def test_injected_unhashed_field_read_fails_the_gate(self, tmp_path):
        """Reading a spec field the cache key never hashes must fail CI.

        ``train_zoo_entry``'s key builder (``checkpoint_spec``) is
        inclusion-model: it hashes an explicit field list.  Seeding a
        read of a field outside that list is exactly the stale-cache
        bug REP-KEY-COVERAGE exists to stop.
        """
        staged = tmp_path / "src"
        shutil.copytree(SRC, staged, ignore=shutil.ignore_patterns("__pycache__"))
        tasks = staged / "repro" / "runtime" / "tasks.py"
        source = tasks.read_text(encoding="utf-8")
        lines = source.splitlines(keepends=True)
        for index, line in enumerate(lines):
            if line.startswith("def train_zoo_entry"):
                # a *consumed* read: bare aliases that feed nothing are
                # (correctly) invisible to the read-set analysis
                lines.insert(index + 1, '    if params["secret_knob"]:\n')
                lines.insert(index + 2, "        pass\n")
                break
        else:
            pytest.fail("train_zoo_entry not found in runtime/tasks.py")
        tasks.write_text("".join(lines), encoding="utf-8")

        proc = run_cli(str(staged), "--no-baseline")
        assert proc.returncode == 1
        assert "REP-KEY-COVERAGE" in proc.stdout
        assert "'train_zoo_entry'" in proc.stdout  # the task root, by name
        assert "'secret_knob'" in proc.stdout  # the missing field, by name
        assert "never hashes" in proc.stdout


class TestParallelJobs:
    def test_jobs_output_is_byte_identical_to_serial(self, tmp_path):
        fixture = write_fixture(tmp_path, DIRTY)
        serial = run_cli(str(fixture), "--no-baseline")
        parallel = run_cli(str(fixture), "--no-baseline", "--jobs", "4")
        assert serial.returncode == parallel.returncode == 1
        assert serial.stdout == parallel.stdout

    def test_jobs_clean_tree_exit_0(self, tmp_path):
        fixture = write_fixture(tmp_path, CLEAN)
        proc = run_cli(str(fixture), "--no-baseline", "--jobs", "2")
        assert proc.returncode == 0

    def test_jobs_zero_means_cpu_count(self, tmp_path):
        fixture = write_fixture(tmp_path, DIRTY)
        proc = run_cli(str(fixture), "--no-baseline", "--jobs", "0")
        assert proc.returncode == 1
        assert "REP-ENV-READ" in proc.stdout
