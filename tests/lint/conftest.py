"""Fixture helpers: build synthetic projects and lint them in-process."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintConfig, load_project, run_lint


@pytest.fixture
def make_project(tmp_path):
    """Write ``{relative_path: source}`` under tmp_path and load it."""

    def build(files: dict):
        for rel, source in files.items():
            dest = tmp_path / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(textwrap.dedent(source), encoding="utf-8")
        return load_project([tmp_path])

    return build


@pytest.fixture
def lint(make_project):
    """Lint a fixture project with one rule and a custom config."""

    def run(files: dict, rule: str, **config_kwargs):
        project = make_project(files)
        config = LintConfig(**config_kwargs)
        return run_lint(project=project, config=config, rules=[rule])

    return run
