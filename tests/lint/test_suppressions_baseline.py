"""Inline suppressions, fingerprints, and the committed baseline."""

from __future__ import annotations

from repro.lint import Baseline, LintConfig, run_lint

ENV_FILES = {
    "app/__init__.py": "",
    "app/config.py": """\
import os


def root():
    return os.environ.get("APP_ROOT")
""",
}

SANCTIONED = {"sanctioned_env_modules": ("app.knobs",)}


def _write(tmp_path, files):
    for rel, source in files.items():
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(source, encoding="utf-8")
    return tmp_path


class TestSuppressions:
    def test_same_line_comment(self, lint):
        files = dict(ENV_FILES)
        files["app/config.py"] = (
            "import os\n\n\ndef root():\n"
            "    return os.environ.get('APP_ROOT')"
            "  # repro: allow[REP-ENV-READ]\n"
        )
        result = lint(files, "REP-ENV-READ", **SANCTIONED)
        assert result.active == []
        assert result.n_suppressed == 1

    def test_comment_only_line_covers_next_line(self, lint):
        files = dict(ENV_FILES)
        files["app/config.py"] = (
            "import os\n\n\ndef root():\n"
            "    # repro: allow[REP-ENV-READ]\n"
            "    return os.environ.get('APP_ROOT')\n"
        )
        result = lint(files, "REP-ENV-READ", **SANCTIONED)
        assert result.active == []
        assert result.n_suppressed == 1

    def test_wrong_code_does_not_suppress(self, lint):
        files = dict(ENV_FILES)
        files["app/config.py"] = (
            "import os\n\n\ndef root():\n"
            "    return os.environ.get('APP_ROOT')"
            "  # repro: allow[REP-NONDET]\n"
        )
        result = lint(files, "REP-ENV-READ", **SANCTIONED)
        assert len(result.active) == 1

    def test_star_suppresses_everything(self, lint):
        files = dict(ENV_FILES)
        files["app/config.py"] = (
            "import os\n\n\ndef root():\n"
            "    return os.environ.get('APP_ROOT')  # repro: allow[*]\n"
        )
        result = lint(files, "REP-ENV-READ", **SANCTIONED)
        assert result.active == []

    def test_comment_inside_string_is_not_a_suppression(self, lint):
        files = dict(ENV_FILES)
        files["app/config.py"] = (
            "import os\n\nNOTE = '# repro: allow[REP-ENV-READ]'\n\n\n"
            "def root():\n    return os.environ.get('APP_ROOT')\n"
        )
        result = lint(files, "REP-ENV-READ", **SANCTIONED)
        assert len(result.active) == 1


class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path, make_project):
        project = make_project(ENV_FILES)
        config = LintConfig(**SANCTIONED)
        first = run_lint(project=project, config=config, rules=["REP-ENV-READ"])
        assert first.exit_code == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, first.findings)
        baseline = Baseline.load(baseline_path)
        second = run_lint(
            project=project,
            config=config,
            rules=["REP-ENV-READ"],
            baseline=baseline,
        )
        assert second.exit_code == 0
        assert second.n_baselined == 1

    def test_new_finding_not_covered_by_old_baseline(
        self, tmp_path, make_project
    ):
        project = make_project(ENV_FILES)
        config = LintConfig(**SANCTIONED)
        first = run_lint(project=project, config=config, rules=["REP-ENV-READ"])
        baseline_path = tmp_path / "baseline.json"
        Baseline.write(baseline_path, first.findings)

        grown = dict(ENV_FILES)
        grown["app/config.py"] += (
            "\n\ndef other():\n    return os.getenv('APP_OTHER')\n"
        )
        fresh_dir = tmp_path / "fresh"
        _write(fresh_dir, grown)
        from repro.lint import load_project

        project2 = load_project([fresh_dir])
        result = run_lint(
            project=project2,
            config=config,
            rules=["REP-ENV-READ"],
            baseline=Baseline.load(baseline_path),
        )
        # The original site is grandfathered; the new one still fails.
        assert result.n_baselined == 1
        assert len(result.active) == 1
        assert "os.getenv" in result.active[0].message

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "does-not-exist.json")
        assert baseline.fingerprints == set()


class TestFingerprints:
    def test_stable_across_line_insertion_above(self, tmp_path):
        from repro.lint import load_project

        config = LintConfig(**SANCTIONED)
        a_dir = _write(tmp_path / "a", ENV_FILES)
        shifted = dict(ENV_FILES)
        shifted["app/config.py"] = (
            "import os\n\nPADDING = 1\nMORE = 2\n\n\ndef root():\n"
            "    return os.environ.get(\"APP_ROOT\")\n"
        )
        b_dir = _write(tmp_path / "b", shifted)

        fp_a = [
            f.fingerprint
            for f in run_lint(
                project=load_project([a_dir]), config=config,
                rules=["REP-ENV-READ"],
            ).findings
        ]
        fp_b = [
            f.fingerprint
            for f in run_lint(
                project=load_project([b_dir]), config=config,
                rules=["REP-ENV-READ"],
            ).findings
        ]
        assert fp_a == fp_b

    def test_editing_flagged_line_changes_fingerprint(self, tmp_path):
        from repro.lint import load_project

        config = LintConfig(**SANCTIONED)
        a_dir = _write(tmp_path / "a", ENV_FILES)
        edited = dict(ENV_FILES)
        edited["app/config.py"] = edited["app/config.py"].replace(
            "APP_ROOT", "APP_HOME"
        )
        b_dir = _write(tmp_path / "b", edited)

        fp_a = run_lint(
            project=load_project([a_dir]), config=config, rules=["REP-ENV-READ"]
        ).findings[0].fingerprint
        fp_b = run_lint(
            project=load_project([b_dir]), config=config, rules=["REP-ENV-READ"]
        ).findings[0].fingerprint
        assert fp_a != fp_b
