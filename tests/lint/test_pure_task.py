"""REP-PURE-TASK: task results depending on mutable shared state."""

from __future__ import annotations

PKG = {"app/__init__.py": ""}
CONFIG = dict(task_root_modules=("app.tasks",))


class TestPureTaskPositive:
    def test_memo_read_with_external_mutator(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run", "clear"]

            _MEMO = {}


            def run(spec):
                if spec["k"] in _MEMO:
                    return _MEMO[spec["k"]]
                return None


            def clear():
                _MEMO.clear()
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        flagged = [
            f for f in result.active if f.chain == ("app.tasks.run",)
        ]
        assert len(flagged) == 1
        finding = flagged[0]
        assert "_MEMO" in finding.message
        assert "'clear'" in finding.message

    def test_reachable_helper_in_another_module(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            from app.store import lookup

            __all__ = ["run"]


            def run(spec):
                return lookup(spec["k"])
        """
        files["app/store.py"] = """\
            _TABLE = {}


            def lookup(key):
                return _TABLE.get(key)


            def install(key, value):
                _TABLE[key] = value
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        assert len(result.active) == 1
        finding = result.active[0]
        assert finding.module == "app.store"
        assert "'install'" in finding.message
        assert finding.chain == ("app.tasks.run", "app.store.lookup")

    def test_nonlocal_closure_accumulator(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                total = 0.0

                def bump(x):
                    nonlocal total
                    total += x

                for v in spec["values"]:
                    bump(v)
                return total
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        assert len(result.active) == 1
        assert "nonlocal" in result.active[0].message
        assert "'bump'" in result.active[0].message

    def test_one_finding_per_function_global_pair(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]

            _MEMO = {}


            def run(spec):
                a = _MEMO.get("a")
                b = _MEMO.get("b")
                return a, b


            def clear():
                _MEMO.clear()
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        flagged = [
            f for f in result.active if f.chain == ("app.tasks.run",)
        ]
        assert len(flagged) == 1  # first read only, not every site


class TestPureTaskNegative:
    def test_self_only_mutation_is_not_flagged(self, lint):
        # a function that both reads and mutates its own memo, with no
        # other mutator, is the pure read-through pattern
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]

            _MEMO = {}


            def run(spec):
                key = spec["k"]
                if key not in _MEMO:
                    _MEMO[key] = key * 2
                return _MEMO[key]
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        assert result.active == []

    def test_unreachable_reader_is_not_flagged(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]


            def run(spec):
                return spec["k"]
        """
        files["app/other.py"] = """\
            _STATE = {}


            def reader():
                return _STATE.get("x")


            def writer():
                _STATE["x"] = 1
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        assert result.active == []

    def test_immutable_global_is_not_flagged(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run"]

            _LIMIT = 10


            def run(spec):
                return min(spec["n"], _LIMIT)
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        assert result.active == []

    def test_inline_suppression_with_justification(self, lint):
        files = dict(PKG)
        files["app/tasks.py"] = """\
            __all__ = ["run", "clear"]

            _MEMO = {}


            def run(spec):
                # pure read-through memo, rebuilds bit-identically
                return _MEMO.get(spec["k"])  # repro: allow[REP-PURE-TASK]


            def clear():
                _MEMO.clear()
        """
        result = lint(files, "REP-PURE-TASK", **CONFIG)
        assert result.active == []
        assert result.n_suppressed == 1
