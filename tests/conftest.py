"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config import SMOKE
from repro.datasets import build_dataset, dataset_spec

# Keep property-based tests fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def smoke_dataset_2x2():
    """A tiny 2x2 @ 20 MHz dataset shared across tests (D1, SMOKE)."""
    return build_dataset(dataset_spec("D1"), fidelity=SMOKE, seed=7)


@pytest.fixture(scope="session")
def smoke_dataset_3x3():
    """A tiny 3x3 @ 20 MHz dataset shared across tests (D2, SMOKE)."""
    return build_dataset(dataset_spec("D2"), fidelity=SMOKE, seed=11)


def random_unitary_columns(
    rng: np.random.Generator,
    n_rows: int,
    n_cols: int,
    batch: tuple[int, ...] = (),
) -> np.ndarray:
    """Random matrices with orthonormal columns (Haar-ish via QR)."""
    raw = rng.standard_normal(batch + (n_rows, n_rows)) + 1j * rng.standard_normal(
        batch + (n_rows, n_rows)
    )
    q, _ = np.linalg.qr(raw)
    return q[..., :n_cols]
