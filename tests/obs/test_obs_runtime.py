"""Acceptance tests: end-to-end tracing of engine runs and campaigns.

The issue's acceptance criteria live here at smoke scale:

- a 4-worker engine run and a 16-STA campaign, traced, produce result
  artifacts **byte-identical** to their untraced runs;
- the Chrome trace-event JSON contains coordinator spans *and* a
  worker-recorded task span for every executed task;
- ``python -m repro.obs report`` (``render_report``) names the
  critical path;
- span trees are structurally deterministic (same ids across runs and
  across worker counts);
- ``$REPRO_RUNTIME_TRACE`` activates tracing and writes all three
  artifacts;
- worker ``@profiled`` registries merge into the coordinator's.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

import pytest

from repro.config import SMOKE
from repro.core.network import NetworkCampaign
from repro.obs import (
    CHROME_NAME,
    JSONL_NAME,
    SUMMARY_NAME,
    load_trace,
    render_report,
    validate_events,
)
from repro.perf import profile_summary, reset_profiles
from repro.runtime import (
    CheckpointStore,
    ExperimentEngine,
    NetworkCampaignSpec,
    ResultCache,
    Scenario,
    dot11,
    fidelity_to_dict,
    ideal,
    point,
    splitbeam,
    sta_profile,
)
from repro.runtime.tasks import clear_memos

N_WORKERS = 4
N_STAS = 16
N_ROUNDS = 2


def _scenario() -> Scenario:
    points = [
        point(
            f"SB seed {seed}",
            "D1",
            splitbeam(1 / 8, seed=seed),
            link={"snr_db": 20.0},
            ber_samples=6,
        )
        for seed in range(4)
    ]
    points.append(
        point("802.11", "D1", dot11(), link={"snr_db": 20.0}, ber_samples=6)
    )
    points.append(
        point("ideal", "D1", ideal(), link={"snr_db": 20.0}, ber_samples=6)
    )
    return Scenario(
        name="obs-acceptance",
        title="tracing acceptance scenario",
        fidelity=fidelity_to_dict(SMOKE),
        points=tuple(points),
    )


def _sixteen_sta_spec() -> NetworkCampaignSpec:
    stas = []
    for i in range(N_STAS):
        if i % 4 == 3:
            stas.append(
                sta_profile(
                    f"sta{i:03d}",
                    "D1",
                    scheme="dot11",
                    samples_per_round=2,
                    seed=i % 2,
                )
            )
        else:
            stas.append(
                sta_profile(
                    f"sta{i:03d}",
                    "D1",
                    compressions=(1 / 8,),
                    max_ber=0.5,
                    samples_per_round=2,
                    seed=i % 2,
                )
            )
    return NetworkCampaignSpec(
        name="obs-16sta",
        title="16-STA tracing acceptance campaign",
        fidelity=asdict(SMOKE),
        stas=tuple(stas),
        n_rounds=N_ROUNDS,
    )


def _task_events(chrome: dict) -> "list[dict]":
    return [
        event
        for event in chrome["traceEvents"]
        if event.get("ph") == "X" and event.get("cat") == "task"
    ]


@pytest.fixture(scope="module")
def engine_runs(tmp_path_factory):
    """Untraced serial + traced 4-worker + traced serial runs."""
    root = tmp_path_factory.mktemp("obs-engine")
    scenario = _scenario()

    def run(tag, n_workers, trace):
        clear_memos()
        cache = ResultCache(root / f"cache-{tag}")
        return ExperimentEngine(
            cache=cache, n_workers=n_workers, trace=trace
        ).run(scenario)

    untraced = run("untraced", N_WORKERS, False)
    reset_profiles()
    pooled = run("pooled", N_WORKERS, str(root / "trace-pooled"))
    pooled_profiles = {entry.name: entry for entry in profile_summary()}
    serial = run("serial", 1, str(root / "trace-serial"))
    repeat = run("repeat", N_WORKERS, str(root / "trace-repeat"))
    return {
        "scenario": scenario,
        "untraced": untraced,
        "pooled": pooled,
        "pooled_profiles": pooled_profiles,
        "serial": serial,
        "repeat": repeat,
    }


class TestEngineAcceptance:
    def test_traced_artifact_is_byte_identical(self, engine_runs):
        untraced = json.dumps(
            engine_runs["untraced"].to_dict(), sort_keys=True
        )
        for tag in ("pooled", "serial", "repeat"):
            traced = json.dumps(engine_runs[tag].to_dict(), sort_keys=True)
            assert traced == untraced, tag

    def test_trace_dir_reported_and_artifacts_written(self, engine_runs):
        assert engine_runs["untraced"].trace_dir is None
        trace_dir = engine_runs["pooled"].trace_dir
        assert sorted(os.listdir(trace_dir)) == [
            CHROME_NAME, SUMMARY_NAME, JSONL_NAME,
        ]

    def test_trace_validates_against_schema(self, engine_runs):
        events = load_trace(engine_runs["pooled"].trace_dir)
        assert validate_events(events) == []

    def test_chrome_trace_has_worker_span_per_task_plus_coordinator(
        self, engine_runs
    ):
        with open(
            os.path.join(engine_runs["pooled"].trace_dir, CHROME_NAME)
        ) as handle:
            chrome = json.load(handle)
        tasks = _task_events(chrome)
        run = engine_runs["pooled"]
        labels = {event["args"]["task"] for event in tasks}
        expected = {
            f"{index:04d}:{p['label']}"
            for index, p in enumerate(engine_runs["scenario"].points)
        }
        # (b) a span for every executed task...
        assert labels == expected and len(tasks) == run.n_executed
        # ...recorded by worker processes (lane != coordinator's 0)...
        assert all(event["pid"] != 0 for event in tasks)
        # ...alongside the coordinator's own engine/executor spans.
        coordinator = [
            event
            for event in chrome["traceEvents"]
            if event.get("ph") == "X" and event["pid"] == 0
        ]
        names = {event["name"] for event in coordinator}
        assert {"execute", "dispatch", "wave", "plan", "cache_check"} <= names
        lanes = {
            event["args"]["name"]
            for event in chrome["traceEvents"]
            if event.get("ph") == "M"
        }
        assert "coordinator" in lanes and "worker-1" in lanes

    def test_serial_run_records_tasks_on_the_coordinator(self, engine_runs):
        with open(
            os.path.join(engine_runs["serial"].trace_dir, CHROME_NAME)
        ) as handle:
            chrome = json.load(handle)
        tasks = _task_events(chrome)
        assert len(tasks) == engine_runs["serial"].n_executed
        assert all(event["pid"] == 0 for event in tasks)

    def test_report_names_the_critical_path(self, engine_runs):
        report = render_report(load_trace(engine_runs["pooled"].trace_dir))
        assert "critical path" in report
        assert "->" in report
        # The named chain is one of the scenario's points.
        labels = [p["label"] for p in engine_runs["scenario"].points]
        assert any(label in report for label in labels)

    def test_span_tree_identical_across_runs_and_worker_counts(
        self, engine_runs
    ):
        def tree(tag, category=None):
            events = load_trace(engine_runs[tag].trace_dir)
            return {
                (event["id"], event["parent"], event["name"])
                for event in events
                if event.get("type") == "span"
                and (category is None or event["cat"] == category)
            }

        # Same configuration -> identical full span tree (ids included).
        assert tree("pooled") == tree("repeat")
        # Task spans have logical (wave/chunk-independent) parents, so
        # even serial vs 4-worker runs agree on every task span id.
        assert tree("pooled", "task") == tree("serial", "task")

    def test_worker_profiles_merge_into_coordinator(self, engine_runs):
        profiles = engine_runs["pooled_profiles"]
        # The link simulator only ever ran inside pool workers, yet the
        # coordinator registry sees it (satellite 1: shipped deltas).
        assert "link.measure_ber" in profiles
        assert profiles["link.measure_ber"].calls >= 2  # baseline points

    def test_metrics_record_cache_and_ipc_counters(self, engine_runs):
        events = load_trace(engine_runs["pooled"].trace_dir)
        metrics = next(e for e in events if e.get("type") == "metrics")
        counters = metrics["counters"]
        run = engine_runs["pooled"]
        assert counters["cache.misses"] == run.n_tasks
        assert counters["cache.puts"] == run.n_executed
        assert counters["executor.messages"] >= 1
        assert counters["executor.message_bytes"] > 0
        assert metrics["gauges"]["cache.hit_ratio"] == 0.0
        assert metrics["gauges"]["health.executor.task_errors"] == 0.0


@pytest.fixture(scope="module")
def campaign_runs(tmp_path_factory):
    """Untraced and traced 4-worker runs of the 16-STA campaign."""
    root = tmp_path_factory.mktemp("obs-campaign")
    spec = _sixteen_sta_spec()
    store = CheckpointStore(root / "store")

    clear_memos()
    untraced = NetworkCampaign(
        spec,
        cache=ResultCache(root / "cache-untraced"),
        store=store,
        n_workers=N_WORKERS,
        trace=False,
    ).run()
    clear_memos()
    traced = NetworkCampaign(
        spec,
        cache=ResultCache(root / "cache-traced"),
        store=store,
        n_workers=N_WORKERS,
        trace=str(root / "trace"),
    ).run()
    return {"spec": spec, "untraced": untraced, "traced": traced}


class TestCampaignAcceptance:
    def test_traced_manifest_is_byte_identical(self, campaign_runs):
        untraced = json.dumps(
            campaign_runs["untraced"].to_dict(), sort_keys=True
        )
        traced = json.dumps(campaign_runs["traced"].to_dict(), sort_keys=True)
        assert traced == untraced

    def test_trace_contains_worker_span_for_every_round(self, campaign_runs):
        traced = campaign_runs["traced"]
        with open(
            os.path.join(traced.trace_dir, CHROME_NAME)
        ) as handle:
            chrome = json.load(handle)
        tasks = _task_events(chrome)
        round_events = [
            event for event in tasks if "/round-" in event["args"]["task"]
        ]
        expected = {
            f"sta{i:03d}/round-{r:04d}"
            for i in range(N_STAS)
            for r in range(N_ROUNDS)
        }
        assert {e["args"]["task"] for e in round_events} == expected
        assert len(round_events) == traced.n_executed_rounds
        assert all(event["pid"] != 0 for event in round_events)
        # The embedded zoo build joined the campaign's timeline.
        names = {
            event["name"]
            for event in chrome["traceEvents"]
            if event.get("ph") == "X"
        }
        assert f"campaign:{campaign_runs['spec'].name}" in names
        assert any(name.startswith("zoo:") for name in names)
        assert {"plan_rounds", "drain", "assemble"} <= names

    def test_trace_validates_and_reports_critical_path(self, campaign_runs):
        events = load_trace(campaign_runs["traced"].trace_dir)
        assert validate_events(events) == []
        report = render_report(events)
        assert "critical path" in report
        # Chained STA rounds: the critical path spans multiple rounds.
        assert "/round-" in report and "->" in report

    def test_campaign_metrics_fold_health_and_dedupe(self, campaign_runs):
        events = load_trace(campaign_runs["traced"].trace_dir)
        metrics = next(e for e in events if e.get("type") == "metrics")
        counters = metrics["counters"]
        gauges = metrics["gauges"]
        traced = campaign_runs["traced"]
        assert counters["cache.puts"] == traced.n_executed_rounds
        assert counters["payloads.interned"] >= counters["payloads.unique"]
        assert gauges["payloads.dedupe_ratio"] >= 0.0
        assert gauges["health.executor.worker_crashes"] == 0.0


class TestEnvActivation:
    def test_env_var_traces_a_run_end_to_end(self, tmp_path, monkeypatch):
        from repro.obs.trace import TRACE_ENV

        trace_dir = tmp_path / "env-trace"
        monkeypatch.setenv(TRACE_ENV, str(trace_dir))
        clear_memos()
        scenario = _scenario()
        run = ExperimentEngine(cache=ResultCache(tmp_path / "cache")).run(
            scenario
        )
        assert run.trace_dir == str(trace_dir)
        assert sorted(os.listdir(trace_dir)) == [
            CHROME_NAME, SUMMARY_NAME, JSONL_NAME,
        ]
        assert validate_events(load_trace(trace_dir)) == []

    def test_trace_false_wins_over_env(self, tmp_path, monkeypatch):
        from repro.obs.trace import TRACE_ENV

        monkeypatch.setenv(TRACE_ENV, str(tmp_path / "never"))
        clear_memos()
        run = ExperimentEngine(
            cache=ResultCache(tmp_path / "cache"), trace=False
        ).run(_scenario())
        assert run.trace_dir is None
        assert not (tmp_path / "never").exists()
