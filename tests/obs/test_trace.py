"""Unit tests for the repro.obs tracing/metrics/export subsystem."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Metrics,
    Tracer,
    chrome_trace_payload,
    critical_path,
    current_tracer,
    install_tracer,
    load_trace,
    render_report,
    span_id,
    trace_events,
    tracer_for_run,
    validate_events,
    write_trace,
)
from repro.obs.trace import TRACE_ENV


class TestSpanIds:
    def test_content_derived_and_stable(self):
        assert span_id("", "engine:x", 0) == span_id("", "engine:x", 0)
        assert span_id("", "engine:x", 0) != span_id("", "engine:x", 1)
        assert span_id("", "a", 0) != span_id("", "b", 0)
        assert len(span_id("p", "n", 3)) == 12

    def test_occurrence_counting_disambiguates_repeats(self):
        tracer = Tracer(name="t")
        with tracer.span("root"):
            with tracer.span("wave"):
                pass
            with tracer.span("wave"):
                pass
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == 3

    def test_nesting_follows_the_stack(self):
        tracer = Tracer(name="t")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            assert tracer.current_span_id() == outer.span_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ""

    def test_two_identical_runs_share_the_span_tree(self):
        def run():
            tracer = Tracer(name="t")
            with tracer.span("root"):
                for _ in range(2):
                    with tracer.span("phase"):
                        tracer.event("marker")
            return {(s.span_id, s.parent_id, s.name) for s in tracer.spans}

        assert run() == run()

    def test_absorb_merges_worker_span_dicts(self):
        tracer = Tracer(name="t")
        with tracer.span("execute") as execute:
            pass
        worker_span = {
            "id": span_id(execute.span_id, "task:x", 1),
            "parent": execute.span_id,
            "name": "task:x",
            "cat": "task",
            "start_s": 0.5,
            "end_s": 0.7,
            "pid": 4242,
            "attrs": {"task": "x", "attempt": 1},
        }
        tracer.absorb([worker_span])
        absorbed = tracer.spans[-1]
        assert absorbed.pid == 4242
        assert absorbed.duration_s == pytest.approx(0.2)


class TestMetrics:
    def test_counters_gauges_histograms(self):
        metrics = Metrics()
        metrics.inc("hits")
        metrics.inc("hits", 2)
        metrics.set_gauge("ratio", 0.5)
        metrics.observe("depth", 3)
        metrics.observe("depth", 5)
        payload = metrics.to_dict()
        assert payload["counters"]["hits"] == 3
        assert payload["gauges"]["ratio"] == 0.5
        depth = payload["histograms"]["depth"]
        assert depth["count"] == 2
        assert depth["min"] == 3 and depth["max"] == 5
        assert depth["mean"] == pytest.approx(4.0)

    def test_ratio_gauge_guards_zero_denominator(self):
        metrics = Metrics()
        metrics.ratio_gauge("r", 1, 0)
        assert metrics.to_dict()["gauges"]["r"] == 0.0
        metrics.ratio_gauge("r", 1, 4)
        assert metrics.to_dict()["gauges"]["r"] == 0.25


class TestTracerForRun:
    def test_false_disables_even_under_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        assert tracer_for_run(False, "x") == (None, False)

    def test_path_creates_owned_tracer(self, tmp_path):
        tracer, owned = tracer_for_run(str(tmp_path / "t"), "engine:x")
        assert owned and tracer.name == "engine:x"
        assert tracer.out_dir == str(tmp_path / "t")

    def test_tracer_instance_is_not_owned(self):
        mine = Tracer(name="mine")
        assert tracer_for_run(mine, "x") == (mine, False)

    def test_none_joins_installed_tracer(self):
        mine = Tracer(name="outer")
        previous = install_tracer(mine)
        try:
            assert tracer_for_run(None, "inner") == (mine, False)
        finally:
            install_tracer(previous)

    def test_none_falls_back_to_env_then_off(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert current_tracer() is None
        assert tracer_for_run(None, "x") == (None, False)
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        tracer, owned = tracer_for_run(None, "x")
        assert owned and tracer.out_dir == str(tmp_path)


def _sample_tracer() -> Tracer:
    tracer = Tracer(name="engine:test")
    with tracer.span("engine:test", "engine"):
        with tracer.span("execute", "executor") as execute:
            for index, (task, deps, cost) in enumerate(
                [("a", [], 0.2), ("b", ["a"], 0.3), ("c", [], 0.1)]
            ):
                with tracer.span(
                    f"task:{task}",
                    "task",
                    parent=execute.span_id,
                    fixed_id=span_id(execute.span_id, f"task:{task}", 1),
                    task=task,
                    attempt=1,
                    deps=deps,
                ) as span:
                    pass
                span.start_s = index * 1.0
                span.end_s = index * 1.0 + cost
    tracer.metrics.inc("cache.misses", 3)
    return tracer


class TestExportAndReport:
    def test_write_trace_emits_three_artifacts(self, tmp_path):
        tracer = _sample_tracer()
        out = write_trace(tracer, tmp_path / "trace")
        files = sorted(p.name for p in (tmp_path / "trace").iterdir())
        assert files == ["chrome_trace.json", "summary.txt", "trace.jsonl"]
        assert out == str(tmp_path / "trace")

    def test_write_trace_without_directory_rejected(self):
        with pytest.raises(ConfigurationError):
            write_trace(Tracer(name="t"))

    def test_jsonl_round_trips_and_validates(self, tmp_path):
        tracer = _sample_tracer()
        write_trace(tracer, tmp_path)
        events = load_trace(tmp_path)
        assert validate_events(events) == []
        assert events[0]["type"] == "meta"
        assert events[-1]["type"] == "metrics"
        # load_trace accepts the file path too.
        assert load_trace(tmp_path / "trace.jsonl") == events

    def test_load_trace_missing_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(tmp_path / "nope")

    def test_validate_catches_corruption(self):
        events = trace_events(_sample_tracer())
        assert validate_events(events) == []
        # No meta record.
        assert validate_events(events[1:]) == ["no meta record"]
        # Wrong schema version.
        bad_meta = [dict(events[0], schema_version=999)] + events[1:]
        assert any("schema_version" in e for e in validate_events(bad_meta))
        # Missing key / wrong type / negative duration / unknown type.
        span = next(e for e in events if e["type"] == "span")
        broken = dict(span)
        del broken["pid"]
        assert any("missing key" in e for e in validate_events([events[0], broken]))
        wrong = dict(span, start_s="later")
        assert any("has type" in e for e in validate_events([events[0], wrong]))
        torn = dict(span, start_s=2.0, end_s=1.0)
        assert any("end_s" in e for e in validate_events([events[0], torn]))
        assert any(
            "unknown type" in e
            for e in validate_events([events[0], {"type": "mystery"}])
        )

    def test_chrome_payload_lanes_and_args(self):
        tracer = _sample_tracer()
        tracer.absorb(
            [
                {
                    "id": "feedbeef0001",
                    "parent": "",
                    "name": "task:w",
                    "cat": "task",
                    "start_s": 0.0,
                    "end_s": 0.1,
                    "pid": tracer.pid + 1,
                    "attrs": {"task": "w", "attempt": 1},
                }
            ]
        )
        payload = chrome_trace_payload(tracer)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == ["coordinator", "worker-1"]
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        worker = next(e for e in spans if e["name"] == "task:w")
        assert worker["pid"] == 1  # lane, not raw pid
        assert worker["args"]["id"] == "feedbeef0001"
        assert all(e["dur"] >= 0 for e in spans)

    def test_critical_path_follows_deps(self):
        events = trace_events(_sample_tracer())
        chain, total = critical_path(events)
        # b (0.3) depends on a (0.2): cumulative 0.5 beats c (0.1).
        assert chain == ["a", "b"]
        assert total == pytest.approx(0.5)

    def test_report_names_critical_path_and_stats(self):
        text = render_report(trace_events(_sample_tracer()))
        assert "trace report: engine:test" in text
        assert "critical path" in text
        assert "-> a -> b" in text.replace("  ", " ") or "a" in text
        assert "cache misses" in text


class TestCli:
    def test_report_and_validate_exit_codes(self, tmp_path):
        import subprocess
        import sys

        write_trace(_sample_tracer(), tmp_path)
        env_dir = str(tmp_path)

        def cli(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro.obs", *args],
                capture_output=True,
                text=True,
            )

        report = cli("report", env_dir)
        assert report.returncode == 0
        assert "critical path" in report.stdout

        valid = cli("validate", env_dir)
        assert valid.returncode == 0

        # Corrupt the JSONL: drop the meta line.
        jsonl = tmp_path / "trace.jsonl"
        lines = jsonl.read_text().splitlines()
        jsonl.write_text("\n".join(lines[1:]) + "\n")
        invalid = cli("validate", env_dir)
        assert invalid.returncode == 1

        missing = cli("validate", str(tmp_path / "nope"))
        assert missing.returncode == 2
