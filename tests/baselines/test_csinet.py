"""Tests for the CsiNet-style convolutional comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.csinet import (
    ConvSplitNet,
    CsiNetFeedback,
    train_csinet,
)
from repro.config import SMOKE
from repro.errors import ConfigurationError


class TestConvSplitNet:
    def test_dimensions(self):
        model = ConvSplitNet(input_dim=224, n_feature_channels=4, compression=1 / 8)
        assert model.n_subcarriers == 56
        assert model.bottleneck_dim == 28
        assert model.compression == pytest.approx(1 / 8)

    def test_forward_shape(self):
        model = ConvSplitNet(224, 4, 1 / 8, rng=0)
        out = model.forward(np.random.default_rng(0).normal(size=(5, 224)))
        assert out.shape == (5, 224)

    def test_head_tail_composition(self):
        model = ConvSplitNet(224, 4, 1 / 8, rng=0)
        x = np.random.default_rng(1).normal(size=(2, 224))
        split = model.tail.forward(model.head.forward(x))
        np.testing.assert_allclose(split, model.forward(x))

    def test_bottleneck_is_actual_split_width(self):
        model = ConvSplitNet(224, 4, 1 / 4, rng=0)
        x = np.random.default_rng(2).normal(size=(3, 224))
        assert model.head.forward(x).shape == (3, 56)

    def test_macs_accounting(self):
        model = ConvSplitNet(224, 4, 1 / 8, hidden_channels=8, rng=0)
        # conv1: 56*8*4*5; conv2: 56*4*8*5; fc: 224*28.
        expected = 56 * 8 * 4 * 5 + 56 * 4 * 8 * 5 + 224 * 28
        assert model.head_macs() == expected
        assert model.tail_macs() == 28 * 224

    def test_indivisible_input_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvSplitNet(225, 4, 1 / 8)

    def test_invalid_compression(self):
        with pytest.raises(ConfigurationError):
            ConvSplitNet(224, 4, 0.0)


class TestTrainCsiNet:
    def test_trains_and_evaluates(self, smoke_dataset_2x2):
        trained = train_csinet(
            smoke_dataset_2x2, compression=1 / 8, fidelity=SMOKE, seed=0
        )
        assert len(trained.history) == SMOKE.epochs
        # Training reduces the loss.
        assert trained.history.train_loss[-1] < trained.history.train_loss[0]
        ber = trained.test_ber(max_samples=6).ber
        assert 0.0 <= ber <= 0.5

    def test_feedback_scheme_interface(self, smoke_dataset_2x2):
        trained = train_csinet(
            smoke_dataset_2x2, compression=1 / 8, fidelity=SMOKE, seed=1
        )
        scheme = CsiNetFeedback(trained)
        assert scheme.name == "CsiNet-style (K=1/8)"
        indices = smoke_dataset_2x2.splits.test[:3]
        bf = scheme.reconstruct_bf(smoke_dataset_2x2, indices)
        assert bf.shape == smoke_dataset_2x2.link_bf(indices).shape
        assert scheme.sta_flops(smoke_dataset_2x2) == 2.0 * trained.model.head_macs()
        assert scheme.feedback_bits(smoke_dataset_2x2) == 28 * 16

    def test_conv_head_costs_more_than_dense(self, smoke_dataset_2x2):
        """The ablation's premise: frequency-local convs add STA MACs
        over SplitBeam's single matmul at equal K."""
        trained = train_csinet(
            smoke_dataset_2x2, compression=1 / 8, fidelity=SMOKE, seed=2
        )
        dense_head_macs = 224 * 28
        assert trained.model.head_macs() > dense_head_macs
