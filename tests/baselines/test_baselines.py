"""Tests for the 802.11 and LB-SciFi feedback baselines."""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.baselines import Dot11Feedback, IdealSvdFeedback, train_lbscifi
from repro.baselines.lbscifi import _denormalize, _normalize
from repro.phy.link import LinkConfig, LinkSimulator
from repro.standard.givens import givens_decompose
from repro.standard.quantization import AngleQuantizer


class TestDot11Feedback:
    def test_reconstruction_close_to_truth(self, smoke_dataset_2x2):
        scheme = Dot11Feedback()
        indices = smoke_dataset_2x2.splits.test[:8]
        rebuilt = scheme.reconstruct_bf(smoke_dataset_2x2, indices)
        truth = smoke_dataset_2x2.link_bf(indices)
        assert rebuilt.shape == truth.shape
        assert np.max(np.abs(rebuilt - truth)) < 0.02  # (9,7) quantizer

    def test_coarser_quantizer_worse(self, smoke_dataset_2x2):
        indices = smoke_dataset_2x2.splits.test[:8]
        truth = smoke_dataset_2x2.link_bf(indices)
        fine = Dot11Feedback(AngleQuantizer(9, 7)).reconstruct_bf(
            smoke_dataset_2x2, indices
        )
        coarse = Dot11Feedback(AngleQuantizer(4, 2)).reconstruct_bf(
            smoke_dataset_2x2, indices
        )
        assert np.max(np.abs(coarse - truth)) > np.max(np.abs(fine - truth))

    def test_costs(self, smoke_dataset_2x2):
        scheme = Dot11Feedback()
        assert scheme.sta_flops(smoke_dataset_2x2) > 0
        assert scheme.feedback_bits(smoke_dataset_2x2) == 8 * 2 + 56 * 16

    def test_ber_close_to_ideal(self, smoke_dataset_2x2):
        link = LinkSimulator(LinkConfig(snr_db=20))
        indices = smoke_dataset_2x2.splits.test[:8]
        channels = smoke_dataset_2x2.link_channels(indices)
        ideal = link.measure_ber(
            channels, IdealSvdFeedback().reconstruct_bf(smoke_dataset_2x2, indices)
        )
        dot11 = link.measure_ber(
            channels, Dot11Feedback().reconstruct_bf(smoke_dataset_2x2, indices)
        )
        assert abs(dot11.ber - ideal.ber) < 0.02


class TestIdealFeedback:
    def test_returns_exact_targets(self, smoke_dataset_2x2):
        indices = smoke_dataset_2x2.splits.test[:4]
        rebuilt = IdealSvdFeedback().reconstruct_bf(smoke_dataset_2x2, indices)
        assert np.array_equal(rebuilt, smoke_dataset_2x2.link_bf(indices))


class TestAngleNormalization:
    def test_round_trip(self, smoke_dataset_2x2):
        bf = smoke_dataset_2x2.bf[:6]
        angles = givens_decompose(bf[..., :, None])
        features = _normalize(angles)
        assert features.min() >= -1.0 - 1e-12
        assert features.max() <= 1.0 + 1e-12
        recovered = _denormalize(
            features.reshape(features.shape[0], features.shape[1], -1),
            smoke_dataset_2x2.n_subcarriers,
            2,
            1,
        )
        assert np.allclose(
            np.mod(recovered.phi, 2 * np.pi), np.mod(angles.phi, 2 * np.pi),
            atol=1e-10,
        )
        assert np.allclose(recovered.psi, angles.psi, atol=1e-10)


class TestLbSciFi:
    @pytest.fixture(scope="class")
    def scheme(self, smoke_dataset_2x2):
        return train_lbscifi(
            smoke_dataset_2x2, compression=1 / 4, fidelity=SMOKE, seed=0
        )

    def test_sta_cost_exceeds_dot11(self, scheme, smoke_dataset_2x2):
        """LB-SciFi pays SVD + GR *plus* its encoder (Sec. II)."""
        dot11 = Dot11Feedback().sta_flops(smoke_dataset_2x2)
        assert scheme.sta_flops(smoke_dataset_2x2) > dot11

    def test_feedback_smaller_than_dot11(self, scheme, smoke_dataset_2x2):
        assert scheme.feedback_bits(smoke_dataset_2x2) < Dot11Feedback().feedback_bits(
            smoke_dataset_2x2
        )

    def test_reconstruction_shape_and_sanity(self, scheme, smoke_dataset_2x2):
        indices = smoke_dataset_2x2.splits.test[:6]
        rebuilt = scheme.reconstruct_bf(smoke_dataset_2x2, indices)
        truth = smoke_dataset_2x2.link_bf(indices)
        assert rebuilt.shape == truth.shape
        # Column norms stay ~1: inverse Givens builds unitary columns.
        assert np.allclose(np.linalg.norm(rebuilt, axis=-1), 1.0, atol=1e-9)

    def test_better_than_random_beamforming(self, scheme, smoke_dataset_2x2, rng):
        link = LinkSimulator(LinkConfig(snr_db=20))
        indices = smoke_dataset_2x2.splits.test[:6]
        channels = smoke_dataset_2x2.link_channels(indices)
        learned = link.measure_ber(
            channels, scheme.reconstruct_bf(smoke_dataset_2x2, indices)
        )
        shape = smoke_dataset_2x2.link_bf(indices).shape
        random_bf = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        random = link.measure_ber(channels, random_bf)
        assert learned.ber < random.ber

    def test_name_records_compression(self, scheme):
        assert "1/4" in scheme.name
