"""Tests for the subcarrier-grouped bit-level 802.11 feedback scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dot11 import Dot11Feedback
from repro.baselines.grouped import GroupedCbfFeedback
from repro.errors import ConfigurationError
from repro.utils.complexmat import column_correlation


@pytest.fixture(scope="module")
def dataset(smoke_dataset_2x2):
    return smoke_dataset_2x2


class TestGroupedCbfFeedback:
    def test_invalid_grouping(self):
        with pytest.raises(ConfigurationError):
            GroupedCbfFeedback(grouping=3)

    def test_reconstruction_shape(self, dataset):
        scheme = GroupedCbfFeedback(grouping=2)
        indices = dataset.splits.test[:3]
        bf = scheme.reconstruct_bf(dataset, indices)
        assert bf.shape == dataset.link_bf(indices).shape

    def test_ng1_matches_array_pipeline(self, dataset):
        """The wire codec at Ng=1 equals the array-level Dot11 pipeline
        (same quantizer, same Givens round trip)."""
        indices = dataset.splits.test[:3]
        wire = GroupedCbfFeedback(grouping=1).reconstruct_bf(dataset, indices)
        arrays = Dot11Feedback().reconstruct_bf(dataset, indices)
        np.testing.assert_allclose(wire, arrays, atol=1e-9)

    def test_accuracy_degrades_with_grouping(self, dataset):
        indices = dataset.splits.test[:4]
        truth = dataset.link_bf(indices)
        corr = {}
        for ng in (1, 2, 4):
            bf = GroupedCbfFeedback(grouping=ng).reconstruct_bf(dataset, indices)
            corr[ng] = column_correlation(
                bf.reshape(-1, bf.shape[-1]).T, truth.reshape(-1, truth.shape[-1]).T
            )
        assert corr[1] >= corr[2] >= corr[4] - 1e-6
        assert corr[4] > 0.9  # smooth indoor channels stay recoverable

    def test_feedback_bits_shrink_with_grouping(self, dataset):
        bits = {
            ng: GroupedCbfFeedback(grouping=ng).feedback_bits(dataset)
            for ng in (1, 2, 4)
        }
        assert bits[4] < bits[2] < bits[1]
        # Roughly proportional to the grouped tone count.
        assert bits[2] < 0.6 * bits[1]

    def test_sta_flops_shrink_with_grouping(self, dataset):
        flops = {
            ng: GroupedCbfFeedback(grouping=ng).sta_flops(dataset)
            for ng in (1, 2, 4)
        }
        assert flops[4] < flops[2] < flops[1]

    def test_scheme_name(self):
        assert GroupedCbfFeedback(grouping=4).name == "802.11 Ng=4"
