"""Tests for the dataset pipeline: catalog, preprocessing, splits, IO."""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.errors import ConfigurationError, DatasetError
from repro.channels.sampler import CsiBatch
from repro.datasets import (
    CATALOG,
    build_dataset,
    dataset_spec,
    load_dataset,
    save_dataset,
    split_indices,
)
from repro.datasets.preprocess import (
    align_users,
    moving_median,
    normalize_amplitude,
    preprocess_csi,
)


class TestCatalog:
    def test_fifteen_datasets(self):
        assert len(CATALOG) == 15
        assert set(CATALOG) == {f"D{i}" for i in range(1, 16)}

    def test_table1_layout(self):
        # Table I: D1 = 2x2 E1 @ 20, D4 = 3x3 E2 @ 20, D12 = 3x3 E2 @ 80.
        assert (CATALOG["D1"].n_users, CATALOG["D1"].env_name) == (2, "E1")
        assert CATALOG["D1"].bandwidth_mhz == 20
        assert (CATALOG["D4"].n_users, CATALOG["D4"].env_name) == (3, "E2")
        assert (CATALOG["D12"].n_users, CATALOG["D12"].bandwidth_mhz) == (3, 80)
        assert CATALOG["D12"].env_name == "E2"

    def test_synthetic_entries(self):
        for dataset_id, n_users in (("D13", 2), ("D14", 3), ("D15", 4)):
            spec = CATALOG[dataset_id]
            assert spec.env_name == "MATLAB"
            assert spec.bandwidth_mhz == 160
            assert spec.n_users == n_users

    def test_default_sample_count_is_paper(self):
        assert CATALOG["D1"].n_samples == 10_000

    def test_lookup(self):
        assert dataset_spec("d5") is CATALOG["D5"]
        with pytest.raises(ConfigurationError):
            dataset_spec("D99")


class TestAlignment:
    def _batch(self, seqs, n_sc=4):
        csi = np.arange(len(seqs) * n_sc, dtype=complex).reshape(
            len(seqs), n_sc, 1, 1
        )
        return CsiBatch(csi=csi, sequence=np.asarray(seqs))

    def test_intersection(self):
        a = self._batch([0, 1, 2, 4])
        b = self._batch([1, 2, 3, 4])
        aligned = align_users([a, b])
        assert aligned.shape[0] == 3  # seq 1, 2, 4
        assert aligned.shape[1] == 2

    def test_matched_rows_correspond(self):
        a = self._batch([0, 2, 5])
        b = self._batch([2, 5, 7])
        aligned = align_users([a, b])
        # User a contributes rows for seq 2, 5 -> its rows 1, 2.
        assert np.array_equal(aligned[:, 0], a.csi[[1, 2]])
        assert np.array_equal(aligned[:, 1], b.csi[[0, 1]])

    def test_disjoint_raises(self):
        with pytest.raises(DatasetError):
            align_users([self._batch([0, 1]), self._batch([2, 3])])

    def test_empty_list_raises(self):
        with pytest.raises(DatasetError):
            align_users([])


class TestNormalization:
    def test_unit_mean_amplitude(self, rng):
        csi = rng.standard_normal((5, 2, 8, 1, 2)) * 37.0 + 1j
        normalized = normalize_amplitude(csi)
        means = np.mean(np.abs(normalized), axis=(-3, -2, -1))
        assert np.allclose(means, 1.0)

    def test_zero_sample_rejected(self):
        with pytest.raises(DatasetError):
            normalize_amplitude(np.zeros((1, 1, 4, 1, 1), dtype=complex))


class TestMovingMedian:
    def test_constant_stream_unchanged(self):
        csi = np.full((20, 4, 1, 1), 2 + 3j)
        assert np.allclose(moving_median(csi, 10), csi)

    def test_removes_impulse_noise(self, rng):
        clean = np.ones((50, 4, 1, 1), dtype=complex)
        noisy = clean.copy()
        noisy[25] = 100.0  # one corrupted packet
        smoothed = moving_median(noisy, 10)
        assert np.max(np.abs(smoothed[30:] - 1.0)) < 1e-12

    def test_window_one_is_identity(self, rng):
        csi = rng.standard_normal((7, 3, 1, 1)) + 1j
        assert np.array_equal(moving_median(csi, 1), csi)

    def test_output_length_preserved(self, rng):
        csi = rng.standard_normal((13, 2, 1, 1)) + 0j
        assert moving_median(csi, 10).shape == csi.shape

    def test_invalid_window(self):
        with pytest.raises(DatasetError):
            moving_median(np.ones((3, 1, 1, 1)), 0)

    def test_pipeline(self, rng):
        csi = rng.standard_normal((12, 2, 8, 1, 2)) + 1j
        out = preprocess_csi(csi)
        assert out.shape == csi.shape


class TestSplits:
    def test_ratios_8_1_1(self):
        splits = split_indices(1000)
        assert splits.train.size == 800
        assert splits.val.size == 100
        assert splits.test.size == 100

    def test_partition_is_disjoint_and_complete(self):
        splits = split_indices(97, rng=3)
        union = np.concatenate([splits.train, splits.val, splits.test])
        assert sorted(union.tolist()) == list(range(97))

    def test_deterministic(self):
        a = split_indices(50, rng=1)
        b = split_indices(50, rng=1)
        assert np.array_equal(a.train, b.train)

    def test_no_shuffle_keeps_order(self):
        splits = split_indices(10, shuffle=False)
        assert np.array_equal(splits.train, np.arange(8))

    def test_tiny_sets(self):
        splits = split_indices(3)
        assert splits.n_total == 3
        assert splits.val.size >= 1
        assert splits.test.size >= 1

    def test_too_small_raises(self):
        with pytest.raises(DatasetError):
            split_indices(2)


class TestBuilder:
    def test_smoke_dataset_shapes(self, smoke_dataset_2x2):
        ds = smoke_dataset_2x2
        assert ds.csi.shape == (96, 2, 56, 1, 2)
        assert ds.bf.shape == (96, 2, 56, 2)
        assert ds.input_dim == 224
        assert ds.output_dim == 224

    def test_targets_are_gauge_fixed_unit_vectors(self, smoke_dataset_2x2):
        bf = smoke_dataset_2x2.bf
        assert np.allclose(np.linalg.norm(bf, axis=-1), 1.0)
        assert np.allclose(bf[..., -1].imag, 0.0, atol=1e-10)
        assert np.all(bf[..., -1].real >= -1e-12)

    def test_targets_match_svd_of_csi(self, smoke_dataset_2x2):
        ds = smoke_dataset_2x2
        h = ds.csi[3, 1, 7, :, :]  # (1, 2)
        from repro.phy.svd import beamforming_matrix

        expected = beamforming_matrix(h, n_streams=1)[:, 0]
        assert np.allclose(ds.bf[3, 1, 7], expected)

    def test_model_arrays_consistent(self, smoke_dataset_2x2):
        ds = smoke_dataset_2x2
        x, y = ds.model_arrays(np.array([0, 1]))
        assert x.shape == (4, 224)  # 2 samples x 2 users
        assert y.shape == (4, 224)
        # Row 1 must be (sample 0, user 1).
        from repro.utils.complexmat import complex_to_real

        assert np.allclose(x[1], complex_to_real(ds.csi[0, 1].reshape(-1)))

    def test_csi_amplitude_normalized(self, smoke_dataset_2x2):
        mean_amp = np.mean(
            np.abs(smoke_dataset_2x2.csi), axis=(-3, -2, -1)
        )
        assert np.allclose(mean_amp, 1.0)

    def test_deterministic_given_seed(self):
        a = build_dataset(dataset_spec("D1"), fidelity=SMOKE, seed=3)
        b = build_dataset(dataset_spec("D1"), fidelity=SMOKE, seed=3)
        assert np.array_equal(a.csi, b.csi)

    def test_different_seeds_differ(self):
        a = build_dataset(dataset_spec("D1"), fidelity=SMOKE, seed=3)
        b = build_dataset(dataset_spec("D1"), fidelity=SMOKE, seed=4)
        assert not np.allclose(a.csi, b.csi)


class TestIo:
    def test_round_trip(self, smoke_dataset_2x2, tmp_path):
        path = str(tmp_path / "d1.npz")
        save_dataset(smoke_dataset_2x2, path)
        loaded = load_dataset(path)
        assert np.array_equal(loaded.csi, smoke_dataset_2x2.csi)
        assert np.array_equal(loaded.bf, smoke_dataset_2x2.bf)
        assert loaded.spec.dataset_id == "D1"
        assert np.array_equal(
            loaded.splits.train, smoke_dataset_2x2.splits.train
        )

    def test_missing_file_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("/nonexistent/path.npz")
