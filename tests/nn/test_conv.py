"""Tests for the 1-D convolution layers (Conv1d, Flatten, Reshape)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.conv import Conv1d, Flatten, Reshape
from repro.nn.gradcheck import gradcheck_module
from repro.nn.layers import LeakyReLU, Linear, Sequential


class TestConv1dForward:
    def test_same_padding_preserves_length(self):
        conv = Conv1d(3, 5, kernel_size=3, rng=0)
        out = conv.forward(np.random.default_rng(0).normal(size=(2, 3, 17)))
        assert out.shape == (2, 5, 17)

    def test_identity_kernel(self):
        """A centered delta kernel copies the input channel."""
        conv = Conv1d(1, 1, kernel_size=3, bias=False, rng=0)
        conv.weight.data[:] = 0.0
        conv.weight.data[0, 0, 1] = 1.0  # center tap
        x = np.arange(8.0).reshape(1, 1, 8)
        np.testing.assert_allclose(conv.forward(x), x)

    def test_shift_kernel(self):
        """An off-center delta shifts the sequence (zero boundary)."""
        conv = Conv1d(1, 1, kernel_size=3, bias=False, rng=0)
        conv.weight.data[:] = 0.0
        conv.weight.data[0, 0, 0] = 1.0  # tap at offset -1
        x = np.arange(1.0, 6.0).reshape(1, 1, 5)
        out = conv.forward(x)
        np.testing.assert_allclose(out[0, 0], [0.0, 1.0, 2.0, 3.0, 4.0])

    def test_matches_numpy_convolve(self):
        conv = Conv1d(1, 1, kernel_size=5, bias=False, rng=1)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 1, 20))
        expected = np.convolve(
            x[0, 0], conv.weight.data[0, 0][::-1], mode="same"
        )
        np.testing.assert_allclose(conv.forward(x)[0, 0], expected, atol=1e-12)

    def test_bias_added_per_channel(self):
        conv = Conv1d(2, 3, kernel_size=3, rng=0)
        conv.weight.data[:] = 0.0
        conv.bias.data[:] = [1.0, 2.0, 3.0]
        out = conv.forward(np.zeros((1, 2, 4)))
        np.testing.assert_allclose(out[0, :, 0], [1.0, 2.0, 3.0])

    def test_shape_validation(self):
        conv = Conv1d(2, 3)
        with pytest.raises(ShapeError):
            conv.forward(np.zeros((1, 4, 8)))
        with pytest.raises(ShapeError):
            conv.forward(np.zeros((4, 8)))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Conv1d(0, 2)
        with pytest.raises(ConfigurationError):
            Conv1d(2, 2, kernel_size=4)  # even kernels break same padding

    def test_macs(self):
        conv = Conv1d(4, 8, kernel_size=3)
        assert conv.macs(length=10) == 10 * 8 * 4 * 3


class TestConv1dGradients:
    def test_gradcheck_single_channel(self):
        assert gradcheck_module(Conv1d(1, 1, kernel_size=3, rng=0), (2, 1, 7))

    def test_gradcheck_multichannel(self):
        assert gradcheck_module(Conv1d(3, 2, kernel_size=5, rng=1), (2, 3, 9))

    def test_gradcheck_no_bias(self):
        assert gradcheck_module(
            Conv1d(2, 2, kernel_size=3, bias=False, rng=2), (1, 2, 6)
        )

    def test_gradcheck_inside_network(self):
        model = Sequential(
            [
                Conv1d(2, 4, kernel_size=3, rng=0),
                LeakyReLU(),
                Conv1d(4, 2, kernel_size=3, rng=1),
                Flatten(),
                Linear(2 * 6, 5, rng=2),
            ]
        )
        assert gradcheck_module(model, (2, 2, 6), rng=3)

    def test_backward_before_forward(self):
        with pytest.raises(ShapeError):
            Conv1d(1, 1).backward(np.zeros((1, 1, 4)))

    def test_backward_shape_check(self):
        conv = Conv1d(1, 2, rng=0)
        conv.forward(np.zeros((1, 1, 4)))
        with pytest.raises(ShapeError):
            conv.backward(np.zeros((1, 3, 4)))


class TestFlattenReshape:
    def test_flatten_roundtrip(self):
        x = np.random.default_rng(0).normal(size=(3, 2, 5))
        flatten = Flatten()
        flat = flatten.forward(x)
        assert flat.shape == (3, 10)
        np.testing.assert_array_equal(flatten.backward(flat), x)

    def test_reshape_inverse_of_flatten(self):
        x = np.random.default_rng(1).normal(size=(2, 12))
        reshape = Reshape((3, 4))
        shaped = reshape.forward(x)
        assert shaped.shape == (2, 3, 4)
        np.testing.assert_array_equal(reshape.backward(shaped), x)

    def test_reshape_validates_width(self):
        with pytest.raises(ShapeError):
            Reshape((3, 4)).forward(np.zeros((2, 11)))

    def test_reshape_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            Reshape((0, 4))

    def test_gradcheck_through_reshape_pipeline(self):
        model = Sequential(
            [Reshape((2, 6)), Conv1d(2, 2, rng=0), Flatten(), Linear(12, 3, rng=1)]
        )
        assert gradcheck_module(model, (2, 12), rng=4)

    def test_backward_before_forward(self):
        with pytest.raises(ShapeError):
            Flatten().backward(np.zeros((1, 4)))
        with pytest.raises(ShapeError):
            Reshape((2, 2)).backward(np.zeros((1, 2, 2)))
