"""Tests for LayerNorm/BatchNorm1d and early-stopping training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError, TrainingError
from repro.nn.gradcheck import gradcheck_module
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.nn.trainer import Trainer, TrainingConfig


class TestLayerNorm:
    def test_output_is_normalized(self):
        layer = LayerNorm(8)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8))
        y = layer.forward(x)
        np.testing.assert_allclose(y.mean(axis=1), 0.0, atol=1e-10)
        np.testing.assert_allclose(y.std(axis=1), 1.0, atol=1e-3)

    def test_affine_parameters_applied(self):
        layer = LayerNorm(4)
        layer.gamma.data[:] = 2.0
        layer.beta.data[:] = 1.0
        x = np.random.default_rng(1).normal(size=(3, 4))
        y = layer.forward(x)
        np.testing.assert_allclose(y.mean(axis=1), 1.0, atol=1e-10)

    def test_train_eval_identical(self):
        """LayerNorm statistics are per-row: no mode dependence."""
        layer = LayerNorm(6)
        x = np.random.default_rng(2).normal(size=(5, 6))
        train_out = layer.train().forward(x)
        eval_out = layer.eval().forward(x)
        np.testing.assert_array_equal(train_out, eval_out)

    def test_gradients_exact(self):
        assert gradcheck_module(LayerNorm(5), (4, 5), rng=3)

    def test_gradients_inside_network(self):
        model = Sequential(
            [Linear(6, 8, rng=0), LayerNorm(8), ReLU(), Linear(8, 3, rng=1)]
        )
        assert gradcheck_module(model, (3, 6), rng=4)

    def test_feature_mismatch(self):
        with pytest.raises(ShapeError):
            LayerNorm(4).forward(np.zeros((2, 5)))

    def test_backward_before_forward(self):
        with pytest.raises(ShapeError):
            LayerNorm(4).backward(np.zeros((2, 4)))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LayerNorm(0)
        with pytest.raises(ConfigurationError):
            LayerNorm(4, eps=0.0)


class TestBatchNorm1d:
    def test_training_normalizes_batch(self):
        layer = BatchNorm1d(3)
        x = np.random.default_rng(0).normal(10.0, 4.0, size=(64, 3))
        y = layer.forward(x)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_converge(self):
        layer = BatchNorm1d(2, momentum=0.5)
        rng = np.random.default_rng(1)
        for _ in range(50):
            layer.forward(rng.normal(5.0, 2.0, size=(128, 2)))
        np.testing.assert_allclose(layer.running_mean, 5.0, atol=0.3)
        np.testing.assert_allclose(layer.running_var, 4.0, atol=0.8)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm1d(2, momentum=1.0)
        layer.forward(np.array([[0.0, 0.0], [2.0, 4.0]]))  # mean (1, 2)
        layer.eval()
        y = layer.forward(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(y, 0.0, atol=1e-6)

    def test_eval_deterministic_single_sample(self):
        """Eval mode accepts batch size 1 (deployment case)."""
        layer = BatchNorm1d(4)
        layer.forward(np.random.default_rng(2).normal(size=(16, 4)))
        layer.eval()
        single = layer.forward(np.ones((1, 4)))
        assert single.shape == (1, 4)

    def test_training_rejects_single_sample(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(4).forward(np.ones((1, 4)))

    def test_gradients_exact_training_mode(self):
        layer = BatchNorm1d(5)
        layer.forward(np.random.default_rng(0).normal(size=(8, 5)))

        # gradcheck runs in eval mode by default; check training mode by
        # hand against finite differences on a fixed batch.
        from repro.nn.gradcheck import numerical_gradient
        from repro.nn.losses import MSELoss

        rng = np.random.default_rng(5)
        x = rng.normal(size=(6, 5))
        target = rng.normal(size=(6, 5))
        loss = MSELoss()
        fresh = BatchNorm1d(5, momentum=0.1)

        def scalar() -> float:
            probe = BatchNorm1d(5, momentum=0.1)
            probe.gamma.data = fresh.gamma.data
            probe.beta.data = fresh.beta.data
            return loss.forward(probe.forward(x), target)

        fresh.zero_grad()
        loss.forward(fresh.forward(x), target)
        grad_in = fresh.backward(loss.backward())
        numerical = numerical_gradient(scalar, x)
        np.testing.assert_allclose(grad_in, numerical, atol=1e-5)

    def test_gradients_exact_eval_mode(self):
        layer = BatchNorm1d(5)
        layer.forward(np.random.default_rng(0).normal(size=(8, 5)))
        assert gradcheck_module(layer, (4, 5), rng=6)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            BatchNorm1d(4, momentum=0.0)
        with pytest.raises(ConfigurationError):
            BatchNorm1d(4, eps=-1.0)


class TestEarlyStopping:
    def make_data(self, n=64, d=6, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, d))
        w = rng.normal(size=(d, d))
        y = x @ w
        return x, y

    def test_stops_when_no_improvement(self):
        x, y = self.make_data()
        # Validation targets unrelated to the inputs: the validation
        # metric cannot improve systematically, so patience must fire.
        rng = np.random.default_rng(9)
        val_x = rng.normal(size=(32, 6))
        val_y = rng.normal(size=(32, 6))
        model = Sequential([Linear(6, 6, rng=0)])
        config = TrainingConfig(
            epochs=200,
            batch_size=16,
            learning_rate=0.05,
            early_stop_patience=5,
        )
        history = Trainer(model, config=config).fit(x, y, val_x, val_y)
        assert history.stopped_early
        assert len(history) < 200

    def test_full_schedule_without_patience(self):
        x, y = self.make_data(n=32)
        model = Sequential([Linear(6, 6, rng=0)])
        config = TrainingConfig(epochs=5, early_stop_patience=None)
        history = Trainer(model, config=config).fit(x, y, x, y)
        assert not history.stopped_early
        assert len(history) == 5

    def test_no_validation_no_early_stop(self):
        x, y = self.make_data(n=32)
        model = Sequential([Linear(6, 6, rng=0)])
        config = TrainingConfig(epochs=4, early_stop_patience=1)
        history = Trainer(model, config=config).fit(x, y)
        assert len(history) == 4
        assert not history.stopped_early

    def test_best_weights_restored_after_stop(self):
        x, y = self.make_data()
        model = Sequential([Linear(6, 6, rng=0)])
        config = TrainingConfig(
            epochs=100, learning_rate=0.05, early_stop_patience=3
        )
        trainer = Trainer(model, config=config)
        history = trainer.fit(x, y, x, y)
        final = trainer._validation_loss(model, x, y)
        assert final == pytest.approx(history.best_val_metric, rel=1e-6)

    def test_invalid_patience(self):
        with pytest.raises(TrainingError):
            TrainingConfig(early_stop_patience=0)
