"""Tests for SGD/Adam and the learning-rate schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Linear, Sequential
from repro.nn.losses import MSELoss
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import ConstantLR, MultiStepLR, StepLR


def quadratic_descent(optimizer_factory, steps=200):
    """Minimize ||w - 3||^2 and return the final parameter."""
    param = Parameter(np.array([0.0]))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        param.grad += 2 * (param.data - 3.0)
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        final = quadratic_descent(lambda p: SGD(p, lr=0.1))
        assert final == pytest.approx(3.0, abs=1e-6)

    def test_momentum_converges(self):
        final = quadratic_descent(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert final == pytest.approx(3.0, abs=1e-4)

    def test_weight_decay_shrinks_solution(self):
        plain = quadratic_descent(lambda p: SGD(p, lr=0.1))
        decayed = quadratic_descent(lambda p: SGD(p, lr=0.1, weight_decay=1.0))
        assert decayed < plain

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_descent(lambda p: Adam(p, lr=0.1), steps=400)
        assert final == pytest.approx(3.0, abs=1e-3)

    def test_bias_correction_first_step(self):
        param = Parameter(np.array([0.0]))
        adam = Adam([param], lr=0.5)
        param.grad += np.array([1.0])
        adam.step()
        # With bias correction, the first step is ~lr * sign(grad).
        assert param.data[0] == pytest.approx(-0.5, rel=1e-6)

    def test_trains_linear_regression_better_than_init(self):
        # Local generator: the shared session fixture would make this
        # test's data (and its convergence) depend on execution order.
        local_rng = np.random.default_rng(42)
        model = Sequential([Linear(4, 1, rng=0)])
        x = local_rng.normal(size=(64, 4))
        y = x @ local_rng.normal(size=(4, 1))
        loss = MSELoss()
        adam = Adam(list(model.parameters()), lr=5e-2)
        first = loss(model.forward(x), y)
        for _ in range(600):
            adam.zero_grad()
            loss(model.forward(x), y)
            model.backward(loss.backward())
            adam.step()
        assert loss(model.forward(x), y) < first * 1e-3

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._optimizer())
        for _ in range(5):
            sched.step()
        assert sched.optimizer.lr == 1.0

    def test_step_lr(self):
        sched = StepLR(self._optimizer(), step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(sched.optimizer.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_multistep_paper_schedule(self):
        # The paper: lr/10 after epoch 20, lr/100 after epoch 30.
        sched = MultiStepLR(self._optimizer(), milestones=(20, 30), gamma=0.1)
        lr_by_epoch = {}
        for epoch in range(1, 41):
            sched.step()
            lr_by_epoch[epoch] = sched.optimizer.lr
        assert lr_by_epoch[19] == pytest.approx(1.0)
        assert lr_by_epoch[20] == pytest.approx(0.1)
        assert lr_by_epoch[29] == pytest.approx(0.1)
        assert lr_by_epoch[30] == pytest.approx(0.01)
        assert lr_by_epoch[40] == pytest.approx(0.01)

    def test_invalid_milestones(self):
        with pytest.raises(ConfigurationError):
            MultiStepLR(self._optimizer(), milestones=(0,))
