"""Tests for the training loop, serialization, and FLOP counting."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn.flops import count_flops, count_macs, count_parameters
from repro.nn.layers import Dropout, Linear, ReLU, Sequential, Tanh
from repro.nn.losses import NormalizedL1Loss
from repro.nn.serialize import load_state, load_state_dict, save_state, state_dict
from repro.nn.trainer import Trainer, TrainingConfig


def linear_task(rng, n=96, d=6):
    x = rng.normal(size=(n, d))
    y = x @ rng.normal(size=(d, d))
    return x, y


class TestTrainer:
    def test_loss_decreases(self, rng):
        x, y = linear_task(rng)
        model = Sequential([Linear(6, 8, rng=0), Tanh(), Linear(8, 6, rng=1)])
        trainer = Trainer(model, config=TrainingConfig(epochs=15, seed=0))
        history = trainer.fit(x, y)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_best_checkpoint_restored(self, rng):
        x, y = linear_task(rng)
        model = Sequential([Linear(6, 6, rng=0)])
        trainer = Trainer(model, config=TrainingConfig(epochs=8, seed=0))
        history = trainer.fit(x, y, x[:16], y[:16])
        # After fit, the model must score exactly the recorded best.
        restored = trainer.validation_metric(model, x[:16], y[:16])
        assert restored == pytest.approx(history.best_val_metric)
        assert 0 <= history.best_epoch < 8

    def test_history_lengths(self, rng):
        x, y = linear_task(rng)
        model = Sequential([Linear(6, 6, rng=0)])
        trainer = Trainer(model, config=TrainingConfig(epochs=5, seed=0))
        history = trainer.fit(x, y, x[:8], y[:8])
        assert len(history.train_loss) == 5
        assert len(history.val_metric) == 5
        assert len(history.learning_rate) == 5

    def test_lr_schedule_applied(self, rng):
        x, y = linear_task(rng)
        model = Sequential([Linear(6, 6, rng=0)])
        config = TrainingConfig(epochs=6, lr_milestones=(2, 4), seed=0)
        trainer = Trainer(model, config=config)
        history = trainer.fit(x, y)
        assert history.learning_rate[0] == pytest.approx(1e-3)
        assert history.learning_rate[-1] == pytest.approx(1e-5)

    def test_custom_validation_metric_drives_checkpoint(self, rng):
        x, y = linear_task(rng)
        model = Sequential([Linear(6, 6, rng=0)])
        calls = []

        def metric(m, xv, yv):
            calls.append(1)
            return float(len(calls))  # strictly increasing: epoch 0 is best

        trainer = Trainer(
            model,
            config=TrainingConfig(epochs=4, seed=0),
            validation_metric=metric,
        )
        history = trainer.fit(x, y, x[:8], y[:8])
        assert history.best_epoch == 0

    def test_mismatched_counts_raise(self, rng):
        model = Sequential([Linear(6, 6, rng=0)])
        with pytest.raises(TrainingError):
            Trainer(model).fit(np.zeros((4, 6)), np.zeros((5, 6)))

    def test_ragged_final_batch_weighted_by_sample_count(self, rng):
        # 21 samples at batch size 16 -> batches of 16 and 5.  The epoch
        # loss must be the sample-weighted mean of the (per-sample-mean)
        # batch losses, not the plain mean over batches — the old code
        # let the 5-sample tail count as much as the 16-sample head.
        x, y = linear_task(rng, n=21)

        class SpyLoss(NormalizedL1Loss):
            def __init__(self):
                super().__init__()
                self.batches = []  # (loss value, sample count)

            def forward(self, prediction, target):
                value = super().forward(prediction, target)
                self.batches.append((value, prediction.shape[0]))
                return value

        loss = SpyLoss()
        model = Sequential([Linear(6, 6, rng=0)])
        trainer = Trainer(
            model, loss=loss, config=TrainingConfig(epochs=1, seed=0)
        )
        history = trainer.fit(x, y)
        assert [count for _, count in loss.batches] == [16, 5]
        weighted = sum(v * n for v, n in loss.batches) / 21
        unweighted = sum(v for v, _ in loss.batches) / 2
        assert history.train_loss[0] == pytest.approx(weighted, rel=1e-12)
        assert history.train_loss[0] != pytest.approx(unweighted, rel=1e-6)

    def test_divisible_batches_match_plain_mean(self, rng):
        # With equal-sized batches the weighting is a no-op.
        x, y = linear_task(rng, n=32)

        class SpyLoss(NormalizedL1Loss):
            def __init__(self):
                super().__init__()
                self.values = []

            def forward(self, prediction, target):
                value = super().forward(prediction, target)
                self.values.append(value)
                return value

        loss = SpyLoss()
        model = Sequential([Linear(6, 6, rng=0)])
        trainer = Trainer(
            model, loss=loss, config=TrainingConfig(epochs=1, seed=0)
        )
        history = trainer.fit(x, y)
        assert history.train_loss[0] == pytest.approx(
            sum(loss.values) / len(loss.values), rel=1e-12
        )

    def test_half_provided_validation_split_raises(self, rng):
        # One of val_inputs/val_targets alone used to silently disable
        # validation (and checkpointing); now it is a loud error.
        x, y = linear_task(rng)
        model = Sequential([Linear(6, 6, rng=0)])
        trainer = Trainer(model, config=TrainingConfig(epochs=2, seed=0))
        with pytest.raises(TrainingError, match="together"):
            trainer.fit(x, y, val_inputs=x[:8])
        with pytest.raises(TrainingError, match="together"):
            trainer.fit(x, y, val_targets=y[:8])

    def test_mismatched_validation_counts_raise(self, rng):
        x, y = linear_task(rng)
        model = Sequential([Linear(6, 6, rng=0)])
        with pytest.raises(TrainingError, match="validation"):
            Trainer(model).fit(x, y, x[:8], y[:7])

    def test_validation_arrays_coerced_to_float64(self, rng):
        # Validation splits get the same float64 coercion as training
        # data, whatever the caller hands in.
        x, y = linear_task(rng)
        seen = []

        def metric(m, xv, yv):
            seen.append((xv.dtype, yv.dtype))
            return 0.0

        model = Sequential([Linear(6, 6, rng=0)])
        trainer = Trainer(
            model,
            config=TrainingConfig(epochs=1, seed=0),
            validation_metric=metric,
        )
        trainer.fit(
            x, y, x[:8].astype(np.float32), y[:8].astype(np.float32)
        )
        assert seen == [(np.dtype(np.float64), np.dtype(np.float64))]

    def test_deterministic_given_seed(self, rng):
        x, y = linear_task(rng)
        losses = []
        for _ in range(2):
            model = Sequential([Linear(6, 6, rng=0)])
            trainer = Trainer(model, config=TrainingConfig(epochs=3, seed=9))
            losses.append(trainer.fit(x, y).train_loss)
        assert losses[0] == losses[1]

    def test_invalid_config(self):
        with pytest.raises(TrainingError):
            TrainingConfig(epochs=0)
        with pytest.raises(TrainingError):
            TrainingConfig(optimizer="rmsprop")

    def test_predict_uses_eval_mode(self, rng):
        model = Sequential([Linear(6, 6, rng=0), Dropout(0.9, rng=0)])
        trainer = Trainer(model)
        x = rng.normal(size=(3, 6))
        a = trainer.predict(x)
        b = trainer.predict(x)
        assert np.array_equal(a, b)


class TestSerialization:
    def test_round_trip_in_memory(self, rng):
        model = Sequential([Linear(4, 3, rng=0), Tanh(), Linear(3, 4, rng=1)])
        snapshot = state_dict(model)
        for param in model.parameters():
            param.data[...] = 0.0
        load_state_dict(model, snapshot)
        x = rng.normal(size=(2, 4))
        model2 = Sequential([Linear(4, 3, rng=0), Tanh(), Linear(3, 4, rng=1)])
        load_state_dict(model2, snapshot)
        assert np.allclose(model.forward(x), model2.forward(x))

    def test_round_trip_on_disk(self, rng, tmp_path):
        model = Sequential([Linear(4, 4, rng=0)])
        path = str(tmp_path / "model.npz")
        save_state(model, path)
        other = Sequential([Linear(4, 4, rng=99)])
        load_state(other, path)
        x = rng.normal(size=(2, 4))
        assert np.allclose(model.forward(x), other.forward(x))

    def test_shape_mismatch_raises(self):
        model = Sequential([Linear(4, 4, rng=0)])
        snapshot = state_dict(model)
        other = Sequential([Linear(4, 5, rng=0)])
        with pytest.raises(ShapeError):
            load_state_dict(other, snapshot)

    def test_missing_tensor_raises(self):
        model = Sequential([Linear(4, 4, rng=0)])
        snapshot = state_dict(model)
        snapshot.pop(next(iter(snapshot)))
        with pytest.raises(ShapeError):
            load_state_dict(model, snapshot)


class TestFlops:
    def test_macs_sum_over_linears(self):
        model = Sequential([Linear(10, 4, rng=0), ReLU(), Linear(4, 10, rng=1)])
        assert count_macs(model) == 10 * 4 + 4 * 10

    def test_flops_include_bias_and_activation(self):
        model = Sequential([Linear(10, 4, rng=0), ReLU()])
        assert count_flops(model) == 2 * 40 + 4 + 4

    def test_flops_without_bias(self):
        model = Sequential([Linear(10, 4, bias=False, rng=0)])
        assert count_flops(model) == 2 * 40

    def test_parameters(self):
        model = Sequential([Linear(10, 4, rng=0)])
        assert count_parameters(model) == 10 * 4 + 4
