"""Regression tests: vectorized training stack vs the frozen references.

The contract this PR's vectorization pass makes (see
``repro.perf.reference``):

- fused SGD/Adam, the fused gradient clip, and the trainer's
  preallocated batch pipeline replay the loop implementations
  element-for-element — trained weights are **bit-identical**;
- the im2col convolution's *forward* is bit-identical to the frozen
  per-kernel-position loops; its *backward* contracts each gradient in
  one GEMM, which reorders floating-point reductions — gradients match
  the reference to reduction-order rounding (1e-12 relative).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.conv import Conv1d
from repro.nn.layers import Linear, Sequential, Tanh
from repro.nn.losses import NormalizedL1Loss
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.serialize import state_dict
from repro.nn.trainer import Trainer, TrainingConfig
from repro.perf.reference import (
    ReferenceAdam,
    ReferenceConv1d,
    ReferenceSGD,
    ReferenceTrainer,
    pin_reference_nn,
    reference_clip_gradients,
)


def _twin_models(seed=3, widths=(20, 8, 20), activation=Tanh):
    """Two structurally identical models with identical weights."""

    def build():
        rng = np.random.default_rng(seed)
        layers = []
        for i in range(len(widths) - 1):
            layers.append(
                Linear(widths[i], widths[i + 1], rng=int(rng.integers(2**31)))
            )
            if i < len(widths) - 2:
                layers.append(activation())
        return Sequential(layers)

    return build(), build()


def _assert_states_equal(model_a, model_b):
    state_a, state_b = state_dict(model_a), state_dict(model_b)
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key


class TestFusedOptimizerBitIdentity:
    """Fused flat-buffer updates replay the per-parameter loops exactly."""

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    @pytest.mark.parametrize("weight_decay", [0.0, 1e-3])
    def test_sgd_steps(self, momentum, weight_decay):
        model_a, model_b = _twin_models()
        opt_a = ReferenceSGD(
            list(model_a.parameters()),
            lr=0.05,
            momentum=momentum,
            weight_decay=weight_decay,
        )
        opt_b = SGD(
            list(model_b.parameters()),
            lr=0.05,
            momentum=momentum,
            weight_decay=weight_decay,
        )
        rng = np.random.default_rng(0)
        for _ in range(7):
            x = rng.standard_normal((5, 20))
            grad = rng.standard_normal((5, 20))
            for model, opt in ((model_a, opt_a), (model_b, opt_b)):
                opt.zero_grad()
                model.forward(x)
                model.backward(grad)
                opt.step()
            _assert_states_equal(model_a, model_b)

    @pytest.mark.parametrize("weight_decay", [0.0, 1e-2])
    def test_adam_steps(self, weight_decay):
        model_a, model_b = _twin_models(widths=(13, 7, 3, 13))
        opt_a = ReferenceAdam(
            list(model_a.parameters()), lr=1e-2, weight_decay=weight_decay
        )
        opt_b = Adam(
            list(model_b.parameters()), lr=1e-2, weight_decay=weight_decay
        )
        rng = np.random.default_rng(1)
        for _ in range(9):
            x = rng.standard_normal((4, 13))
            grad = rng.standard_normal((4, 13))
            for model, opt in ((model_a, opt_a), (model_b, opt_b)):
                opt.zero_grad()
                model.forward(x)
                model.backward(grad)
                opt.step()
            _assert_states_equal(model_a, model_b)

    def test_clip_interaction(self):
        """Fused clip + fused step == loop clip + loop step, bit for bit."""
        model_a, model_b = _twin_models(widths=(16, 5, 16))
        opt_a = ReferenceAdam(list(model_a.parameters()), lr=5e-2)
        opt_b = Adam(list(model_b.parameters()), lr=5e-2)
        rng = np.random.default_rng(2)
        limit = 0.05  # tight enough that every step actually clips
        for _ in range(6):
            x = rng.standard_normal((6, 16))
            grad = rng.standard_normal((6, 16))
            opt_a.zero_grad()
            model_a.forward(x)
            model_a.backward(grad)
            reference_clip_gradients(model_a, limit)
            opt_a.step()
            opt_b.zero_grad()
            model_b.forward(x)
            model_b.backward(grad)
            opt_b.clip_global_norm(limit)
            opt_b.step()
            params_a = list(model_a.parameters())
            params_b = list(model_b.parameters())
            for pa, pb in zip(params_a, params_b):
                assert np.array_equal(pa.grad, pb.grad)
            _assert_states_equal(model_a, model_b)

    def test_clip_below_limit_is_noop(self):
        param = Parameter(np.zeros(4))
        opt = SGD([param], lr=0.1)
        param.grad += np.array([0.3, 0.0, -0.4, 0.0])
        norm = opt.clip_global_norm(10.0)
        assert norm == pytest.approx(0.5)
        assert np.array_equal(param.grad, [0.3, 0.0, -0.4, 0.0])

    def test_packing_aliases_parameters(self):
        """Layers keep writing the same arrays the optimizer updates."""
        param = Parameter(np.arange(6.0).reshape(2, 3))
        opt = SGD([param], lr=1.0)
        param.grad += 1.0  # through the re-pointed view
        opt.step()
        np.testing.assert_allclose(
            param.data, np.arange(6.0).reshape(2, 3) - 1.0
        )
        opt.zero_grad()
        assert np.array_equal(param.grad, np.zeros((2, 3)))


class TestTrainerBitIdentity:
    """Full fits (shuffle, ragged batches, validation, clip) match."""

    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_fit_bit_identical(self, optimizer):
        rng = np.random.default_rng(11)
        inputs = rng.standard_normal((37, 20))  # ragged: 37 % 8 != 0
        targets = rng.standard_normal((37, 20)) * 0.1
        val_in = rng.standard_normal((9, 20))
        val_out = rng.standard_normal((9, 20)) * 0.1
        config = TrainingConfig(
            epochs=4,
            batch_size=8,
            optimizer=optimizer,
            max_grad_norm=0.2,  # low enough to clip on real batches
            seed=5,
        )
        model_a, model_b = _twin_models(widths=(20, 6, 20))
        hist_a = ReferenceTrainer(model_a, config=config).fit(
            inputs, targets, val_in, val_out
        )
        hist_b = Trainer(model_b, config=config).fit(
            inputs, targets, val_in, val_out
        )
        assert hist_a.train_loss == hist_b.train_loss
        assert hist_a.val_metric == hist_b.val_metric
        assert hist_a.best_epoch == hist_b.best_epoch
        _assert_states_equal(model_a, model_b)

    def test_no_shuffle_uses_views_and_matches(self):
        rng = np.random.default_rng(3)
        inputs = rng.standard_normal((24, 20))
        targets = rng.standard_normal((24, 20)) * 0.1
        config = TrainingConfig(
            epochs=2, batch_size=8, optimizer="sgd", shuffle=False, seed=0
        )
        model_a, model_b = _twin_models(widths=(20, 4, 20))
        ReferenceTrainer(model_a, config=config).fit(inputs, targets)
        Trainer(model_b, config=config).fit(inputs, targets)
        _assert_states_equal(model_a, model_b)


def _reference_conv_twin(*args, **kwargs):
    conv = Conv1d(*args, **kwargs)
    twin = Conv1d(*args, **kwargs)
    twin.__class__ = ReferenceConv1d
    return conv, twin


class TestConvIm2colEquivalence:
    """Strided im2col vs the frozen per-kernel-position loops."""

    @pytest.mark.parametrize(
        "channels,kernel,length,batch",
        [(1, 3, 7, 2), (3, 5, 12, 4), (2, 7, 9, 1), (4, 1, 6, 3)],
    )
    def test_forward_bit_identical(self, channels, kernel, length, batch):
        conv, twin = _reference_conv_twin(channels, 5, kernel, rng=0)
        x = np.random.default_rng(1).standard_normal(
            (batch, channels, length)
        )
        assert np.array_equal(conv.forward(x), twin.forward(x))

    def test_forward_bit_identical_across_batch_shapes(self):
        """Scratch buffers re-key per shape without corrupting results."""
        conv, twin = _reference_conv_twin(3, 4, 5, rng=2)
        rng = np.random.default_rng(3)
        for batch, length in [(8, 11), (3, 11), (8, 11), (5, 20)]:
            x = rng.standard_normal((batch, 3, length))
            assert np.array_equal(conv.forward(x), twin.forward(x))

    def test_padding_zero_skips_padding(self):
        """kernel_size=1 (padding 0) takes the pad-free path and matches."""
        conv, twin = _reference_conv_twin(2, 3, 1, rng=4)
        x = np.random.default_rng(5).standard_normal((4, 2, 9))
        out = conv.forward(x)
        assert np.array_equal(out, twin.forward(x))
        # The pad-free scratch is the (batch, L, C) columns alone.
        ((_, buffers),) = conv._scratch.items()
        assert isinstance(buffers, np.ndarray)
        assert buffers.shape == (4, 9, 2)

    @pytest.mark.parametrize(
        "channels,out_channels,kernel,length,batch",
        [(1, 1, 3, 7, 2), (3, 4, 5, 12, 4), (2, 5, 1, 6, 3)],
    )
    def test_backward_matches_reference_to_rounding(
        self, channels, out_channels, kernel, length, batch
    ):
        conv, twin = _reference_conv_twin(channels, out_channels, kernel, rng=6)
        rng = np.random.default_rng(7)
        x = rng.standard_normal((batch, channels, length))
        grad = rng.standard_normal((batch, out_channels, length))
        conv.forward(x)
        twin.forward(x)
        grad_in = conv.backward(grad)
        grad_in_ref = twin.backward(grad)
        np.testing.assert_allclose(grad_in, grad_in_ref, rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(
            conv.weight.grad, twin.weight.grad, rtol=1e-12, atol=1e-13
        )
        np.testing.assert_allclose(
            conv.bias.grad, twin.bias.grad, rtol=1e-12, atol=1e-13
        )

    def test_forward_output_is_caller_owned(self):
        """Repeated forwards must not overwrite previously returned arrays."""
        conv = Conv1d(2, 3, 3, rng=8)
        rng = np.random.default_rng(9)
        x1 = rng.standard_normal((2, 2, 6))
        x2 = rng.standard_normal((2, 2, 6))
        out1 = conv.forward(x1)
        snapshot = out1.copy()
        conv.forward(x2)
        assert np.array_equal(out1, snapshot)

    def test_pickle_drops_scratch_and_gradients(self):
        import pickle

        conv = Conv1d(3, 4, 5, rng=1)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 3, 11))
        expected = conv.forward(x)
        conv.backward(rng.standard_normal((4, 4, 11)))
        assert conv._scratch
        assert np.any(conv.weight.grad != 0.0)
        clone = pickle.loads(pickle.dumps(conv))
        assert clone._scratch == {}
        assert clone._cached_columns is None
        # Gradients are scratch, not model state: the clone starts clean.
        assert np.array_equal(clone.weight.grad, np.zeros_like(conv.weight.grad))
        assert np.array_equal(clone.forward(x), expected)

    def test_pickle_bytes_independent_of_gradients(self):
        """Equal weights hash equal regardless of training leftovers."""
        import pickle

        conv_a = Conv1d(2, 2, 3, rng=5)
        conv_b = Conv1d(2, 2, 3, rng=5)
        rng = np.random.default_rng(6)
        conv_b.forward(rng.standard_normal((3, 2, 8)))
        conv_b.backward(rng.standard_normal((3, 2, 8)))
        assert pickle.dumps(conv_a) == pickle.dumps(conv_b)


class TestPinReferenceNn:
    def test_pins_known_layers(self):
        model = Sequential(
            [Linear(6, 4, rng=0), Tanh(), Conv1d(1, 1, 3, rng=1)]
        )
        pin_reference_nn(model)
        names = [type(layer).__name__ for layer in model.layers]
        assert names == ["ReferenceLinear", "ReferenceTanh", "ReferenceConv1d"]

    def test_loss_caching_matches_reference(self):
        from repro.perf.reference import ReferenceNormalizedL1Loss

        rng = np.random.default_rng(0)
        prediction = rng.standard_normal((5, 7))
        target = rng.standard_normal((5, 7))
        live, frozen = NormalizedL1Loss(), ReferenceNormalizedL1Loss()
        assert live.forward(prediction, target) == frozen.forward(
            prediction, target
        )
        assert np.array_equal(live.backward(), frozen.backward())
