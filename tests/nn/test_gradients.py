"""Property-based gradient verification for every layer and loss.

These tests are the correctness foundation of the whole training
substrate: they compare analytic backward passes against central finite
differences on random shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.gradcheck import gradcheck_loss, gradcheck_module
from repro.nn.layers import (
    Dropout,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import MAELoss, MSELoss, NormalizedL1Loss

dims = st.integers(min_value=1, max_value=7)


@given(batch=dims, n_in=dims, n_out=dims)
@settings(max_examples=15)
def test_linear_gradients(batch, n_in, n_out):
    assert gradcheck_module(Linear(n_in, n_out, rng=0), (batch, n_in))


@given(batch=dims, n_in=dims)
@settings(max_examples=10)
def test_linear_no_bias_gradients(batch, n_in):
    assert gradcheck_module(Linear(n_in, 3, bias=False, rng=1), (batch, n_in))


@pytest.mark.parametrize(
    "layer_factory",
    [
        lambda: Sequential([Linear(4, 3, rng=0), Tanh(), Linear(3, 4, rng=1)]),
        lambda: Sequential([Linear(4, 3, rng=0), Sigmoid(), Linear(3, 2, rng=1)]),
        lambda: Sequential(
            [Linear(4, 4, rng=0), LeakyReLU(0.05), Linear(4, 4, rng=1)]
        ),
        lambda: Sequential(
            [Linear(5, 4, rng=0), Tanh(), Linear(4, 3, rng=1), Tanh(),
             Linear(3, 5, rng=2)]
        ),
    ],
)
def test_deep_network_gradients(layer_factory):
    assert gradcheck_module(layer_factory(), (3, layer_factory()[0].in_features))


def test_relu_gradients_away_from_kink(rng):
    # ReLU's kink at 0 breaks finite differences; keep inputs away from it.
    model = Sequential([Linear(4, 4, rng=3), ReLU(), Linear(4, 4, rng=4)])
    # Use a fixed, kink-free input by shifting the bias strongly positive.
    model[0].bias.data += 2.0
    assert gradcheck_module(model, (2, 4), rng=5)


def test_dropout_eval_gradients():
    model = Sequential([Linear(4, 4, rng=0), Dropout(0.5, rng=0), Tanh()])
    # gradcheck runs the module in eval mode, making dropout deterministic.
    assert gradcheck_module(model, (2, 4))


@pytest.mark.parametrize(
    "loss",
    [MSELoss(), MAELoss(), NormalizedL1Loss(epsilon=0.2)],
    ids=["mse", "mae", "normalized-l1"],
)
@pytest.mark.parametrize("shape", [(6,), (4, 5)])
def test_loss_gradients(loss, shape):
    assert gradcheck_loss(loss, shape, rng=7)
