"""Tests for Linear, activations, Dropout, and Sequential."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(3, 2, rng=0)
        layer.weight.data = np.arange(6, dtype=float).reshape(3, 2)
        layer.bias.data = np.array([1.0, -1.0])
        out = layer.forward(np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(out, [[1.0, 0.0]])

    def test_1d_input_promoted_to_batch(self):
        layer = Linear(3, 2, rng=0)
        assert layer.forward(np.zeros(3)).shape == (1, 2)

    def test_wrong_width_raises(self):
        layer = Linear(3, 2, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 4)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(ShapeError):
            Linear(3, 2, rng=0).backward(np.zeros((1, 2)))

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        layer.forward(np.ones((2, 3)))
        layer.backward(np.ones((2, 2)))  # must not crash

    def test_gradients_accumulate(self):
        layer = Linear(2, 2, rng=0)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        assert np.allclose(layer.weight.grad, 2 * first)

    def test_macs(self):
        assert Linear(3, 5, rng=0).macs() == 15
        assert Linear(3, 5, rng=0).macs(batch=4) == 60

    def test_invalid_dims_raise(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 2)


@pytest.mark.parametrize(
    "activation,point,expected",
    [
        (ReLU(), -1.0, 0.0),
        (ReLU(), 2.0, 2.0),
        (LeakyReLU(0.1), -1.0, -0.1),
        (Tanh(), 0.0, 0.0),
        (Sigmoid(), 0.0, 0.5),
        (Identity(), 3.5, 3.5),
    ],
)
def test_activation_values(activation, point, expected):
    out = activation.forward(np.array([point]))
    assert out[0] == pytest.approx(expected)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = rng.normal(size=(4, 8))
        assert np.array_equal(layer.forward(x), x)

    def test_train_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((200, 50))
        out = layer.forward(x)
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        frac = kept.size / out.size
        assert 0.4 < frac < 0.6

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((10, 10))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad == 0, out == 0)

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestSequential:
    def test_chains_layers(self):
        model = Sequential([Linear(2, 3, rng=0), ReLU(), Linear(3, 1, rng=1)])
        out = model.forward(np.zeros((4, 2)))
        assert out.shape == (4, 1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_len_and_getitem(self):
        model = Sequential([Linear(2, 2, rng=0), ReLU()])
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_slice_shares_parameters(self):
        model = Sequential([Linear(2, 3, rng=0), ReLU(), Linear(3, 2, rng=1)])
        head = model.slice(0, 1)
        head[0].weight.data[...] = 7.0
        assert np.all(model[0].weight.data == 7.0)

    def test_train_eval_propagates(self):
        model = Sequential([Linear(2, 2, rng=0), Dropout(0.5, rng=0)])
        model.eval()
        assert not model[1].training
        model.train()
        assert model[1].training

    def test_parameter_count(self):
        model = Sequential([Linear(2, 3, rng=0), Linear(3, 2, rng=0)])
        assert model.num_parameters() == (2 * 3 + 3) + (3 * 2 + 2)
