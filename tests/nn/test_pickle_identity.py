"""Pickled bytes must not change when a forward pass runs.

Models travel through ``PayloadStore``/IPC content-addressed by their
pickled bytes: if a forward pass mutates what ``pickle.dumps`` sees,
the same weights hash to different payload digests before and after
inference, silently breaking dedupe and cache hits.  ``REP-GETSTATE-CACHE``
enforces this statically; these tests enforce it empirically for every
layer type in ``repro.nn``.

Layers with *legitimate* forward-time state are pinned in eval mode:
``BatchNorm1d`` updates running moments during training and ``Dropout``
advances its generator — that is real state, not cache leakage.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Conv1d,
    Dropout,
    Flatten,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Reshape,
    Sequential,
    Sigmoid,
    Tanh,
)

BATCH = np.linspace(-1.0, 1.0, 4 * 6).reshape(4, 6)
CONV_BATCH = np.linspace(-1.0, 1.0, 4 * 3 * 8).reshape(4, 3, 8)


def flat_layers():
    return [
        Linear(6, 5, rng=0),
        ReLU(),
        LeakyReLU(),
        Tanh(),
        Sigmoid(),
        Identity(),
        LayerNorm(6),
        Flatten(),
        Sequential([Linear(6, 4, rng=1), ReLU(), LayerNorm(4)]),
    ]


def make_cases():
    cases = [(layer, BATCH, False) for layer in flat_layers()]
    cases += [
        # Train-mode batch statistics and dropout rng draws are real
        # state; eval mode must be byte-stable.
        (BatchNorm1d(6), BATCH, True),
        (Dropout(0.5, rng=0), BATCH, True),
        (Conv1d(3, 4, 3, rng=0), CONV_BATCH, False),
        (Reshape((3, 2)), BATCH, False),
    ]
    return cases


@pytest.mark.parametrize(
    "layer, batch, eval_only",
    make_cases(),
    ids=lambda value: type(value).__name__ if hasattr(value, "forward") else None,
)
def test_forward_pass_keeps_pickled_bytes_identical(layer, batch, eval_only):
    layer.eval()
    before = pickle.dumps(layer)
    if not eval_only:
        layer.train()
    out = layer.forward(batch)
    assert np.all(np.isfinite(out))
    layer.eval()
    after = pickle.dumps(layer)
    assert after == before, (
        f"{type(layer).__name__}: pickled bytes changed after a forward "
        f"pass ({len(before)} -> {len(after)} bytes); a transient cache "
        "is leaking through __getstate__"
    )


def test_backward_pass_state_is_not_pickled_either():
    layer = LayerNorm(6)
    layer.eval()
    before = pickle.dumps(layer)
    out = layer.forward(BATCH)
    layer.backward(np.ones_like(out))
    layer.zero_grad()
    assert pickle.dumps(layer) == before


def test_pickle_roundtrip_restores_forward_behaviour():
    layer = Sequential([Linear(6, 4, rng=2), Tanh(), LayerNorm(4)])
    layer.eval()
    expected = layer.forward(BATCH)
    clone = pickle.loads(pickle.dumps(layer))
    np.testing.assert_array_equal(clone.forward(BATCH), expected)
