"""Tests for the loss functions, including the Eq. (8) normalized L1."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.losses import MAELoss, MSELoss, NormalizedL1Loss


class TestMSE:
    def test_zero_at_perfect_prediction(self, rng):
        y = rng.normal(size=(4, 3))
        assert MSELoss()(y, y) == 0.0

    def test_known_value(self):
        loss = MSELoss()
        assert loss(np.array([2.0, 0.0]), np.array([0.0, 0.0])) == pytest.approx(2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            MSELoss()(np.zeros(3), np.zeros(4))

    def test_backward_before_forward_raises(self):
        with pytest.raises(ShapeError):
            MSELoss().backward()


class TestMAE:
    def test_known_value(self):
        assert MAELoss()(np.array([1.0, -1.0]), np.zeros(2)) == pytest.approx(1.0)


class TestNormalizedL1:
    def test_zero_at_perfect_prediction(self, rng):
        y = rng.normal(size=(4, 3)) + 0.5
        assert NormalizedL1Loss()(y, y) == 0.0

    def test_normalization_by_target_magnitude(self):
        loss = NormalizedL1Loss(epsilon=1e-6)
        # same absolute error, smaller target -> larger loss
        small_target = loss(np.array([[0.6]]), np.array([[0.5]]))
        large_target = loss(np.array([[2.1]]), np.array([[2.0]]))
        assert small_target > large_target

    def test_batch_mean_feature_sum(self):
        loss = NormalizedL1Loss(epsilon=1e-9)
        pred = np.array([[2.0, 2.0]])
        target = np.array([[1.0, 1.0]])
        # sum over features: (1/1) + (1/1) = 2, batch of 1
        assert loss(pred, target) == pytest.approx(2.0)

    def test_batch_averaging(self):
        loss = NormalizedL1Loss(epsilon=1e-9)
        pred = np.array([[2.0], [2.0]])
        target = np.array([[1.0], [1.0]])
        assert loss(pred, target) == pytest.approx(1.0)

    def test_sign_of_target_irrelevant(self):
        loss = NormalizedL1Loss(epsilon=1e-9)
        a = loss(np.array([[0.5]]), np.array([[-1.0]]))
        b = loss(np.array([[-0.5]]), np.array([[1.0]]))
        assert a == pytest.approx(b)

    def test_epsilon_floors_denominator(self):
        loss = NormalizedL1Loss(epsilon=0.5)
        value = loss(np.array([[1.0]]), np.array([[0.0]]))
        assert value == pytest.approx(1.0 / 0.5)

    def test_invalid_epsilon(self):
        with pytest.raises(ShapeError):
            NormalizedL1Loss(epsilon=0.0)
