"""Crash-safety tests for atomic JSON writes (artifacts + cache puts).

A writer killed between "temp file written" and "rename" must never
leave a truncated or half-visible file: readers see either the old
bytes or nothing, and the stale-temp sweeper reclaims the orphan once
its writer is provably dead.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.runtime import cache as cache_mod
from repro.runtime.cache import (
    STALE_TMP_GRACE_S,
    ResultCache,
    sweep_stale_tmp,
)
from repro.utils.artifacts import write_json_artifact


class _CrashBeforeRename:
    """Make ``os.replace`` die for one destination — a mid-write kill."""

    def __init__(self, monkeypatch, target):
        self.target = str(target)
        real = os.replace

        def replace(src, dst, *args, **kwargs):
            if str(dst) == self.target:
                raise RuntimeError("simulated crash before rename")
            return real(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", replace)


class TestWriteJsonArtifact:
    def test_writes_canonical_bytes(self, tmp_path):
        path = tmp_path / "nested" / "run.json"
        write_json_artifact(path, {"b": 2, "a": 1})
        assert path.read_text() == '{\n  "a": 1,\n  "b": 2\n}\n'

    def test_rejects_empty_path(self):
        with pytest.raises(ConfigurationError):
            write_json_artifact("", {})

    def test_crash_mid_write_leaves_no_partial_artifact(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.json"
        write_json_artifact(path, {"epoch": 1})
        _CrashBeforeRename(monkeypatch, path)
        with pytest.raises(RuntimeError, match="simulated crash"):
            write_json_artifact(path, {"epoch": 2})
        # The visible artifact still carries the old, complete bytes.
        assert json.loads(path.read_text()) == {"epoch": 1}
        leftovers = list(tmp_path.glob("*.tmp.*"))
        assert len(leftovers) == 1
        assert leftovers[0].name == f"run.json.tmp.{os.getpid()}"
        # The orphan itself is complete JSON (the crash was the rename).
        assert json.loads(leftovers[0].read_text()) == {"epoch": 2}

    def test_sweeper_reclaims_dead_writers_orphan(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.json"
        _CrashBeforeRename(monkeypatch, path)
        with pytest.raises(RuntimeError):
            write_json_artifact(path, {"epoch": 1})
        (orphan,) = tmp_path.glob("*.tmp.*")
        # Young + live-pid orphans are never swept (writer may be mid-put).
        assert sweep_stale_tmp(tmp_path) == 0
        # Age it past the grace window and declare the writer dead.
        old = orphan.stat().st_mtime - (STALE_TMP_GRACE_S + 60)
        os.utime(orphan, (old, old))
        monkeypatch.setattr(cache_mod, "_tmp_writer_alive", lambda p: False)
        assert sweep_stale_tmp(tmp_path) == 1
        assert not orphan.exists()


def _truncate_last_record(segment, before_size) -> None:
    """Cut the record appended after ``before_size`` in half — exactly
    the bytes a writer killed mid-``write`` leaves behind."""
    size = segment.stat().st_size
    assert size > before_size
    with open(segment, "r+b") as handle:
        handle.truncate(before_size + (size - before_size) // 2)


class TestResultCachePutCrash:
    def test_crash_mid_put_is_a_clean_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        segment = cache.put("k1", {"spec": 1}, {"ber": 0.5})
        _truncate_last_record(segment, 0)
        # The restarted process truncates the torn tail on open:
        # no entry, no quarantine, just a miss.
        reopened = ResultCache(tmp_path)
        assert reopened.get("k1") is None
        assert reopened.health.quarantined == 0
        assert reopened.health.truncated == 1
        assert reopened.keys() == []

    def test_crash_mid_put_does_not_clobber_old_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        segment = cache.put("k1", {"spec": 1}, {"ber": 0.5})
        committed = segment.stat().st_size
        cache.put("k1", {"spec": 1}, {"ber": 0.25})
        _truncate_last_record(segment, committed)
        reopened = ResultCache(tmp_path)
        assert reopened.get("k1") == {"ber": 0.5}
        assert reopened.health.truncated == 1

    def test_retry_after_crash_succeeds(self, tmp_path):
        cache = ResultCache(tmp_path)
        segment = cache.put("k1", {"spec": 1}, {"ber": 0.5})
        _truncate_last_record(segment, 0)
        reopened = ResultCache(tmp_path)  # writer restarts
        assert reopened.get("k1") is None
        reopened.put("k1", {"spec": 1}, {"ber": 0.5})
        assert reopened.get("k1") == {"ber": 0.5}
        # And the repaired store round-trips through yet another open.
        assert ResultCache(tmp_path).get("k1") == {"ber": 0.5}
