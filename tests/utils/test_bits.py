"""Tests for the MSB-first bit stream codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FeedbackError
from repro.utils.bits import BitReader, BitWriter, bits_to_bytes, bytes_to_bits


class TestBitsToBytes:
    def test_exact_octets(self):
        assert bits_to_bytes(0) == 0
        assert bits_to_bytes(8) == 1
        assert bits_to_bytes(16) == 2

    def test_partial_octet_rounds_up(self):
        assert bits_to_bytes(1) == 1
        assert bits_to_bytes(9) == 2
        assert bits_to_bytes(15) == 2

    def test_negative_rejected(self):
        with pytest.raises(FeedbackError):
            bits_to_bytes(-1)


class TestBitWriter:
    def test_single_byte_msb_first(self):
        writer = BitWriter()
        writer.write(0b1011, 4)
        writer.write(0b0010, 4)
        assert writer.getvalue() == bytes([0b10110010])

    def test_padding_zero_fills(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        assert writer.getvalue() == bytes([0b10100000])

    def test_empty_writer(self):
        assert BitWriter().getvalue() == b""
        assert BitWriter().bit_length == 0

    def test_bit_length_tracks_width(self):
        writer = BitWriter()
        writer.write(1, 7)
        writer.write(1, 9)
        assert writer.bit_length == 16

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(FeedbackError):
            writer.write(4, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(FeedbackError):
            writer.write(-1, 4)

    def test_bad_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(FeedbackError):
            writer.write(0, 0)
        with pytest.raises(FeedbackError):
            writer.write(0, 65)

    def test_write_array_matches_scalar_writes(self):
        values = [3, 1, 7, 0, 5]
        array_writer = BitWriter()
        array_writer.write_array(np.array(values), 3)
        scalar_writer = BitWriter()
        for v in values:
            scalar_writer.write(v, 3)
        assert array_writer.getvalue() == scalar_writer.getvalue()

    def test_write_array_empty_is_noop(self):
        writer = BitWriter()
        writer.write_array(np.array([], dtype=np.int64), 5)
        assert writer.bit_length == 0

    def test_write_array_range_check(self):
        writer = BitWriter()
        with pytest.raises(FeedbackError):
            writer.write_array(np.array([0, 8]), 3)


class TestBitReader:
    def test_reads_back_fields(self):
        writer = BitWriter()
        writer.write(0x5A, 8)
        writer.write(3, 2)
        writer.write(511, 9)
        reader = BitReader(writer.getvalue())
        assert reader.read(8) == 0x5A
        assert reader.read(2) == 3
        assert reader.read(9) == 511

    def test_exhaustion_raises(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(FeedbackError):
            reader.read(1)

    def test_read_array(self):
        writer = BitWriter()
        writer.write_array(np.array([1, 2, 3, 4]), 5)
        reader = BitReader(writer.getvalue())
        np.testing.assert_array_equal(reader.read_array(4, 5), [1, 2, 3, 4])

    def test_read_array_exhaustion(self):
        reader = BitReader(b"\x00")
        with pytest.raises(FeedbackError):
            reader.read_array(3, 5)

    def test_align_to_byte(self):
        writer = BitWriter()
        writer.write(1, 3)
        writer.write(0xAB, 8)
        data = writer.getvalue()
        reader = BitReader(data)
        reader.read(3)
        reader.align_to_byte()
        # After aligning we are at bit 8; the remaining bits start with
        # the tail of 0xAB shifted by the 3-bit prefix, so re-read raw.
        assert reader.bits_remaining == len(data) * 8 - 8

    def test_bytes_to_bits_msb_first(self):
        np.testing.assert_array_equal(
            bytes_to_bits(bytes([0b10000001])), [1, 0, 0, 0, 0, 0, 0, 1]
        )


class TestRoundTripProperties:
    @given(
        fields=st.lists(
            st.integers(min_value=1, max_value=24).flatmap(
                lambda w: st.tuples(
                    st.just(w), st.integers(min_value=0, max_value=(1 << w) - 1)
                )
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_heterogeneous_roundtrip(self, fields):
        writer = BitWriter()
        for width, value in fields:
            writer.write(value, width)
        reader = BitReader(writer.getvalue())
        for width, value in fields:
            assert reader.read(width) == value

    @given(
        width=st.integers(min_value=1, max_value=16),
        count=st.integers(min_value=0, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_array_roundtrip(self, width, count, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << width, size=count)
        writer = BitWriter()
        writer.write_array(values, width)
        reader = BitReader(writer.getvalue())
        np.testing.assert_array_equal(reader.read_array(count, width), values)

    @given(
        payload=st.binary(min_size=0, max_size=64),
    )
    def test_bytes_bits_inverse(self, payload):
        bits = bytes_to_bits(payload)
        assert np.packbits(bits).tobytes() == payload


class TestRawBitBlocks:
    """write_bits/read_bits, the whole-report packing path."""

    def test_roundtrip_against_field_writes(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 1 << 7, size=50)
        by_field = BitWriter()
        for value in values:
            by_field.write(int(value), 7)
        shifts = np.arange(6, -1, -1)
        bits = ((values[:, None] >> shifts) & 1).astype(np.uint8).reshape(-1)
        by_block = BitWriter()
        by_block.write_bits(bits)
        assert by_block.getvalue() == by_field.getvalue()
        reader = BitReader(by_block.getvalue())
        np.testing.assert_array_equal(reader.read_bits(bits.size), bits)

    def test_rejects_non_binary_values(self):
        writer = BitWriter()
        with pytest.raises(FeedbackError):
            writer.write_bits(np.array([0, 1, 2]))
        with pytest.raises(FeedbackError):
            writer.write_bits(np.array([0.5, 0.9]))  # silent truncation trap
        with pytest.raises(FeedbackError):
            writer.write_bits(np.array([-1, 0]))

    def test_empty_block_is_noop(self):
        writer = BitWriter()
        writer.write_bits(np.array([], dtype=np.uint8))
        assert writer.bit_length == 0
        assert writer.getvalue() == b""

    def test_buffer_growth_preserves_contents(self):
        writer = BitWriter(capacity=8)
        pattern = np.tile(np.array([1, 0, 1, 1], dtype=np.uint8), 100)
        writer.write_bits(pattern)
        reader = BitReader(writer.getvalue())
        np.testing.assert_array_equal(reader.read_bits(pattern.size), pattern)
