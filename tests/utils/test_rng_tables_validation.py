"""Tests for RNG helpers, table rendering, and argument validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.utils.rng import RngMixin, as_generator, spawn
from repro.utils.tables import format_cell, render_table
from repro.utils.validation import (
    check_in_range,
    check_member,
    check_positive,
    check_shape,
)


class TestRng:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_children_are_independent_and_deterministic(self):
        kids_a = spawn(as_generator(1), 3)
        kids_b = spawn(as_generator(1), 3)
        for ka, kb in zip(kids_a, kids_b):
            assert np.array_equal(ka.random(4), kb.random(4))
        draws = [k.random() for k in spawn(as_generator(2), 4)]
        assert len(set(draws)) == 4

    def test_mixin(self):
        class Thing(RngMixin):
            pass

        thing = Thing(seed=3)
        first = thing.rng.random()
        thing.reseed(3)
        assert thing.rng.random() == first


class TestTables:
    def test_renders_aligned_columns(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line}) <= 2
        assert "xyz" in text

    def test_title_and_separator(self):
        text = render_table(["col"], [[1]], title="My Table")
        assert text.startswith("My Table")
        assert "=" in text.splitlines()[1]

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_format_cell_small_floats_use_scientific(self):
        assert "e" in format_cell(1.5e-7) or "E" in format_cell(1.5e-7)

    def test_format_cell_zero(self):
        assert format_cell(0.0) == "0"

    def test_format_cell_bool_not_float(self):
        assert format_cell(True) == "True"


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        with pytest.raises(ConfigurationError):
            check_positive("x", 0.0)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.5, 0, 1)
        with pytest.raises(ConfigurationError):
            check_in_range("x", 0.0, 0, 1, inclusive=False)

    def test_check_shape(self):
        check_shape("x", np.zeros((2, 3)), (2, None))
        with pytest.raises(ShapeError):
            check_shape("x", np.zeros((2, 3)), (3, None))
        with pytest.raises(ShapeError):
            check_shape("x", np.zeros(2), (2, 1))

    def test_check_member(self):
        check_member("x", "a", ("a", "b"))
        with pytest.raises(ConfigurationError):
            check_member("x", "c", ("a", "b"))
