"""Tests for complex/real packing and phase-gauge fixing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ShapeError
from repro.utils.complexmat import (
    column_correlation,
    complex_to_real,
    fix_phase_gauge,
    is_unitary_columns,
    real_to_complex,
)

complex_arrays = hnp.arrays(
    dtype=np.complex128,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
    elements=st.complex_numbers(
        max_magnitude=1e6, allow_nan=False, allow_infinity=False
    ),
)


class TestPackingRoundTrip:
    @given(values=complex_arrays)
    def test_round_trip_preserves_values(self, values):
        if values.ndim == 1:
            packed = complex_to_real(values)
            restored = real_to_complex(packed, values.shape)
        else:
            packed = complex_to_real(values)
            restored = real_to_complex(packed, values.shape[1:])
        assert np.allclose(restored, values)

    def test_layout_is_real_then_imag(self):
        values = np.array([1 + 2j, 3 + 4j])
        assert np.array_equal(complex_to_real(values), [1.0, 3.0, 2.0, 4.0])

    def test_batch_layout(self):
        values = np.array([[1 + 2j], [3 - 4j]])
        packed = complex_to_real(values)
        assert packed.shape == (2, 2)
        assert np.array_equal(packed, [[1.0, 2.0], [3.0, -4.0]])

    def test_wrong_width_raises(self):
        with pytest.raises(ShapeError):
            real_to_complex(np.zeros(5), (2,))

    def test_scalar_rejected(self):
        with pytest.raises(ShapeError):
            complex_to_real(np.complex128(1j))


class TestPhaseGauge:
    def test_last_row_becomes_real_nonnegative(self, rng):
        bf = rng.standard_normal((4, 2)) + 1j * rng.standard_normal((4, 2))
        fixed = fix_phase_gauge(bf)
        assert np.allclose(fixed[-1].imag, 0.0, atol=1e-12)
        assert np.all(fixed[-1].real >= 0)

    def test_idempotent(self, rng):
        bf = rng.standard_normal((3, 2)) + 1j * rng.standard_normal((3, 2))
        once = fix_phase_gauge(bf)
        twice = fix_phase_gauge(once)
        assert np.allclose(once, twice)

    def test_column_directions_preserved(self, rng):
        bf = rng.standard_normal((5, 3)) + 1j * rng.standard_normal((5, 3))
        fixed = fix_phase_gauge(bf)
        assert column_correlation(bf, fixed) == pytest.approx(1.0, abs=1e-10)

    def test_batched(self, rng):
        bf = rng.standard_normal((7, 4, 2)) + 1j * rng.standard_normal((7, 4, 2))
        fixed = fix_phase_gauge(bf)
        assert fixed.shape == bf.shape
        assert np.allclose(fixed[:, -1, :].imag, 0.0, atol=1e-12)

    def test_vector_input_rejected(self):
        with pytest.raises(ShapeError):
            fix_phase_gauge(np.ones(3))


class TestUnitarity:
    def test_identity_is_unitary(self):
        assert is_unitary_columns(np.eye(4))

    def test_scaled_identity_is_not(self):
        assert not is_unitary_columns(2 * np.eye(4))

    def test_qr_columns_are_unitary(self, rng):
        a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        q, _ = np.linalg.qr(a)
        assert is_unitary_columns(q[:, :3])


class TestColumnCorrelation:
    def test_identical_columns_score_one(self, rng):
        bf = rng.standard_normal((4, 2)) + 1j * rng.standard_normal((4, 2))
        assert column_correlation(bf, bf) == pytest.approx(1.0)

    def test_phase_invariance(self, rng):
        bf = rng.standard_normal((4, 2)) + 1j * rng.standard_normal((4, 2))
        rotated = bf * np.exp(1j * rng.uniform(0, 2 * np.pi, size=(1, 2)))
        assert column_correlation(bf, rotated) == pytest.approx(1.0)

    def test_orthogonal_columns_score_zero(self):
        lhs = np.array([[1.0], [0.0]], dtype=complex)
        rhs = np.array([[0.0], [1.0]], dtype=complex)
        assert column_correlation(lhs, rhs) == pytest.approx(0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            column_correlation(np.ones((2, 2)), np.ones((3, 2)))
