"""Unit tests for the repro.perf measurement subsystem."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    Benchmark,
    BenchmarkResult,
    PerfReport,
    profile_summary,
    profiled,
    record,
    reset_profiles,
    speedup,
)


class TestBenchmark:
    def test_run_basic_stats(self):
        calls = []
        result = Benchmark(warmup=2, repeats=5).run(
            "stage", lambda: calls.append(1), n_items=10
        )
        assert len(calls) == 7  # warmup + repeats
        assert result.repeats == 5
        assert result.min_s <= result.median_s <= result.max_s
        assert result.items_per_s is not None and result.items_per_s > 0
        assert "stage" in str(result)

    def test_median_of_even_and_odd(self):
        from repro.perf.timer import _median

        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_speedup(self):
        fast = BenchmarkResult("a", 1, 0.5, 0.5, 0.5, 0.5)
        slow = BenchmarkResult("b", 1, 5.0, 5.0, 5.0, 5.0)
        assert speedup(slow, fast) == pytest.approx(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Benchmark(repeats=0)
        with pytest.raises(ConfigurationError):
            Benchmark().run("x", lambda: None, repeats=0)

    def test_as_dict_roundtrips_json(self):
        result = Benchmark(warmup=0, repeats=2).run(
            "s", lambda: None, n_items=3, meta={"k": "v"}
        )
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["name"] == "s"
        assert payload["n_items"] == 3
        assert payload["meta"] == {"k": "v"}


class TestProfiling:
    def test_profiled_decorator_records(self):
        reset_profiles()

        @profiled("unit.work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        entries = {e.name: e for e in profile_summary()}
        assert entries["unit.work"].calls == 2
        assert entries["unit.work"].total_s >= 0.0
        reset_profiles()
        assert profile_summary() == []

    def test_record_context_manager(self):
        reset_profiles()
        with record("unit.block"):
            np.arange(10).sum()
        entries = {e.name: e for e in profile_summary()}
        assert entries["unit.block"].calls == 1
        reset_profiles()

    def test_registry_aggregates_and_sorts_by_total_time(self):
        reset_profiles()

        @profiled("unit.slow")
        def slow():
            time.sleep(0.002)

        @profiled("unit.fast")
        def fast():
            return None

        for _ in range(3):
            fast()
        slow()
        entries = profile_summary()
        assert [e.name for e in entries] == ["unit.slow", "unit.fast"]
        fast_entry = entries[1]
        assert fast_entry.calls == 3
        assert fast_entry.mean_s == pytest.approx(fast_entry.total_s / 3)
        assert fast_entry.max_s <= fast_entry.total_s
        payload = fast_entry.as_dict()
        assert payload["name"] == "unit.fast"
        assert payload["calls"] == 3
        reset_profiles()

    def test_default_profiled_name_is_module_qualname(self):
        reset_profiles()

        @profiled()
        def some_unit_fn():
            return 1

        some_unit_fn()
        (entry,) = profile_summary()
        assert entry.name.endswith("some_unit_fn")
        assert entry.name == some_unit_fn.__profiled_name__
        assert __name__ in entry.name
        reset_profiles()

    def test_library_entry_points_are_instrumented(self, smoke_dataset_2x2):
        # The permanent @profiled hooks on the hot-path entry points are
        # what makes post-hoc "where did the time go" queries possible.
        from repro.phy.link import LinkConfig, LinkSimulator

        reset_profiles()
        indices = smoke_dataset_2x2.splits.test[:2]
        LinkSimulator(LinkConfig()).measure_ber(
            smoke_dataset_2x2.link_channels(indices),
            smoke_dataset_2x2.link_bf(indices),
        )
        entries = {e.name: e for e in profile_summary()}
        assert entries["link.measure_ber"].calls == 1
        reset_profiles()

    def test_profiled_preserves_exceptions_and_name(self):
        reset_profiles()

        @profiled()
        def broken():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            broken()
        assert broken.__name__ == "broken"
        (entry,) = profile_summary()
        assert entry.calls == 1
        reset_profiles()

    def test_record_block_records_on_exception(self):
        # The time a failing block burned is exactly the time a
        # post-mortem needs — record() must observe it on the way out.
        reset_profiles()
        with pytest.raises(RuntimeError):
            with record("unit.failing"):
                raise RuntimeError("boom")
        entries = {e.name: e for e in profile_summary()}
        assert entries["unit.failing"].calls == 1
        assert entries["unit.failing"].total_s >= 0.0
        reset_profiles()

    def test_nested_record_blocks_attribute_both_levels(self):
        reset_profiles()
        with record("unit.outer"):
            with record("unit.inner"):
                time.sleep(0.001)
        entries = {e.name: e for e in profile_summary()}
        assert entries["unit.outer"].calls == 1
        assert entries["unit.inner"].calls == 1
        # Wall time is attributed to every enclosing block: the outer
        # span covers the inner one.
        assert entries["unit.outer"].total_s >= entries["unit.inner"].total_s
        reset_profiles()

    def test_reset_between_stages_isolates_registries(self):
        reset_profiles()
        with record("stage.one"):
            pass
        assert [e.name for e in profile_summary()] == ["stage.one"]
        reset_profiles()
        with record("stage.two"):
            pass
        names = [e.name for e in profile_summary()]
        assert names == ["stage.two"], "stage one leaked through reset"
        reset_profiles()

    def test_summary_ordering_is_deterministic_on_ties(self):
        # Equal totals (here: zero, via merge of synthetic snapshots)
        # must sort by name so repeated summaries diff clean.
        from repro.perf.profile import merge_profiles

        reset_profiles()
        merge_profiles(
            {
                "unit.bbb": (1, 0.5, 0.5),
                "unit.aaa": (1, 0.5, 0.5),
                "unit.ccc": (2, 0.25, 0.125),
            }
        )
        names = [e.name for e in profile_summary()]
        assert names == ["unit.aaa", "unit.bbb", "unit.ccc"]
        reset_profiles()

    def test_snapshot_merge_round_trip(self):
        # The worker-telemetry path: a worker snapshots its registry,
        # ships it, and the coordinator merges it into its own.
        from repro.perf.profile import merge_profiles, profile_snapshot

        reset_profiles()
        with record("unit.shared"):
            pass
        snapshot = profile_snapshot()
        assert snapshot["unit.shared"][0] == 1
        merge_profiles(snapshot)  # coordinator already has one call
        (entry,) = profile_summary()
        assert entry.calls == 2
        assert entry.total_s == pytest.approx(2 * snapshot["unit.shared"][1])
        assert entry.max_s == pytest.approx(snapshot["unit.shared"][2])
        reset_profiles()

    def test_observe_is_thread_safe(self):
        import threading

        reset_profiles()

        @profiled("unit.threaded")
        def bump():
            return None

        n_threads, n_calls = 8, 200

        def hammer():
            for _ in range(n_calls):
                bump()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        (entry,) = profile_summary()
        assert entry.calls == n_threads * n_calls
        reset_profiles()


class TestPerfReport:
    def test_write_json(self, tmp_path):
        bench = Benchmark(warmup=0, repeats=2)
        report = PerfReport("unit report", context={"workload": "tiny"})
        baseline = bench.run("stage/ref", lambda: None, n_items=4)
        optimized = bench.run("stage/fast", lambda: None, n_items=4)
        report.add(baseline)
        report.add(optimized)
        factor = report.add_comparison("stage", baseline, optimized)
        assert factor > 0
        path = tmp_path / "report.json"
        report.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["title"] == "unit report"
        assert payload["context"]["workload"] == "tiny"
        assert len(payload["stages"]) == 2
        assert payload["comparisons"][0]["stage"] == "stage"
        assert "speedup" in payload["comparisons"][0]
        assert "stage/ref" in report.render()

    def test_json_file_round_trip_preserves_stages_and_comparisons(
        self, tmp_path
    ):
        # The cross-PR perf trajectory depends on reading committed
        # BENCH_hotpaths.json files back: every stage statistic and
        # comparison must survive a full write -> parse cycle intact.
        bench = Benchmark(warmup=0, repeats=3)
        report = PerfReport("round trip", context={"workload": "unit"})
        baseline = bench.run("s/ref", lambda: sum(range(200)), n_items=7)
        optimized = bench.run("s/fast", lambda: None, n_items=7)
        report.add(baseline)
        report.add(optimized)
        report.add_comparison("s", baseline, optimized)
        path = tmp_path / "r.json"
        report.write_json(str(path))
        payload = json.loads(path.read_text())

        assert payload["schema_version"] == 1
        by_name = {stage["name"]: stage for stage in payload["stages"]}
        for result in (baseline, optimized):
            stage = by_name[result.name]
            assert stage["median_s"] == result.median_s
            assert stage["mean_s"] == result.mean_s
            assert stage["min_s"] == result.min_s
            assert stage["max_s"] == result.max_s
            assert stage["repeats"] == result.repeats
            assert stage["n_items"] == 7
            assert stage["items_per_s"] == result.items_per_s
        comparison = payload["comparisons"][0]
        assert comparison["baseline"] == baseline.as_dict()
        assert comparison["optimized"] == optimized.as_dict()
        assert comparison["speedup"] == pytest.approx(
            baseline.median_s / optimized.median_s
        )
        assert isinstance(payload["created_unix"], float)

    def test_write_json_rejects_empty_path(self):
        with pytest.raises(ConfigurationError):
            PerfReport("x").write_json("")

    def test_reference_module_importable(self):
        # The frozen seed implementations must stay importable — the
        # equivalence tests and benches both depend on them.
        from repro.perf import reference

        assert callable(reference.reference_givens_decompose)
        assert callable(reference.reference_encode_cbf)
        assert callable(reference.reference_collect_session)
