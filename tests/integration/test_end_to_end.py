"""Integration tests: full pipelines across package boundaries."""

import numpy as np

from repro import (
    SMOKE,
    BopConstraints,
    Dot11Feedback,
    IdealSvdFeedback,
    LinkConfig,
    SplitBeamFeedback,
    build_dataset,
    compare_schemes,
    dataset_spec,
    solve_bop,
    train_splitbeam,
)
from repro.core.split import SplitExecutor
from repro.core.training import predict_bf


class TestFullPipeline:
    def test_dataset_to_deployment(self, smoke_dataset_2x2):
        """Build -> train -> split -> quantized feedback -> BER."""
        trained = train_splitbeam(
            smoke_dataset_2x2, compression=1 / 4, fidelity=SMOKE, seed=0
        )
        executor = trained.executor()
        x, _ = smoke_dataset_2x2.model_arrays(smoke_dataset_2x2.splits.test[:2])
        # The deployed split path runs: STA head -> quantize -> AP tail.
        feedback = executor.head.compress(x)
        assert feedback.payload_bits == executor.feedback_bits()
        reconstructed = executor.tail.reconstruct(feedback)
        assert reconstructed.shape == x.shape

        evaluations = compare_schemes(
            [IdealSvdFeedback(), Dot11Feedback(), SplitBeamFeedback(trained)],
            smoke_dataset_2x2,
            indices=smoke_dataset_2x2.splits.test[:6],
            link_config=LinkConfig(snr_db=20),
        )
        bers = {e.scheme_name: e.ber for e in evaluations}
        assert all(0 <= b <= 1 for b in bers.values())

    def test_trained_model_beats_untrained(self, smoke_dataset_2x2):
        from repro.core.model import SplitBeamNet, three_layer_widths
        from repro.core.training import ber_of_model

        trained = train_splitbeam(
            smoke_dataset_2x2, compression=1 / 4, fidelity=SMOKE, seed=0
        )
        untrained = SplitBeamNet(three_layer_widths(224, 1 / 4), rng=1)
        indices = smoke_dataset_2x2.splits.test[:6]
        link = LinkConfig(snr_db=20)
        ber_trained = ber_of_model(
            trained.model, smoke_dataset_2x2, indices, link_config=link
        ).ber
        ber_untrained = ber_of_model(
            untrained, smoke_dataset_2x2, indices, link_config=link
        ).ber
        assert ber_trained < ber_untrained

    def test_bop_result_is_deployable(self, smoke_dataset_2x2):
        result = solve_bop(
            smoke_dataset_2x2,
            BopConstraints(max_ber=0.45, max_delay_s=10e-3),
            compressions=(1 / 4,),
            fidelity=SMOKE,
            max_extra_layers=0,
            seed=0,
        )
        trained = result.selected.trained
        assert trained is not None
        executor = SplitExecutor(trained.model, trained.quantizer)
        x, _ = smoke_dataset_2x2.model_arrays(np.array([0]))
        assert executor.run(x).shape == x.shape

    def test_three_user_pipeline(self, smoke_dataset_3x3):
        trained = train_splitbeam(
            smoke_dataset_3x3, compression=1 / 4, fidelity=SMOKE, seed=0
        )
        indices = smoke_dataset_3x3.splits.test[:4]
        bf = predict_bf(trained.model, smoke_dataset_3x3, indices)
        assert bf.shape == (4, 3, 56, 3)

    def test_seeded_reproducibility_end_to_end(self):
        """Same seeds -> bit-identical dataset, model, and BER."""
        results = []
        for _ in range(2):
            ds = build_dataset(dataset_spec("D1"), fidelity=SMOKE, seed=21)
            trained = train_splitbeam(ds, compression=1 / 4, fidelity=SMOKE, seed=3)
            evaluation = compare_schemes(
                [SplitBeamFeedback(trained)],
                ds,
                indices=ds.splits.test[:4],
                link_config=LinkConfig(snr_db=20),
            )[0]
            results.append(evaluation.ber)
        assert results[0] == results[1]

    def test_sounding_delay_for_trained_model(self, smoke_dataset_2x2):
        """Wire a trained model's costs into the protocol simulator."""
        from repro import bm_reporting_delay, splitbeam_latency_s

        trained = train_splitbeam(
            smoke_dataset_2x2, compression=1 / 4, fidelity=SMOKE, seed=0
        )
        scheme = SplitBeamFeedback(trained)
        delay = bm_reporting_delay(
            n_users=2,
            bandwidth_mhz=20,
            feedback_bits=scheme.feedback_bits(smoke_dataset_2x2),
            head_time_s=splitbeam_latency_s(trained.model) / 2,
            tail_time_s=splitbeam_latency_s(trained.model) / 2,
        )
        assert delay.meets(10e-3)
