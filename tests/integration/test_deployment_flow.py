"""Integration: the full deployment flow of Fig. 1.

Offline: train a ladder, measure it, publish a zoo, persist it to disk.
Online: reload the zoo (a different process in reality), let the QoS
selector pick a model for the announced NDP configuration, and run a
network session with the adaptive controller — asserting the pieces
agree with each other (same bits, same models, consistent costs).
"""

from __future__ import annotations

import pytest

from repro.config import SMOKE
from repro.core.adaptive import QosProfile, select_model
from repro.core.costs import StaCostModel
from repro.core.session import NetworkSession
from repro.core.training import train_splitbeam
from repro.core.zoo import ModelZoo, NetworkConfiguration
from repro.phy.link import LinkConfig


@pytest.fixture(scope="module")
def deployment(smoke_dataset_2x2, tmp_path_factory):
    """Offline phase: ladder -> zoo -> disk -> reload."""
    dataset = smoke_dataset_2x2
    zoo = ModelZoo()
    trained = {}
    for k in (1 / 8, 1 / 4):
        model = train_splitbeam(dataset, compression=k, fidelity=SMOKE, seed=0)
        entry = zoo.register_trained(model)
        trained[entry.model.bottleneck_dim] = model
    directory = str(tmp_path_factory.mktemp("zoo"))
    zoo.save(directory)
    return dataset, ModelZoo.load(directory), trained


class TestDeploymentFlow:
    def test_reloaded_zoo_serves_ndp_lookup(self, deployment):
        dataset, zoo, _ = deployment
        config = NetworkConfiguration(
            n_tx=dataset.spec.n_tx,
            n_rx=dataset.spec.n_rx,
            bandwidth_mhz=dataset.spec.bandwidth_mhz,
        )
        entry = zoo.on_ndp(config)
        assert entry.model.input_dim == dataset.input_dim
        assert len(zoo.candidates(config)) == 2

    def test_selector_and_controller_agree_on_candidates(self, deployment):
        dataset, zoo, _ = deployment
        config = NetworkConfiguration(
            n_tx=dataset.spec.n_tx,
            n_rx=dataset.spec.n_rx,
            bandwidth_mhz=dataset.spec.bandwidth_mhz,
        )
        qos = QosProfile(max_ber=0.9, max_delay_s=1.0)
        outcome = select_model(zoo, config, qos, StaCostModel())
        assert not outcome.fell_back
        # Permissive QoS -> the objective picks the cheapest rung, which
        # is the most compressed candidate.
        assert outcome.selected.compression == min(
            e.compression for e in zoo.candidates(config)
        )

    def test_session_runs_with_reloaded_models(self, deployment):
        dataset, zoo, trained = deployment
        # Reloaded zoo entries reference *new* model objects; the session
        # needs the matching trained wrappers keyed by bottleneck width.
        session = NetworkSession(
            dataset,
            zoo=zoo,
            trained_models=trained,
            qos=QosProfile(max_ber=0.2),
            link_config=LinkConfig(snr_db=20.0),
            samples_per_round=4,
            seed=9,
        )
        report = session.run(2)
        assert report.n_rounds == 2
        labels = {e.model.label() for e in zoo.candidates(session.config)}
        assert all(r.scheme in labels for r in report.rounds)
        # The session's reported feedback bits match the zoo's entries.
        bits_by_label = {
            e.model.label(): e.feedback_bits
            for e in zoo.candidates(session.config)
        }
        assert all(
            r.feedback_bits == bits_by_label[r.scheme] for r in report.rounds
        )
