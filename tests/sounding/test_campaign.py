"""Tests for the periodic sounding campaign / overhead-rate model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sounding.campaign import (
    MU_MIMO_SOUNDING_INTERVAL_S,
    CampaignReport,
    SoundingCampaign,
    combine_reports,
    feedback_overhead_rate_bps,
    intro_example_bits,
    max_supportable_users,
)
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits


class TestIntroExample:
    def test_bit_count_matches_paper(self):
        """Sec. I: 486 x 56 x 16 = 435,456 bits ≃ 54.43 kB."""
        bits = intro_example_bits()
        assert bits == 435_456
        assert bits / 8 / 1000 == pytest.approx(54.432)

    def test_overhead_rate_matches_paper(self):
        """Sec. I: 435,456 / 0.01 ≃ 43.55 Mbit/s."""
        rate = feedback_overhead_rate_bps(intro_example_bits(), 0.01)
        assert rate / 1e6 == pytest.approx(43.5456)

    def test_invalid_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            intro_example_bits(n_subcarriers=0)


class TestOverheadRate:
    def test_linear_in_bits(self):
        assert feedback_overhead_rate_bps(2000, 0.01) == 2 * feedback_overhead_rate_bps(1000, 0.01)

    def test_inverse_in_interval(self):
        assert feedback_overhead_rate_bps(1000, 0.005) == 2 * feedback_overhead_rate_bps(1000, 0.01)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            feedback_overhead_rate_bps(-1, 0.01)
        with pytest.raises(ConfigurationError):
            feedback_overhead_rate_bps(100, 0.0)


class TestCampaignReport:
    def make_report(self, round_airtime=1e-3, interval=10e-3):
        return CampaignReport(
            interval_s=interval,
            round_duration_s=round_airtime * 1.2,
            round_airtime_s=round_airtime,
            feedback_airtime_s=round_airtime * 0.8,
            feedback_bits_total=10_000,
        )

    def test_occupancy_fraction(self):
        report = self.make_report(round_airtime=2e-3, interval=10e-3)
        assert report.occupancy == pytest.approx(0.2)
        assert report.data_fraction == pytest.approx(0.8)

    def test_occupancy_clamped_at_one(self):
        report = self.make_report(round_airtime=20e-3, interval=10e-3)
        assert report.occupancy == 1.0
        assert report.data_fraction == 0.0

    def test_occupancy_ratio_unclamped(self):
        # The honest overload signal: 20 ms of airtime every 10 ms is a
        # 2.0 ratio, not a saturated-looking 1.0.
        report = self.make_report(round_airtime=20e-3, interval=10e-3)
        assert report.occupancy_ratio == pytest.approx(2.0)
        feasible = self.make_report(round_airtime=2e-3, interval=10e-3)
        assert feasible.occupancy_ratio == pytest.approx(feasible.occupancy)

    def test_goodput_scales_with_data_fraction(self):
        report = self.make_report(round_airtime=5e-3, interval=10e-3)
        assert report.goodput_bps(100e6) == pytest.approx(50e6)

    def test_infeasible_round_reports_zero_goodput(self):
        # round_duration 9 ms * 1.2 > 10 ms: the exchange cannot repeat
        # every interval, so there is no steady state to report goodput
        # for — even though the clamped occupancy leaves airtime over.
        report = self.make_report(round_airtime=9e-3, interval=10e-3)
        assert not report.feasible
        assert report.occupancy < 1.0
        assert report.data_fraction > 0.0
        assert report.goodput_bps(100e6) == 0.0

    def test_goodput_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            self.make_report().goodput_bps(-1.0)

    def test_feasibility(self):
        assert self.make_report(round_airtime=1e-3).feasible
        assert not self.make_report(round_airtime=9e-3, interval=10e-3).feasible


class TestSoundingCampaign:
    def test_report_consistent_with_schedule(self):
        campaign = SoundingCampaign(
            n_users=2, bandwidth_mhz=20, feedback_bits=5000
        )
        schedule = campaign.round_schedule()
        report = campaign.report()
        assert report.round_duration_s == pytest.approx(schedule.total_duration_s)
        assert report.round_airtime_s == pytest.approx(schedule.airtime_s)
        assert report.feedback_bits_total == 10_000

    def test_more_users_more_airtime(self):
        reports = [
            SoundingCampaign(n, 20, feedback_bits=5000).report()
            for n in (1, 2, 3)
        ]
        assert reports[0].round_airtime_s < reports[1].round_airtime_s < reports[2].round_airtime_s

    def test_smaller_feedback_lower_occupancy(self):
        """The SplitBeam effect: compressed BMR -> smaller sounding tax."""
        config = Dot11FeedbackConfig(n_tx=3, n_rx=1, n_streams=1, bandwidth_mhz=80)
        dot11 = SoundingCampaign(3, 80, feedback_bits=bmr_bits(config)).report()
        splitbeam = SoundingCampaign(
            3, 80, feedback_bits=bmr_bits(config) // 5
        ).report()
        assert splitbeam.occupancy < dot11.occupancy
        assert splitbeam.overhead_rate_bps < dot11.overhead_rate_bps

    def test_slow_sta_stretches_round(self):
        fast = SoundingCampaign(2, 20, 5000, compute_times_s=0.0).report()
        slow = SoundingCampaign(2, 20, 5000, compute_times_s=3e-3).report()
        assert slow.round_duration_s > fast.round_duration_s
        # Waiting does not occupy the medium.
        assert slow.round_airtime_s == pytest.approx(fast.round_airtime_s)

    def test_broadcast_vs_explicit_lists(self):
        broadcast = SoundingCampaign(2, 20, 5000).report()
        explicit = SoundingCampaign(2, 20, [5000, 5000], [0.0, 0.0]).report()
        assert broadcast.feedback_bits_total == explicit.feedback_bits_total

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ConfigurationError):
            SoundingCampaign(3, 20, [100, 100])
        with pytest.raises(ConfigurationError):
            SoundingCampaign(1, 20, 100, interval_s=0.0)

    @given(
        n_users=st.integers(min_value=1, max_value=6),
        feedback_bits=st.integers(min_value=0, max_value=100_000),
    )
    def test_occupancy_bounds(self, n_users, feedback_bits):
        report = SoundingCampaign(n_users, 40, feedback_bits).report()
        assert 0.0 < report.occupancy <= 1.0
        assert 0.0 <= report.data_fraction < 1.0
        assert report.feedback_airtime_s <= report.round_airtime_s


class TestCombineReports:
    def test_sums_heterogeneous_groups(self):
        twenty = SoundingCampaign(2, 20, feedback_bits=5000).report()
        eighty = SoundingCampaign(3, 80, feedback_bits=20_000).report()
        combined = combine_reports([twenty, eighty])
        assert combined.round_airtime_s == pytest.approx(
            twenty.round_airtime_s + eighty.round_airtime_s
        )
        assert combined.round_duration_s == pytest.approx(
            twenty.round_duration_s + eighty.round_duration_s
        )
        assert combined.feedback_bits_total == 5000 * 2 + 20_000 * 3
        assert combined.occupancy_ratio == pytest.approx(
            twenty.occupancy_ratio + eighty.occupancy_ratio
        )

    def test_single_report_is_identity(self):
        report = SoundingCampaign(2, 40, feedback_bits=8000).report()
        assert combine_reports([report]) == report

    def test_mismatched_intervals_rejected(self):
        a = SoundingCampaign(1, 20, 100, interval_s=10e-3).report()
        b = SoundingCampaign(1, 20, 100, interval_s=5e-3).report()
        with pytest.raises(ConfigurationError):
            combine_reports([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_reports([])


class TestMaxSupportableUsers:
    def test_compression_supports_more_users(self):
        config = Dot11FeedbackConfig(n_tx=4, n_rx=1, n_streams=1, bandwidth_mhz=80)
        full = max_supportable_users(80, bmr_bits(config))
        compressed = max_supportable_users(80, bmr_bits(config) // 8)
        assert compressed >= full
        assert full >= 1

    def test_huge_feedback_supports_nobody(self):
        assert max_supportable_users(20, 10**9, interval_s=1e-3) == 0

    def test_respects_user_limit(self):
        assert max_supportable_users(80, 0, user_limit=5) <= 5

    def test_interval_matters(self):
        tight = max_supportable_users(20, 20_000, interval_s=2e-3)
        loose = max_supportable_users(
            20, 20_000, interval_s=MU_MIMO_SOUNDING_INTERVAL_S
        )
        assert loose >= tight

    def test_invalid_limit(self):
        with pytest.raises(ConfigurationError):
            max_supportable_users(20, 100, user_limit=0)

    @staticmethod
    def _linear_walk(
        bandwidth_mhz, feedback_bits, interval_s, user_limit
    ) -> int:
        """The O(limit) reference implementation the search replaced."""
        supported = 0
        for n_users in range(1, user_limit + 1):
            report = SoundingCampaign(
                n_users=n_users,
                bandwidth_mhz=bandwidth_mhz,
                feedback_bits=feedback_bits,
                interval_s=interval_s,
            ).report()
            if not report.feasible:
                break
            supported = n_users
        return supported

    @pytest.mark.parametrize("bandwidth_mhz", [20, 40, 80, 160])
    @pytest.mark.parametrize(
        "feedback_bits", [0, 500, 5_000, 50_000, 500_000]
    )
    @pytest.mark.parametrize("interval_s", [2e-3, 10e-3])
    def test_bisection_matches_linear_walk(
        self, bandwidth_mhz, feedback_bits, interval_s
    ):
        # The doubling-then-bisection search must agree with the linear
        # walk everywhere: boundary inside the range, at 0, and pinned
        # at the user limit.
        limit = 24
        assert max_supportable_users(
            bandwidth_mhz,
            feedback_bits,
            interval_s=interval_s,
            user_limit=limit,
        ) == self._linear_walk(
            bandwidth_mhz, feedback_bits, interval_s, limit
        )

    @pytest.mark.parametrize("user_limit", [1, 2, 3, 7, 8, 9])
    def test_bisection_matches_linear_walk_at_small_limits(self, user_limit):
        assert max_supportable_users(
            40, 20_000, user_limit=user_limit
        ) == self._linear_walk(40, 20_000, 10e-3, user_limit)
