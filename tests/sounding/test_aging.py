"""Tests for the channel-aging / sounding-interval model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sounding.aging import (
    AgingGoodputModel,
    optimal_sounding_interval,
    stale_sinr_db,
    temporal_correlation,
)


class TestTemporalCorrelation:
    def test_zero_delay_is_perfect(self):
        assert temporal_correlation(10.0, 0.0) == 1.0

    def test_zero_doppler_is_static(self):
        assert temporal_correlation(0.0, 1.0) == 1.0

    def test_decays_initially(self):
        rhos = [temporal_correlation(5.0, t) for t in (0.0, 5e-3, 20e-3)]
        assert rhos[0] > rhos[1] > rhos[2]

    def test_first_null_of_j0(self):
        """J0 crosses zero at 2*pi*fd*tau ~ 2.405."""
        tau = 2.405 / (2 * np.pi * 10.0)
        assert abs(temporal_correlation(10.0, tau)) < 1e-3

    def test_negative_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            temporal_correlation(-1.0, 0.1)
        with pytest.raises(ConfigurationError):
            temporal_correlation(1.0, -0.1)


class TestStaleSinr:
    def test_perfect_correlation_preserves_sinr(self):
        assert stale_sinr_db(20.0, 1.0, n_users=3) == pytest.approx(20.0)

    def test_zero_correlation_kills_link(self):
        assert stale_sinr_db(20.0, 0.0, n_users=3) < -50.0

    def test_monotone_in_correlation(self):
        values = [stale_sinr_db(25.0, rho, 3) for rho in (0.5, 0.9, 0.99)]
        assert values[0] < values[1] < values[2]

    def test_single_user_has_no_iui(self):
        """Without co-scheduled users, staleness only costs signal power."""
        single = stale_sinr_db(20.0, 0.9, n_users=1)
        multi = stale_sinr_db(20.0, 0.9, n_users=4)
        assert single > multi
        # Single-user loss is exactly rho^2 in power.
        assert single == pytest.approx(20.0 + 10 * np.log10(0.81), abs=1e-6)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            stale_sinr_db(20.0, 1.5)
        with pytest.raises(ConfigurationError):
            stale_sinr_db(20.0, 0.5, n_users=0)

    @given(
        rho=st.floats(min_value=0.0, max_value=1.0),
        sinr=st.floats(min_value=0.0, max_value=40.0),
    )
    def test_never_exceeds_fresh_sinr(self, rho, sinr):
        assert stale_sinr_db(sinr, rho, n_users=2) <= sinr + 1e-9


class TestGoodputModel:
    def make_model(self, **overrides) -> AgingGoodputModel:
        defaults = dict(
            n_users=3,
            bandwidth_mhz=80,
            feedback_bits_per_user=20_000,
            doppler_hz=5.0,
            fresh_sinr_db=28.0,
        )
        defaults.update(overrides)
        return AgingGoodputModel(**defaults)

    def test_occupancy_falls_with_longer_interval(self):
        model = self.make_model()
        assert model.occupancy(2e-3) > model.occupancy(20e-3)

    def test_sinr_falls_with_longer_interval(self):
        model = self.make_model()
        assert model.effective_sinr_db(1e-3) > model.effective_sinr_db(30e-3)

    def test_goodput_has_interior_optimum(self):
        """Too-frequent sounding wastes airtime; too-rare staleness
        collapses the MCS — the optimum sits strictly inside."""
        model = self.make_model()
        grid = [0.7e-3, 5e-3, 80e-3]
        goodputs = [model.goodput_bps(t) for t in grid]
        assert goodputs[1] > goodputs[0]
        assert goodputs[1] > goodputs[2]

    def test_optimal_interval_in_paper_regime(self):
        """Pedestrian Doppler -> optimum in the paper's ~1-20 ms band."""
        interval, goodput = optimal_sounding_interval(self.make_model())
        assert 0.5e-3 < interval < 25e-3
        assert goodput > 0

    def test_higher_doppler_sounds_more_often(self):
        slow, _ = optimal_sounding_interval(self.make_model(doppler_hz=2.0))
        fast, _ = optimal_sounding_interval(self.make_model(doppler_hz=20.0))
        assert fast <= slow

    def test_smaller_feedback_higher_goodput(self):
        """The SplitBeam effect at the system level."""
        dot11 = self.make_model(feedback_bits_per_user=20_000)
        splitbeam = self.make_model(feedback_bits_per_user=4_000)
        _, g_dot11 = optimal_sounding_interval(dot11)
        _, g_split = optimal_sounding_interval(splitbeam)
        assert g_split > g_dot11

    def test_saturated_interval_zero_goodput(self):
        model = self.make_model(feedback_bits_per_user=10**7)
        assert model.goodput_bps(1e-3) == 0.0

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            self.make_model().goodput_bps(0.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            self.make_model(n_users=0)
        with pytest.raises(ConfigurationError):
            self.make_model(doppler_hz=-1.0)

    def test_empty_candidate_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_sounding_interval(self.make_model(), candidates_s=[])
