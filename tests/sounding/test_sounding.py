"""Tests for the sounding-protocol simulator and delay accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.rates import SIFS_S
from repro.sounding.delay import bm_reporting_delay
from repro.sounding.frames import (
    bmr_duration_s,
    brp_duration_s,
    ndp_duration_s,
    ndpa_duration_s,
)
from repro.sounding.protocol import simulate_sounding


class TestFrameDurations:
    def test_ndpa_grows_with_users(self):
        assert ndpa_duration_s(4, 20) >= ndpa_duration_s(1, 20)

    def test_ndp_grows_with_streams(self):
        assert ndp_duration_s(4, 20) == ndp_duration_s(1, 20) + 3 * 4e-6

    def test_bmr_grows_with_payload(self):
        assert bmr_duration_s(50_000, 20) > bmr_duration_s(500, 20)

    def test_brp_is_short(self):
        assert brp_duration_s(20) < 100e-6

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            ndpa_duration_s(0, 20)
        with pytest.raises(ConfigurationError):
            bmr_duration_s(-1, 20)


class TestSoundingSimulation:
    def test_event_sequence_structure(self):
        schedule = simulate_sounding(
            n_users=2,
            bandwidth_mhz=20,
            feedback_bits=[912, 912],
            compute_times_s=[0.0, 0.0],
        )
        kinds = [e.kind for e in schedule.events]
        assert kinds[0] == "NDPA"
        assert kinds[2] == "NDP"
        assert kinds.count("BMR") == 2
        assert kinds.count("BRP") == 2

    def test_events_contiguous(self):
        schedule = simulate_sounding(
            n_users=3,
            bandwidth_mhz=40,
            feedback_bits=[1000] * 3,
            compute_times_s=[1e-4] * 3,
        )
        for prev, cur in zip(schedule.events, schedule.events[1:]):
            assert cur.start_s == pytest.approx(prev.end_s)

    def test_slow_sta_inserts_wait(self):
        fast = simulate_sounding(2, 20, [912, 912], [0.0, 0.0])
        slow = simulate_sounding(2, 20, [912, 912], [5e-3, 0.0])
        assert not fast.events_of("WAIT")
        waits = slow.events_of("WAIT")
        assert len(waits) == 1
        assert waits[0].station == 0
        assert slow.total_duration_s > fast.total_duration_s

    def test_second_user_computes_during_first_report(self):
        """A compute time shorter than the elapsed exchange needs no wait."""
        schedule = simulate_sounding(2, 20, [912, 912], [0.0, 150e-6])
        assert not schedule.events_of("WAIT")

    def test_airtime_excludes_waits_and_sifs(self):
        schedule = simulate_sounding(2, 20, [912, 912], [5e-3, 0.0])
        busy = schedule.airtime_s
        assert busy < schedule.total_duration_s
        sifs_total = sum(e.duration_s for e in schedule.events_of("SIFS"))
        assert sifs_total == pytest.approx(5 * SIFS_S)

    def test_smaller_feedback_less_airtime(self):
        small = simulate_sounding(2, 20, [448, 448], [0.0, 0.0])
        large = simulate_sounding(2, 20, [7168, 7168], [0.0, 0.0])
        assert small.feedback_airtime_s < large.feedback_airtime_s

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_sounding(2, 20, [912], [0.0, 0.0])


class TestEndToEndDelay:
    def test_broadcast_scalars(self):
        delay = bm_reporting_delay(
            n_users=3,
            bandwidth_mhz=20,
            feedback_bits=912,
            head_time_s=1e-4,
            tail_time_s=2e-4,
        )
        assert delay.head_s == pytest.approx(1e-4)
        assert delay.tail_s == pytest.approx(2e-4)
        assert delay.total_s == delay.airtime_s + delay.tail_s

    def test_paper_4x4_160mhz_under_10ms(self):
        """The paper's headline: worst case stays below 10 ms."""
        from repro.fpga import table3_latency_s

        head = table3_latency_s(4, 160)
        delay = bm_reporting_delay(
            n_users=4,
            bandwidth_mhz=160,
            feedback_bits=484 * 16,
            head_time_s=head,
            tail_time_s=0.0,
        )
        assert delay.meets(10e-3)
        assert delay.total_s > 1e-3  # not trivially zero

    def test_budget_check_strict(self):
        delay = bm_reporting_delay(1, 20, 912, 0.0, 0.0)
        assert delay.meets(delay.total_s + 1e-12)
        assert not delay.meets(delay.total_s)

    def test_invalid_tail(self):
        with pytest.raises(ConfigurationError):
            bm_reporting_delay(1, 20, 912, 0.0, -1.0)
