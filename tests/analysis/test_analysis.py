"""Tests for the analysis/reporting helpers."""

import pytest

from repro.config import SMOKE
from repro.analysis.ber import ber_vs_compression, ber_vs_snr
from repro.analysis.report import ExperimentRecord, ExperimentReport


class TestReport:
    def test_record_ratio(self):
        record = ExperimentRecord("Fig. 9", "2x2", "BER", 0.02, paper_value=0.01)
        assert record.ratio == pytest.approx(2.0)
        assert ExperimentRecord("x", "y", "z", 1.0).ratio is None

    def test_render_includes_paper_columns(self):
        report = ExperimentReport("Fig. 6")
        report.add("4x4 80MHz K=1/8", "ratio", 0.25, paper_value=0.25)
        text = report.render()
        assert "paper" in text
        assert "Fig. 6" in text

    def test_render_without_paper_values(self):
        report = ExperimentReport("ablation")
        report.add("a", "BER", 0.1)
        assert "paper" not in report.render()

    def test_markdown_fragment(self):
        report = ExperimentReport("Table III")
        report.add("2x2 20MHz", "latency ms", 0.0202, paper_value=0.0202, note="fit")
        md = report.markdown()
        assert md.startswith("### Table III")
        assert "| 2x2 20MHz |" in md
        assert "fit" in md


class TestBerSweeps:
    def test_ber_vs_compression_shape(self, smoke_dataset_2x2):
        results = ber_vs_compression(
            smoke_dataset_2x2,
            compressions=(1 / 4,),
            fidelity=SMOKE,
        )
        assert set(results) == {1 / 4}
        assert 0.0 <= results[1 / 4] <= 1.0

    def test_ber_vs_snr_monotone(self, smoke_dataset_2x2):
        indices = smoke_dataset_2x2.splits.test[:6]
        bf = smoke_dataset_2x2.link_bf(indices)
        results = ber_vs_snr(
            smoke_dataset_2x2, bf, snrs_db=(5.0, 30.0), indices=indices
        )
        assert results[5.0] >= results[30.0]
