"""Tests for the confidence-interval BER sweep helper."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import SweepPoint, ber_sweep
from repro.baselines import Dot11Feedback, IdealSvdFeedback
from repro.errors import ConfigurationError
from repro.phy.link import LinkConfig


class TestSweepPoint:
    def test_interval_clipped_to_unit_range(self):
        point = SweepPoint(parameter=5.0, mean_ber=0.01, ci_halfwidth=0.05, n_seeds=3)
        assert point.low == 0.0
        assert point.high == pytest.approx(0.06)

    def test_degenerate_interval(self):
        point = SweepPoint(parameter=5.0, mean_ber=0.1, ci_halfwidth=0.0, n_seeds=1)
        assert point.low == point.high == pytest.approx(0.1)

    def test_hand_built_point_has_no_seed_bers(self):
        point = SweepPoint(parameter=5.0, mean_ber=0.1, ci_halfwidth=0.0, n_seeds=1)
        assert point.seed_bers == ()

    @pytest.mark.parametrize(
        "mean_ber,ci_halfwidth",
        [
            (0.0, 0.0),
            (0.0, 0.02),  # interval would dip below 0
            (1e-6, 0.05),
            (1.0, 0.0),
            (1.0, 0.02),  # interval would poke above 1
            (1.0 - 1e-6, 0.05),
        ],
    )
    def test_near_boundary_interval_stays_in_unit_range(
        self, mean_ber, ci_halfwidth
    ):
        # A BER is a probability: the normal-approximation CI may
        # overshoot [0, 1] near the boundaries but low/high never do.
        point = SweepPoint(
            parameter=0.0,
            mean_ber=mean_ber,
            ci_halfwidth=ci_halfwidth,
            n_seeds=2,
        )
        assert 0.0 <= point.low <= point.high <= 1.0
        assert point.low <= mean_ber <= point.high


class TestBerSweep:
    def test_ber_decreases_with_snr(self, smoke_dataset_2x2):
        points = ber_sweep(
            Dot11Feedback(),
            smoke_dataset_2x2,
            snrs_db=[5.0, 25.0],
            indices=smoke_dataset_2x2.splits.test[:6],
            n_seeds=2,
        )
        assert len(points) == 2
        assert points[0].mean_ber > points[1].mean_ber

    def test_single_seed_has_zero_halfwidth(self, smoke_dataset_2x2):
        # Degenerate statistics: one seed means no spread estimate — the
        # halfwidth must be exactly 0.0 (not NaN from a ddof=1 std) and
        # the single measurement is recorded as a length-1 seed_bers.
        points = ber_sweep(
            IdealSvdFeedback(),
            smoke_dataset_2x2,
            snrs_db=[20.0],
            indices=smoke_dataset_2x2.splits.test[:4],
            n_seeds=1,
        )
        assert points[0].ci_halfwidth == 0.0
        assert points[0].n_seeds == 1
        assert len(points[0].seed_bers) == 1
        assert points[0].seed_bers[0] == points[0].mean_ber
        assert points[0].low == points[0].high == points[0].mean_ber

    def test_measured_boundary_means_stay_clamped(self, smoke_dataset_2x2):
        # At extreme SNRs the measured means sit against the [0, 1]
        # boundaries; the reported interval must stay inside.
        points = ber_sweep(
            IdealSvdFeedback(),
            smoke_dataset_2x2,
            snrs_db=[-30.0, 60.0],
            indices=smoke_dataset_2x2.splits.test[:4],
            n_seeds=3,
        )
        for point in points:
            assert 0.0 <= point.low <= point.high <= 1.0
        # 60 dB on ideal feedback: essentially error-free.
        assert points[1].mean_ber == pytest.approx(0.0, abs=1e-3)

    def test_seeds_produce_nonnegative_halfwidth(self, smoke_dataset_2x2):
        points = ber_sweep(
            Dot11Feedback(),
            smoke_dataset_2x2,
            snrs_db=[10.0],
            indices=smoke_dataset_2x2.splits.test[:4],
            n_seeds=3,
        )
        assert points[0].ci_halfwidth >= 0.0
        assert points[0].low <= points[0].mean_ber <= points[0].high

    def test_base_config_respected(self, smoke_dataset_2x2):
        """The sweep overrides snr_db/seed but keeps other options."""
        points = ber_sweep(
            IdealSvdFeedback(),
            smoke_dataset_2x2,
            snrs_db=[30.0],
            indices=smoke_dataset_2x2.splits.test[:4],
            base_config=LinkConfig(qam_order=4),
            n_seeds=1,
        )
        # QPSK at 30 dB with ideal feedback: essentially error-free.
        assert points[0].mean_ber < 0.01

    def test_validation(self, smoke_dataset_2x2):
        with pytest.raises(ConfigurationError):
            ber_sweep(Dot11Feedback(), smoke_dataset_2x2, snrs_db=[])
        with pytest.raises(ConfigurationError):
            ber_sweep(
                Dot11Feedback(), smoke_dataset_2x2, snrs_db=[10.0], n_seeds=0
            )

    def test_empty_indices_rejected(self, smoke_dataset_2x2):
        # An empty test split used to silently produce a degenerate
        # zero-bit BER mean; it must be a configuration error.
        import numpy as np

        with pytest.raises(ConfigurationError, match="non-empty"):
            ber_sweep(
                Dot11Feedback(),
                smoke_dataset_2x2,
                snrs_db=[10.0],
                indices=np.array([], dtype=int),
            )

    def test_seed_bers_recorded(self, smoke_dataset_2x2):
        (point,) = ber_sweep(
            Dot11Feedback(),
            smoke_dataset_2x2,
            snrs_db=[10.0],
            indices=smoke_dataset_2x2.splits.test[:4],
            n_seeds=3,
        )
        assert len(point.seed_bers) == 3
        assert point.mean_ber == pytest.approx(
            sum(point.seed_bers) / len(point.seed_bers)
        )

    def test_workers_do_not_change_results(self, smoke_dataset_2x2):
        kwargs = dict(
            snrs_db=[10.0, 20.0],
            indices=smoke_dataset_2x2.splits.test[:4],
            n_seeds=2,
        )
        serial = ber_sweep(Dot11Feedback(), smoke_dataset_2x2, **kwargs)
        pooled = ber_sweep(
            Dot11Feedback(), smoke_dataset_2x2, n_workers=2, **kwargs
        )
        assert serial == pooled
