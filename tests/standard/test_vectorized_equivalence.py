"""Vectorized codec paths vs the frozen seed implementations.

The perf PR replaced the per-tone/per-field loops in
``repro.standard.givens`` and ``repro.standard.cbf`` with batched array
passes; these tests pin the new paths to the seed behaviour preserved
in ``repro.perf.reference``:

- multi-stream Givens stays *bit-exact* (same arithmetic, fewer
  allocations);
- the single-stream closed form matches to machine precision;
- CBF frames are byte-identical and the code round trip stays
  bit-exact across codebooks, groupings, and bandwidths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.reference import (
    reference_decode_cbf,
    reference_encode_cbf,
    reference_givens_decompose,
    reference_givens_reconstruct,
)
from repro.phy.ofdm import band_plan
from repro.phy.svd import beamforming_matrices
from repro.standard.cbf import MimoControl, decode_cbf, encode_cbf
from repro.standard.givens import givens_decompose, givens_reconstruct


def random_bf(rng, batch, n_tx, n_streams):
    shape = batch + (n_tx, n_tx)
    h = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return beamforming_matrices(h, n_streams=n_streams)


class TestGivensEquivalence:
    @pytest.mark.parametrize(
        "n_tx,n_streams",
        [(2, 2), (3, 2), (3, 3), (4, 2), (4, 4), (8, 4)],
    )
    def test_multi_stream_bit_exact(self, rng, n_tx, n_streams):
        bf = random_bf(rng, (40,), n_tx, n_streams)
        seed = reference_givens_decompose(bf)
        fast = givens_decompose(bf)
        assert np.array_equal(seed.phi, fast.phi)
        assert np.array_equal(seed.psi, fast.psi)
        assert np.array_equal(
            reference_givens_reconstruct(seed), givens_reconstruct(fast)
        )

    @pytest.mark.parametrize("n_tx", [2, 3, 4, 8])
    def test_single_stream_machine_precision(self, rng, n_tx):
        bf = random_bf(rng, (15, 20), n_tx, 1)
        seed = reference_givens_decompose(bf)
        fast = givens_decompose(bf)
        assert fast.phi.shape == seed.phi.shape
        assert fast.psi.shape == seed.psi.shape
        np.testing.assert_allclose(fast.phi, seed.phi, atol=1e-12)
        np.testing.assert_allclose(fast.psi, seed.psi, atol=1e-12)
        np.testing.assert_allclose(
            givens_reconstruct(fast),
            reference_givens_reconstruct(seed),
            atol=1e-12,
        )

    def test_single_stream_roundtrip_recovers_gauge(self, rng):
        from repro.utils.complexmat import fix_phase_gauge

        bf = random_bf(rng, (64,), 4, 1)
        rebuilt = givens_reconstruct(givens_decompose(bf))
        np.testing.assert_allclose(rebuilt, fix_phase_gauge(bf), atol=1e-10)


class TestCbfEquivalence:
    @pytest.mark.parametrize("bandwidth", [20, 40, 80, 160])
    @pytest.mark.parametrize("grouping", [1, 2, 4])
    def test_frames_byte_identical(self, rng, bandwidth, grouping):
        control = MimoControl(
            n_columns=1,
            n_rows=3,
            bandwidth_mhz=bandwidth,
            grouping=grouping,
            feedback_type="mu",
        )
        n_sc = band_plan(bandwidth).n_subcarriers
        bf = random_bf(rng, (n_sc,), 3, 1)
        assert encode_cbf(bf, control) == reference_encode_cbf(bf, control)

    @pytest.mark.parametrize(
        "feedback_type,codebook,n_rows,n_columns",
        [("su", 0, 2, 1), ("su", 1, 4, 2), ("mu", 0, 3, 1), ("mu", 1, 4, 4)],
    )
    def test_codebooks_byte_identical(
        self, rng, feedback_type, codebook, n_rows, n_columns
    ):
        control = MimoControl(
            n_columns=n_columns,
            n_rows=n_rows,
            bandwidth_mhz=20,
            grouping=2,
            codebook=codebook,
            feedback_type=feedback_type,
        )
        bf = random_bf(rng, (56,), n_rows, n_columns)
        frame = encode_cbf(bf, control)
        assert frame == reference_encode_cbf(bf, control)
        mine = decode_cbf(frame)
        seed = reference_decode_cbf(frame)
        assert np.array_equal(mine.phi_codes, seed.phi_codes)
        assert np.array_equal(mine.psi_codes, seed.psi_codes)
        assert np.array_equal(mine.snr_codes, seed.snr_codes)

    def test_mu_exclusive_segment_byte_identical(self, rng):
        control = MimoControl(
            n_columns=2, n_rows=3, bandwidth_mhz=20, grouping=1
        )
        bf = random_bf(rng, (56,), 3, 2)
        delta = rng.uniform(-8.0, 7.0, size=(56, 2))
        frame = encode_cbf(bf, control, mu_delta_db=delta)
        assert frame == reference_encode_cbf(bf, control, mu_delta_db=delta)
        mine = decode_cbf(frame)
        seed = reference_decode_cbf(frame)
        assert mine.mu_delta_codes is not None
        assert np.array_equal(mine.mu_delta_codes, seed.mu_delta_codes)

    def test_code_roundtrip_stays_bit_exact(self, rng):
        control = MimoControl(
            n_columns=1, n_rows=4, bandwidth_mhz=40, grouping=4
        )
        bf = random_bf(rng, (band_plan(40).n_subcarriers,), 4, 1)
        frame = encode_cbf(bf, control)
        assert encode_cbf(bf, control) == frame  # deterministic bytes
        report = decode_cbf(frame)
        again = decode_cbf(frame)  # pure function of the bytes
        assert np.array_equal(report.phi_codes, again.phi_codes)
        assert np.array_equal(report.psi_codes, again.psi_codes)
