"""Tests for the Givens-rotation decomposition (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.standard.givens import (
    GivensAngles,
    angle_counts,
    givens_decompose,
    givens_reconstruct,
)
from repro.utils.complexmat import fix_phase_gauge

from tests.conftest import random_unitary_columns


class TestAngleCounts:
    @pytest.mark.parametrize(
        "nt,nss,expected",
        [
            (2, 1, (1, 1)),
            (3, 1, (2, 2)),
            (4, 1, (3, 3)),
            (3, 2, (3, 3)),
            (4, 2, (5, 5)),
            (4, 4, (6, 6)),
            (8, 8, (28, 28)),
        ],
    )
    def test_standard_table(self, nt, nss, expected):
        assert angle_counts(nt, nss) == expected

    def test_paper_example_8x8(self):
        # Sec. I: "486 subcarriers x 56 angles/subcarrier" for 8x8.
        n_phi, n_psi = angle_counts(8, 8)
        assert n_phi + n_psi == 56

    def test_invalid(self):
        with pytest.raises(ShapeError):
            angle_counts(0, 1)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "nt,nss", [(2, 1), (3, 1), (4, 1), (3, 2), (4, 2), (4, 4), (8, 1)]
    )
    def test_exact_reconstruction(self, rng, nt, nss):
        bf = random_unitary_columns(rng, nt, nss, batch=(4, 5))
        angles = givens_decompose(bf)
        rebuilt = givens_reconstruct(angles)
        assert np.allclose(rebuilt, fix_phase_gauge(bf), atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_property_random_unitary(self, seed):
        rng = np.random.default_rng(seed)
        nt = int(rng.integers(2, 6))
        nss = int(rng.integers(1, nt + 1))
        bf = random_unitary_columns(rng, nt, nss)
        rebuilt = givens_reconstruct(givens_decompose(bf))
        assert np.allclose(rebuilt, fix_phase_gauge(bf), atol=1e-10)

    def test_reconstruction_beamforming_equivalent(self, rng):
        """V and the reconstructed V-tilde give identical beam gains."""
        h = (rng.standard_normal((1, 4)) + 1j * rng.standard_normal((1, 4))) / 2
        _, _, vh = np.linalg.svd(h, full_matrices=True)
        v = vh.conj().T[:, :1]
        rebuilt = givens_reconstruct(givens_decompose(v))
        assert np.abs(np.linalg.norm(h @ v) - np.linalg.norm(h @ rebuilt)) < 1e-10


class TestAngleRanges:
    def test_psi_in_first_quadrant(self, rng):
        bf = random_unitary_columns(rng, 4, 2, batch=(30,))
        angles = givens_decompose(bf)
        assert np.all(angles.psi >= 0.0)
        assert np.all(angles.psi <= np.pi / 2 + 1e-12)

    def test_phi_shape(self, rng):
        bf = random_unitary_columns(rng, 3, 1, batch=(7, 2))
        angles = givens_decompose(bf)
        assert angles.phi.shape == (7, 2, 2)
        assert angles.psi.shape == (7, 2, 2)
        assert angles.per_subcarrier == 4


class TestValidation:
    def test_wide_matrix_rejected(self, rng):
        with pytest.raises(ShapeError):
            givens_decompose(rng.standard_normal((2, 3)))

    def test_vector_rejected(self, rng):
        with pytest.raises(ShapeError):
            givens_decompose(rng.standard_normal(4))

    def test_inconsistent_angles_rejected(self):
        bad = GivensAngles(
            phi=np.zeros((5, 3)), psi=np.zeros((5, 2)), n_tx=3, n_streams=1
        )
        with pytest.raises(ShapeError):
            givens_reconstruct(bad)
