"""Robustness tests: the CBF codec on malformed and adversarial input.

A feedback decoder runs on frames received over the air; it must fail
loudly (``FeedbackError``) rather than crash or return garbage when a
frame is truncated, padded, or corrupted.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FeedbackError, ReproError
from repro.phy.svd import beamforming_matrices
from repro.standard.cbf import (
    MimoControl,
    decode_cbf,
    encode_cbf,
    reconstruct_bf_from_report,
)


def make_frame(seed: int = 0, **overrides) -> tuple[bytes, MimoControl]:
    control = MimoControl(
        n_columns=1, n_rows=2, bandwidth_mhz=20, **overrides
    )
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((56, 2, 2)) + 1j * rng.standard_normal((56, 2, 2))
    bf = beamforming_matrices(h, n_streams=1)
    return encode_cbf(bf, control), control


class TestTruncation:
    def test_truncated_frame_raises(self):
        frame, _ = make_frame()
        with pytest.raises(FeedbackError):
            decode_cbf(frame[: len(frame) // 2])

    def test_control_field_only_raises(self):
        frame, _ = make_frame()
        with pytest.raises(FeedbackError):
            decode_cbf(frame[:3])

    def test_empty_frame_raises(self):
        with pytest.raises(FeedbackError):
            decode_cbf(b"")

    @given(cut=st.integers(min_value=1, max_value=50))
    def test_any_truncation_raises_or_decodes_prefix(self, cut):
        frame, _ = make_frame(seed=1)
        truncated = frame[:-cut]
        # Either the decode fails loudly, or (when only pad/MU bits were
        # cut) it still yields a structurally valid report.
        try:
            report = decode_cbf(truncated, expect_mu_exclusive=False)
        except ReproError:
            return
        assert report.phi_codes.shape[0] == 56


class TestCorruption:
    def test_bit_flips_decode_to_valid_codes(self):
        """Corrupted payloads decode to in-range codes (quantizer fields
        are self-delimiting), so reconstruction never crashes."""
        frame, control = make_frame(seed=2)
        rng = np.random.default_rng(3)
        corrupted = bytearray(frame)
        for _ in range(8):
            corrupted[rng.integers(3, len(frame))] ^= 1 << rng.integers(0, 8)
        report = decode_cbf(bytes(corrupted), expect_mu_exclusive=False)
        q = control.quantizer
        assert report.phi_codes.max() < 2**q.b_phi
        assert report.psi_codes.max() < 2**q.b_psi
        v_hat = reconstruct_bf_from_report(report)
        assert np.all(np.isfinite(v_hat))

    def test_corrupted_control_field_detected_or_consistent(self):
        """Flipping control bits either raises (reserved values) or
        yields a self-consistent parse of the remaining stream."""
        frame, _ = make_frame(seed=4)
        for byte_index in range(3):
            for bit in range(8):
                corrupted = bytearray(frame)
                corrupted[byte_index] ^= 1 << bit
                try:
                    decode_cbf(bytes(corrupted), expect_mu_exclusive=False)
                except ReproError:
                    continue

    @given(payload=st.binary(min_size=0, max_size=200))
    def test_random_bytes_never_crash_uncontrolled(self, payload):
        """Arbitrary input produces a ReproError or a valid report —
        never an unrelated exception type."""
        try:
            report = decode_cbf(payload)
        except ReproError:
            return
        assert report.control.n_columns >= 1
