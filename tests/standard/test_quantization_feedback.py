"""Tests for angle quantizers, BMR sizing (Eq. (9)), and FLOP models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.standard.feedback import (
    Dot11FeedbackConfig,
    bmr_bits,
    compression_ratio,
    csi_bits,
)
from repro.standard.flopmodel import (
    COMPLEX_FLOP_FACTOR,
    dot11_flops,
    givens_flops,
    svd_flops,
)
from repro.standard.givens import givens_decompose, givens_reconstruct
from repro.standard.quantization import (
    CODEBOOKS,
    AngleQuantizer,
    dequantize_angles,
    quantize_angles,
)
from repro.utils.complexmat import fix_phase_gauge

from tests.conftest import random_unitary_columns


class TestQuantizers:
    @given(
        phi=st.floats(min_value=0.0, max_value=2 * np.pi, exclude_max=True),
        b_phi=st.sampled_from([4, 6, 7, 9]),
    )
    @settings(max_examples=40)
    def test_phi_quantization_error_bound(self, phi, b_phi):
        q = AngleQuantizer(b_phi=b_phi, b_psi=b_phi - 2)
        code = q.quantize_phi(np.array([phi]))
        recovered = q.dequantize_phi(code)[0]
        error = np.abs(np.angle(np.exp(1j * (recovered - phi))))
        step = np.pi / 2 ** (b_phi - 1)
        assert error <= step / 2 + 1e-12

    @given(
        psi=st.floats(min_value=0.0, max_value=np.pi / 2),
        b_psi=st.sampled_from([2, 4, 5, 7]),
    )
    @settings(max_examples=40)
    def test_psi_quantization_error_bound(self, psi, b_psi):
        q = AngleQuantizer(b_phi=b_psi + 2, b_psi=b_psi)
        recovered = q.dequantize_psi(q.quantize_psi(np.array([psi])))[0]
        step = np.pi / 2 ** (b_psi + 1)
        assert abs(recovered - psi) <= step / 2 + step / 4 + 1e-12

    def test_codes_within_width(self, rng):
        q = AngleQuantizer(b_phi=7, b_psi=5)
        phi_codes = q.quantize_phi(rng.uniform(-10, 10, 1000))
        psi_codes = q.quantize_psi(rng.uniform(0, np.pi / 2, 1000))
        assert phi_codes.min() >= 0 and phi_codes.max() < 2**7
        assert psi_codes.min() >= 0 and psi_codes.max() < 2**5

    def test_named_codebooks(self):
        assert AngleQuantizer.from_codebook("mu_high").bits_per_angle_pair == 16
        assert set(CODEBOOKS) == {"su_low", "su_high", "mu_low", "mu_high"}
        with pytest.raises(ConfigurationError):
            AngleQuantizer.from_codebook("nope")

    def test_invalid_widths(self):
        with pytest.raises(ConfigurationError):
            AngleQuantizer(b_phi=5, b_psi=7)

    def test_higher_resolution_smaller_bf_error(self, rng):
        bf = random_unitary_columns(rng, 3, 1, batch=(50,))
        angles = givens_decompose(bf)
        errors = {}
        for name in ("su_low", "mu_high"):
            q = AngleQuantizer.from_codebook(name)
            codes = quantize_angles(angles, q)
            rebuilt = givens_reconstruct(
                dequantize_angles(*codes, q, 3, 1)
            )
            errors[name] = np.max(np.abs(rebuilt - fix_phase_gauge(bf)))
        assert errors["mu_high"] < errors["su_low"]


class TestFeedbackSizes:
    def test_paper_compression_ratios(self):
        """Fig. 9 caption: K ~= 1/2 for 2x2 and 2/3 for 3x3."""
        two = compression_ratio(Dot11FeedbackConfig(2, 1, 1, 20))
        three = compression_ratio(Dot11FeedbackConfig(3, 1, 1, 20))
        assert two == pytest.approx(0.5, abs=0.02)
        assert three == pytest.approx(2 / 3, abs=0.02)

    def test_bmr_formula(self):
        # 2x1 at 20 MHz with (9, 7): 8*2 + 56 * (9 + 7) = 912 bits.
        config = Dot11FeedbackConfig(2, 1, 1, 20)
        assert bmr_bits(config) == 8 * 2 + 56 * 16

    def test_csi_bits(self):
        assert csi_bits(Dot11FeedbackConfig(2, 1, 1, 20)) == 56 * 2 * 16

    def test_bmr_grows_with_everything(self):
        base = bmr_bits(Dot11FeedbackConfig(2, 1, 1, 20))
        assert bmr_bits(Dot11FeedbackConfig(3, 1, 1, 20)) > base
        assert bmr_bits(Dot11FeedbackConfig(2, 1, 1, 80)) > base
        assert bmr_bits(Dot11FeedbackConfig(4, 4, 4, 20)) > base

    def test_paper_headline_example(self):
        """Sec. I: 8x8 @ 160 MHz ~ 54 kB with max angle resolution.

        The paper computes 486 subcarriers x 56 angles x 16 bits; with
        our 484-tone plan and per-angle (9+7)/2 = 8 bits the count lands
        within a factor accounted for by their 16-bit-per-angle worst
        case.
        """
        config = Dot11FeedbackConfig(8, 8, 8, 160)
        bits = bmr_bits(config)
        paper_bits = 486 * 56 * 16
        # Same order of magnitude; exactly half when using 8-bit average.
        assert bits == pytest.approx(paper_bits / 2, rel=0.02)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            Dot11FeedbackConfig(2, 1, 3, 20)


class TestFlopModel:
    def test_formulas(self):
        assert svd_flops(2, 1, 10) == COMPLEX_FLOP_FACTOR * (4 * 2 + 22 * 8) * 10
        assert givens_flops(2, 1, 10) == COMPLEX_FLOP_FACTOR * 8 * 10
        assert dot11_flops(2, 1, n_subcarriers=10) == svd_flops(
            2, 1, 10
        ) + givens_flops(2, 1, 10)

    def test_bandwidth_resolution(self):
        assert dot11_flops(2, 1, bandwidth_mhz=20) == dot11_flops(
            2, 1, n_subcarriers=56
        )

    def test_requires_subcarrier_info(self):
        with pytest.raises(ConfigurationError):
            dot11_flops(2, 1)

    def test_scales_superlinearly_with_antennas(self):
        assert dot11_flops(8, 8, n_subcarriers=56) > 8 * dot11_flops(
            2, 2, n_subcarriers=56
        )
