"""Tests for the bit-exact VHT compressed beamforming frame codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.phy.ofdm import band_plan
from repro.phy.svd import beamforming_matrices
from repro.standard.cbf import (
    CbfReport,
    Dot11CbfCodec,
    MimoControl,
    cbf_payload_bits,
    codebook_for,
    decode_cbf,
    encode_cbf,
    grouped_tone_indices,
    reconstruct_bf_from_report,
)
from repro.standard.feedback import Dot11FeedbackConfig, bmr_bits
from repro.standard.givens import givens_decompose
from repro.standard.quantization import AngleQuantizer
from repro.utils.bits import BitReader, BitWriter
from repro.utils.complexmat import column_correlation


def random_bf(n_sc: int, n_tx: int, n_streams: int, seed: int = 0) -> np.ndarray:
    """Orthonormal-column beamforming matrices from random channels."""
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((1, n_sc, n_tx, n_tx)) + 1j * rng.standard_normal(
        (1, n_sc, n_tx, n_tx)
    )
    return beamforming_matrices(h, n_streams=n_streams)[0]


class TestMimoControl:
    def test_pack_unpack_roundtrip(self):
        control = MimoControl(
            n_columns=2,
            n_rows=3,
            bandwidth_mhz=40,
            grouping=2,
            codebook=0,
            feedback_type="su",
            remaining_segments=5,
            first_segment=False,
            token=42,
        )
        writer = BitWriter()
        control.pack(writer)
        assert writer.bit_length == 24
        assert MimoControl.unpack(BitReader(writer.getvalue())) == control

    def test_quantizer_matches_codebook_table(self):
        assert MimoControl(1, 2, 20, codebook=0, feedback_type="su").quantizer == AngleQuantizer(4, 2)
        assert MimoControl(1, 2, 20, codebook=1, feedback_type="su").quantizer == AngleQuantizer(6, 4)
        assert MimoControl(1, 2, 20, codebook=0, feedback_type="mu").quantizer == AngleQuantizer(7, 5)
        assert MimoControl(1, 2, 20, codebook=1, feedback_type="mu").quantizer == AngleQuantizer(9, 7)

    def test_nc_cannot_exceed_nr(self):
        with pytest.raises(ConfigurationError):
            MimoControl(n_columns=3, n_rows=2, bandwidth_mhz=20)

    def test_unsupported_bandwidth(self):
        with pytest.raises(ConfigurationError):
            MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=320)

    def test_bad_grouping(self):
        with pytest.raises(ConfigurationError):
            MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20, grouping=3)

    def test_token_range(self):
        with pytest.raises(ConfigurationError):
            MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20, token=64)

    def test_codebook_for_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            codebook_for("vht", 0)


class TestGroupedTones:
    def test_no_grouping_is_identity(self):
        np.testing.assert_array_equal(grouped_tone_indices(56, 1), np.arange(56))

    def test_grouping_two_includes_edge(self):
        idx = grouped_tone_indices(57, 2)
        assert idx[0] == 0
        assert idx[-1] == 56
        assert np.all(np.diff(idx) <= 2)

    def test_grouping_four_on_paper_band(self):
        idx = grouped_tone_indices(242, 4)
        assert idx[-1] == 241
        # 242/4 rounded up plus the forced edge tone.
        assert idx.size == 62

    def test_single_tone(self):
        np.testing.assert_array_equal(grouped_tone_indices(1, 4), [0])

    def test_bad_grouping_rejected(self):
        with pytest.raises(ConfigurationError):
            grouped_tone_indices(56, 8)


class TestPayloadBits:
    def test_matches_feedback_model_without_grouping(self):
        """cbf_payload_bits equals the Sec. IV-E2 BMR formula + control."""
        for n_tx, bw in [(2, 20), (3, 40), (4, 80)]:
            control = MimoControl(
                n_columns=1, n_rows=n_tx, bandwidth_mhz=bw, grouping=1
            )
            config = Dot11FeedbackConfig(
                n_tx=n_tx,
                n_rx=1,
                n_streams=1,
                bandwidth_mhz=bw,
                quantizer=AngleQuantizer(9, 7),
            )
            # bmr_bits uses 8*Nt header; the frame uses 24 control bits
            # + 8 per column of SNR.
            angle_bits = bmr_bits(config) - 8 * n_tx
            assert cbf_payload_bits(control) == 24 + 8 + angle_bits

    def test_grouping_shrinks_payload(self):
        base = MimoControl(n_columns=1, n_rows=3, bandwidth_mhz=80, grouping=1)
        grouped = MimoControl(n_columns=1, n_rows=3, bandwidth_mhz=80, grouping=4)
        assert cbf_payload_bits(grouped) < cbf_payload_bits(base) / 3

    def test_mu_exclusive_adds_delta_fields(self):
        control = MimoControl(n_columns=2, n_rows=2, bandwidth_mhz=20)
        extra = cbf_payload_bits(control, include_mu_exclusive=True) - cbf_payload_bits(control)
        assert extra == 56 * 2 * 4

    def test_encoded_length_matches_model(self):
        control = MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20)
        bf = random_bf(56, 2, 1)
        frame = encode_cbf(bf, control)
        assert len(frame) == (cbf_payload_bits(control) + 7) // 8


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "n_tx,n_streams,bw",
        [(2, 1, 20), (3, 1, 20), (3, 2, 40), (4, 1, 20), (4, 4, 20)],
    )
    def test_code_roundtrip_bit_exact(self, n_tx, n_streams, bw):
        """Decoded angle codes equal the encoder's quantizer output."""
        n_sc = band_plan(bw).n_subcarriers
        control = MimoControl(n_columns=n_streams, n_rows=n_tx, bandwidth_mhz=bw)
        bf = random_bf(n_sc, n_tx, n_streams, seed=n_tx * 10 + n_streams)
        report = decode_cbf(encode_cbf(bf, control))
        assert report.control == control

        q = control.quantizer
        angles = givens_decompose(bf)
        np.testing.assert_array_equal(report.phi_codes, q.quantize_phi(angles.phi))
        np.testing.assert_array_equal(report.psi_codes, q.quantize_psi(angles.psi))

    def test_snr_field_quantized_quarter_db(self):
        control = MimoControl(n_columns=2, n_rows=2, bandwidth_mhz=20)
        bf = random_bf(56, 2, 2)
        report = decode_cbf(encode_cbf(bf, control, snr_db=[13.1, 27.6]))
        np.testing.assert_allclose(report.snr_db, [13.0, 27.5], atol=0.25)

    def test_snr_clipped_to_field_range(self):
        control = MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20)
        bf = random_bf(56, 2, 1)
        report = decode_cbf(encode_cbf(bf, control, snr_db=99.0))
        assert report.snr_db[0] == pytest.approx(255 * 0.25 - 10.0)

    def test_mu_exclusive_roundtrip(self):
        control = MimoControl(n_columns=2, n_rows=3, bandwidth_mhz=20)
        bf = random_bf(56, 3, 2, seed=7)
        deltas = np.clip(
            np.round(np.random.default_rng(1).normal(0, 2, size=(56, 2))), -8, 7
        )
        report = decode_cbf(encode_cbf(bf, control, mu_delta_db=deltas))
        assert report.mu_delta_codes is not None
        np.testing.assert_array_equal(report.mu_delta_db, deltas)

    def test_mu_exclusive_absent_when_not_sent(self):
        control = MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20)
        bf = random_bf(56, 2, 1)
        report = decode_cbf(encode_cbf(bf, control))
        assert report.mu_delta_codes is None

    def test_wrong_bf_shape_rejected(self):
        control = MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20)
        with pytest.raises(ShapeError):
            encode_cbf(np.zeros((10, 2, 1)), control)

    def test_wrong_delta_shape_rejected(self):
        control = MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20)
        bf = random_bf(56, 2, 1)
        with pytest.raises(ShapeError):
            encode_cbf(bf, control, mu_delta_db=np.zeros((10, 1)))


class TestReconstruction:
    def test_ungrouped_reconstruction_close_to_v(self):
        """Full-resolution mu_high feedback reconstructs V accurately."""
        control = MimoControl(
            n_columns=1, n_rows=3, bandwidth_mhz=20, codebook=1, feedback_type="mu"
        )
        bf = random_bf(56, 3, 1, seed=3)
        v_hat = reconstruct_bf_from_report(decode_cbf(encode_cbf(bf, control)))
        corr = column_correlation(v_hat, bf)
        assert np.mean(corr) > 0.999

    def test_coarse_codebook_worse_than_fine(self):
        bf = random_bf(56, 3, 1, seed=4)
        corrs = {}
        for codebook in (0, 1):
            control = MimoControl(
                n_columns=1,
                n_rows=3,
                bandwidth_mhz=20,
                codebook=codebook,
                feedback_type="su",
            )
            v_hat = reconstruct_bf_from_report(decode_cbf(encode_cbf(bf, control)))
            corrs[codebook] = float(np.mean(column_correlation(v_hat, bf)))
        assert corrs[1] > corrs[0]

    def test_grouping_degrades_gracefully(self):
        """Ng=2/4 reconstruction stays decent on smooth channels and
        monotonically loses accuracy as Ng grows."""
        rng = np.random.default_rng(5)
        # Smooth frequency response: few taps -> strongly correlated tones.
        taps = rng.standard_normal((2, 3, 4)) + 1j * rng.standard_normal((2, 3, 4))
        freq = np.fft.fft(taps, n=64, axis=-1)[..., :56]  # (Nr=2, Nt=3, S)
        h = np.transpose(freq, (2, 0, 1))  # (S, Nr, Nt)
        bf = beamforming_matrices(h, n_streams=1)  # (S, Nt=3, 1)
        corr_by_ng = {}
        for ng in (1, 2, 4):
            control = MimoControl(
                n_columns=1, n_rows=3, bandwidth_mhz=20, grouping=ng
            )
            v_hat = reconstruct_bf_from_report(
                decode_cbf(encode_cbf(bf, control))
            )
            corr_by_ng[ng] = float(np.mean(column_correlation(v_hat, bf)))
        assert corr_by_ng[1] >= corr_by_ng[2] >= corr_by_ng[4] - 1e-9
        assert corr_by_ng[4] > 0.97

    def test_codec_wrapper_roundtrip(self):
        control = MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20)
        codec = Dot11CbfCodec(control)
        bf = random_bf(56, 2, 1, seed=9)
        v_hat = codec.roundtrip(bf)
        assert v_hat.shape == bf.shape
        assert codec.frame_bytes() == len(codec.encode(bf))

    def test_with_grouping_returns_new_codec(self):
        codec = Dot11CbfCodec(MimoControl(n_columns=1, n_rows=2, bandwidth_mhz=20))
        grouped = codec.with_grouping(4)
        assert grouped.control.grouping == 4
        assert codec.control.grouping == 1
        assert grouped.frame_bytes() < codec.frame_bytes()


class TestFrameProperties:
    @given(
        n_tx=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=999),
        codebook=st.sampled_from([0, 1]),
        fb=st.sampled_from(["su", "mu"]),
    )
    def test_decode_encode_identity_on_codes(self, n_tx, seed, codebook, fb):
        """encode(decode(frame)) reproduces the same frame bytes."""
        control = MimoControl(
            n_columns=1,
            n_rows=n_tx,
            bandwidth_mhz=20,
            codebook=codebook,
            feedback_type=fb,
        )
        bf = random_bf(56, n_tx, 1, seed=seed)
        frame = encode_cbf(bf, control)
        report = decode_cbf(frame)
        # Re-encoding the dequantized angles must quantize back onto the
        # same codes (quantizer idempotence on codebook centers).
        v_hat = reconstruct_bf_from_report(report)
        frame2 = encode_cbf(v_hat, control, snr_db=report.snr_db)
        assert frame2 == frame
